//! The paper's motivating scenario: a distributed database transaction with
//! a hard deadline.
//!
//! Two database nodes must decide within `DEADLINE_MS` whether to commit a
//! transaction, over a flaky line. A round of messaging takes `ROUND_MS`, so
//! the deadline buys `N = DEADLINE_MS / ROUND_MS` rounds. A wrong *split*
//! decision (one commits, one aborts) costs real money; a missed commit
//! merely retries. This example sizes Protocol S for the deadline and shows
//! exactly what safety/liveness the theory allows — including why a 0.1%
//! split-risk budget forces a 1000-round (i.e. long-deadline) protocol, the
//! paper's closing observation.
//!
//! ```text
//! cargo run --example commit_deadline
//! ```

use coordinated_attack::analysis::tradeoff::min_rounds_for_certain_liveness;
use coordinated_attack::prelude::*;

const ROUND_MS: u64 = 5;

struct DeadlineCase {
    deadline_ms: u64,
    split_risk_budget: u64, // ε = 1/budget
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::complete(2)?;

    println!("transaction commit with a deadline (paper §1), round trip = {ROUND_MS} ms\n");
    let mut table = Table::new([
        "deadline",
        "rounds N",
        "split-risk budget ε",
        "Pr[commit] if line healthy",
        "worst Pr[split]",
        "verdict",
    ]);

    let cases = [
        DeadlineCase {
            deadline_ms: 50,
            split_risk_budget: 100,
        },
        DeadlineCase {
            deadline_ms: 250,
            split_risk_budget: 100,
        },
        DeadlineCase {
            deadline_ms: 500,
            split_risk_budget: 100,
        },
        DeadlineCase {
            deadline_ms: 1_000,
            split_risk_budget: 100,
        },
        DeadlineCase {
            deadline_ms: 5_000,
            split_risk_budget: 1_000,
        },
        DeadlineCase {
            deadline_ms: 10_000,
            split_risk_budget: 1_000,
        },
    ];

    for case in cases {
        let n = (case.deadline_ms / ROUND_MS) as u32;
        let t = case.split_risk_budget;
        let good = Run::good(&graph, n);
        let exact = protocol_s_outcomes(&graph, &good, t);
        let commit_prob = exact.ta;
        // Worst-case split probability is ε (Theorem 6.7), and the bound is
        // achieved by a well-placed cut — check over the cut family.
        let (worst_split, _) = coordinated_attack::analysis::exact::protocol_s_worst_pa(
            &graph,
            &ca_sim::cut_family(&graph, n),
            t,
        );
        let verdict = if commit_prob == Rational::ONE {
            "commit certain when healthy"
        } else {
            "deadline too tight for ε"
        };
        table.push_row([
            format!("{} ms", case.deadline_ms),
            n.to_string(),
            format!("1/{t}"),
            commit_prob.to_string(),
            worst_split.to_string(),
            verdict.to_owned(),
        ]);
    }
    println!("{table}");

    println!("how long a deadline does a given split-risk budget force? (Thm 5.4 / §8)\n");
    let mut needs = Table::new(["ε", "min rounds", "min deadline at 5 ms/round"]);
    for t in [10u64, 100, 1_000] {
        let rounds = min_rounds_for_certain_liveness(&graph, t, 1_100).expect("cap large enough");
        needs.push_row([
            format!("1/{t}"),
            rounds.to_string(),
            format!("{} ms", u64::from(rounds) * ROUND_MS),
        ]);
    }
    println!("{needs}");
    println!("ε = 0.001 ⟹ 1000 rounds ⟹ a 5-second deadline at minimum — randomization cannot");
    println!("beat the L/U ≤ N tradeoff; it can only spend rounds to buy safety.");
    Ok(())
}
