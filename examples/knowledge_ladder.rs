//! The knowledge ladder: why coordinated attack is about *common knowledge*.
//!
//! The paper's information level (§4) is iterated knowledge in disguise:
//! level 1 = "I know the input arrived", level 2 = "I know that everyone
//! knows", and so on — and attacking safely at certainty would require the
//! `∞` rung, common knowledge, which lossy links never deliver. This example
//! climbs the ladder round by round on a good run, shows a single lost
//! message freezing it, and cross-checks the structural levels against true
//! epistemic knowledge (indistinguishability over all runs) on a small
//! instance.
//!
//! ```text
//! cargo run --release --example knowledge_ladder
//! ```

use coordinated_attack::core::knowledge::{everyone_knows_depth, knows_input};
use coordinated_attack::prelude::*;
use coordinated_attack::sim::trace::render_run;

fn ladder_row(run: &Run, m: usize, r: u32) -> String {
    (0..m as u32)
        .map(|i| everyone_knows_depth(run, ProcessId::new(i), Round::new(r)).to_string())
        .collect::<Vec<_>>()
        .join("  ")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::complete(2)?;
    let n = 6u32;

    println!("== the ladder on a good run (levels per process, per round) ==\n");
    let good = Run::good(&graph, n);
    println!("round   P0 P1   (meaning)");
    let meanings = [
        "nobody knows anything yet beyond their signal",
        "everyone knows the input arrived",
        "everyone knows that everyone knows",
        "…that everyone knows that everyone knows",
        "(and so on, one rung per round)",
        "",
        "",
    ];
    for r in 0..=n {
        println!(
            "  r{r}     {}   {}",
            ladder_row(&good, 2, r),
            meanings.get(r as usize).copied().unwrap_or("")
        );
    }
    println!("\ncommon knowledge = the infinite rung: out of reach in any finite run —");
    println!("which is exactly why certain agreement is impossible and the paper trades in ε.\n");

    println!("== one lost message freezes the ladder ==\n");
    let mut cut = Run::good(&graph, n);
    cut.cut_from_round(Round::new(3));
    print!("{}", render_run(&cut));
    println!();
    for r in 0..=n {
        println!("  r{r}     {}", ladder_row(&cut, 2, r));
    }
    println!("\nafter the cut the rungs stop: Protocol S's count_i *is* this ladder");
    println!("(Lemma 6.4), so its liveness min(1, ε·ML) is priced in rungs climbed.\n");

    println!("== structural levels = true epistemic knowledge (exhaustive check) ==\n");
    let tiny = Graph::complete(2)?;
    let all_runs = Run::enumerate_all(&tiny, 2);
    let mut agree = 0usize;
    let mut total = 0usize;
    for run in &all_runs {
        for i in tiny.vertices() {
            let structural = everyone_knows_depth(run, i, Round::new(2)) >= 1;
            let semantic = knows_input(&all_runs, run, i, Round::new(2));
            total += 1;
            if structural == semantic {
                agree += 1;
            }
        }
    }
    println!(
        "over all {} runs of the K2/N=2 instance: structural level ≥ 1 coincides with true\n\
         knowledge (indistinguishability over every possible run) in {agree}/{total} cases.",
        all_runs.len()
    );
    Ok(())
}
