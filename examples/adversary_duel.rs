//! Adversary duel: search for the run that hurts each protocol most.
//!
//! Pits four protocols (Protocol S, Protocol A, the deterministic flood
//! baseline, and the fixed-threshold variant) against an adversary that
//! searches the structured cut family *and* random runs for the highest
//! disagreement probability, across several topologies. Reproduces the
//! paper's hierarchy: deterministic ⇒ certain disagreement, Protocol A ⇒
//! 1/(N-1), Protocol S ⇒ ε no matter what.
//!
//! ```text
//! cargo run --release --example adversary_duel
//! ```

use coordinated_attack::prelude::*;
use coordinated_attack::sim::{worst_disagreement, RandomRun, RunSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TRIALS: u64 = 4_000;

fn duel<P: Protocol + Sync>(name: &str, protocol: &P, graph: &Graph, n: u32, table: &mut Table) {
    // Arm 1: the structured cut family (exhaustive over cuts).
    let family = ca_sim::cut_family(graph, n);
    let (worst_idx, reports) =
        worst_disagreement(protocol, graph, &family, SimConfig::new(TRIALS, 99));
    let structured = reports[worst_idx].disagreement();

    // Arm 2: random-run search.
    let mut rng = StdRng::seed_from_u64(7);
    let mut worst_random = BernoulliEstimate::default();
    for _ in 0..10 {
        let sampler = RandomRun::new(
            graph.clone(),
            n,
            0.9,
            rand::Rng::gen_range(&mut rng, 0.3..0.9),
        );
        let one = sampler.sample(&mut rng);
        let report = simulate(
            protocol,
            graph,
            &FixedRun::new(one),
            SimConfig::new(TRIALS / 4, 123),
        );
        if report.disagreement().point() > worst_random.point() {
            worst_random = report.disagreement();
        }
    }

    table.push_row([
        name.to_owned(),
        format!("{}", graph),
        format!("{:.4}", structured.point()),
        format!("{:.4}", worst_random.point()),
    ]);
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 9u32;
    let eps = 0.125f64;

    println!("adversary duel: worst observed disagreement, {TRIALS} trials per run, N = {n}\n");
    let mut table = Table::new([
        "protocol",
        "graph",
        "worst PA (cut family)",
        "worst PA (random search)",
    ]);

    let k2 = Graph::complete(2)?;
    duel("S (ε=1/8)", &ProtocolS::new(eps), &k2, n, &mut table);
    duel("A", &ProtocolA::new(n), &k2, n, &mut table);
    duel("det-flood", &DeterministicFlood::new(), &k2, n, &mut table);
    duel("threshold θ=5", &FixedThreshold::new(5), &k2, n, &mut table);

    for graph in [Graph::complete(4)?, Graph::star(5)?, Graph::ring(5)?] {
        duel("S (ε=1/8)", &ProtocolS::new(eps), &graph, n, &mut table);
        duel(
            "det-flood",
            &DeterministicFlood::new(),
            &graph,
            n,
            &mut table,
        );
    }

    println!("{table}");
    println!("reading the table:");
    println!("  det-flood   → the adversary finds certain disagreement (PA = 1): the classic impossibility");
    println!("  threshold   → also deterministic, also destroyed by a well-placed cut");
    println!(
        "  A           → best attack ≈ 1/(N-1) = {:.4}",
        1.0 / (n as f64 - 1.0)
    );
    println!("  S           → nothing beats ε = {eps}, on any topology (Theorem 6.7)");
    Ok(())
}
