//! Asynchronous coordinated attack: no rounds, just latency, losses, and a
//! deadline.
//!
//! Demonstrates the §8 extension: the event-driven Protocol S under a
//! reliable-but-slow courier, a mid-campaign communications blackout, and a
//! lossy battlefield — with the safety bound `U ≤ ε` surviving all of them.
//!
//! ```text
//! cargo run --release --example async_attack
//! ```

use coordinated_attack::asynchronous::{
    async_s_outcomes, run_async, AsyncConfig, AsyncS, CutCourier, RandomDropCourier,
    ReliableCourier,
};
use coordinated_attack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::complete(2)?;
    let t = 8u64; // ε = 1/8
    let deadline = 24u64;

    println!("asynchronous coordinated attack: 2 generals, deadline {deadline} ticks, ε = 1/{t}\n");

    println!("exact outcomes (rfire integrated analytically):\n");
    let mut table = Table::new(["courier", "Pr[all attack]", "Pr[disagree]", "note"]);

    for latency in [1u64, 2, 4, 8] {
        let mut courier = ReliableCourier::new(latency);
        let config = AsyncConfig::all_inputs(&graph, deadline);
        let out = async_s_outcomes(&graph, &config, &mut courier, t);
        table.push_row([
            format!("reliable, latency {latency}"),
            out.ta.to_string(),
            out.pa.to_string(),
            "liveness priced in latency, not rounds".to_owned(),
        ]);
    }
    for cut in [4u64, 10, 16] {
        let mut courier = CutCourier::new(1, cut);
        let config = AsyncConfig::all_inputs(&graph, deadline);
        let out = async_s_outcomes(&graph, &config, &mut courier, t);
        table.push_row([
            format!("blackout from tick {cut}"),
            out.ta.to_string(),
            out.pa.to_string(),
            "disagreement never beats ε = 1/8".to_owned(),
        ]);
    }
    println!("{table}");

    println!("lossy battlefield (Monte Carlo, heartbeat retransmission every 2 ticks):\n");
    let proto = AsyncS::new(1.0 / t as f64);
    let mut lossy = Table::new(["drop p", "Pr[all attack]", "Pr[disagree]"]);
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(42);
    for p in [0.1f64, 0.3, 0.5] {
        let trials = 5_000;
        let (mut ta, mut pa) = (0u32, 0u32);
        for k in 0..trials {
            let tapes = TapeSet::random(&mut rng, 2, 64);
            let mut courier = RandomDropCourier::new(p, 1, 3, k as u64);
            let config = AsyncConfig::all_inputs(&graph, deadline).with_heartbeat(2);
            let out = run_async(&proto, &graph, &config, &tapes, &mut courier);
            match out.outcome() {
                Outcome::TotalAttack => ta += 1,
                Outcome::PartialAttack => pa += 1,
                Outcome::NoAttack => {}
            }
        }
        lossy.push_row([
            format!("{p}"),
            format!("{:.4}", ta as f64 / trials as f64),
            format!("{:.4}", pa as f64 / trials as f64),
        ]);
    }
    println!("{lossy}");
    println!("heartbeats restore the synchronous model's loss tolerance: a destroyed message");
    println!("only delays the attack — without them, one loss would end the conversation.");
    Ok(())
}
