//! Tradeoff explorer: sweep `(N, ε)` and print the safety–liveness frontier.
//!
//! For each horizon `N` and unsafety budget `ε = 1/t`, prints the Theorem
//! 5.4 ceiling `min(1, ε·L(R))`, Protocol S's exact liveness, and the
//! achieved ratio `L/U` — the whole tradeoff surface of the paper in one
//! table, plus the weak-adversary escape hatch of Section 8.
//!
//! ```text
//! cargo run --release --example tradeoff_explorer
//! ```

use coordinated_attack::analysis::tradeoff::{achieved_ratio, frontier};
use coordinated_attack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = Graph::complete(2)?;
    let ns = [2u32, 4, 8, 16, 32, 64];

    println!("the strong-adversary frontier on K2 (exact; Thm 5.4 vs Protocol S)\n");
    for t in [4u64, 16, 64] {
        let mut table = Table::new([
            "N",
            "L(R_good)",
            "ML(R_good)",
            "ceiling ε·L(R)",
            "L(S, R_good)",
            "achieved L/U",
            "ceiling N",
        ]);
        for pt in frontier(&graph, &ns, t) {
            table.push_row([
                pt.n.to_string(),
                pt.level.to_string(),
                pt.modified_level.to_string(),
                pt.bound.to_string(),
                pt.achieved.to_string(),
                achieved_ratio(&graph, pt.n, t).to_string(),
                pt.n.to_string(),
            ]);
        }
        println!("ε = 1/{t}:\n{table}");
    }

    println!("the weak-adversary escape hatch (§8): random drops, measured L/U\n");
    let n = 24u32;
    let t = 12u64;
    let proto = ProtocolS::new(1.0 / t as f64);
    let mut table = Table::new([
        "drop prob p",
        "liveness",
        "disagreement",
        "measured L/U",
        "strong ceiling",
    ]);
    for p in [0.05f64, 0.15, 0.3] {
        let report = simulate(
            &proto,
            &graph,
            &RandomDrop::new(&graph, n, p),
            SimConfig::new(30_000, 11),
        );
        let l = report.liveness();
        let u = report.disagreement();
        let ratio = if u.point() > 0.0 {
            format!("{:.0}", l.point() / u.point())
        } else {
            "∞ (no disagreement observed)".to_owned()
        };
        table.push_row([
            format!("{p}"),
            format!("{:.4}", l.point()),
            format!("{:.2e}", u.point()),
            ratio,
            format!("N = {n}"),
        ]);
    }
    println!("{table}");
    println!("under the strong adversary the ratio L/U can never exceed N (here {n});");
    println!("under random drops it sails far past — the 'vastly improved performance' of §8.");
    Ok(())
}
