//! Big graph, weak adversary: a ring and a scale-free network race to
//! coordinate under the same lossy channel.
//!
//! The paper's §8 observes that against a *weak* (probabilistic) adversary
//! the liveness/safety tradeoff is far gentler than the `L/U ≤ N` worst
//! case. This example makes the topology's role concrete at m = 400: the
//! same 5% iid per-link loss meets a ring (diameter ~200) and a
//! Barabási–Albert scale-free graph (diameter ~5), and the frontier
//! `Pr[all attack]` vs `t = 1/ε` separates dramatically — low diameter buys
//! liveness at the same safety budget, because levels climb once per round
//! and the ring needs hundreds of rounds for information to cross.
//!
//! ```text
//! cargo run --release --example big_graph
//! ```

use coordinated_attack::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = 400;
    let mut config = ScenarioSweepConfig::default_at(m, 400, 42);
    // Head-to-head: the highest-diameter topology we have vs the lowest,
    // under plain iid loss (swap in LossModel::GilbertElliott for bursts).
    config.topologies = vec![
        TopologySpec::Ring { m },
        TopologySpec::ScaleFree {
            m,
            attach: 3,
            seed: 1,
        },
    ];
    config.adversaries = vec![LossModel::Iid { p: 0.05 }];
    config.t_curve = vec![2, 4, 8, 16, 32];

    println!("== {} processes, 5% iid loss per link per round ==\n", m);
    let report = run_sweep(&config)?;
    for cell in &report.cells {
        println!(
            "{}: diameter {}, mean degree {:.1}, horizon N = {} rounds",
            cell.topology_name,
            cell.graph.diameter,
            cell.graph.degree_mean(),
            cell.horizon
        );
        println!(
            "   run-wide ML over {} sampled runs: mean min {:.1}, mean max {:.1}",
            cell.trials,
            cell.mean_ml_min(),
            cell.mean_ml_max()
        );
    }
    println!("\n{}", report.table());

    let ring = &report.cells[0];
    let sf = &report.cells[1];
    let last = config.t_curve.last().copied().unwrap_or(0);
    println!(
        "at t = {last} (disagreement budget 1/{last}): ring TA = {:.2}, scale-free TA = {:.2}",
        ring.points.last().map_or(0.0, |p| p.ta.point()),
        sf.points.last().map_or(0.0, |p| p.ta.point()),
    );
    println!(
        "same ε, same loss — the frontier is set by how fast levels climb, and levels\n\
         climb at most one per round from the leader outward (Lemma 6.4): the ring's\n\
         {}-round horizon cannot cash a t = {last} firing range, the hub graph's can.",
        ring.horizon
    );
    Ok(())
}
