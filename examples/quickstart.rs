//! Quickstart: two generals coordinate an attack over an unreliable link.
//!
//! Runs Protocol S end to end on a good run and on an adversarial cut,
//! printing the execution trace and comparing measured liveness/unsafety
//! with the paper's formulas.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use coordinated_attack::prelude::*;
use coordinated_attack::sim::trace::render_trace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 10u32; // rounds
    let t = 8u64; // ε = 1/8: at most a 12.5% chance of disagreement, ever
    let graph = Graph::complete(2)?;
    let protocol = ProtocolS::new(1.0 / t as f64);

    println!("== one execution on the good run ==\n");
    let good = Run::good(&graph, n);
    let mut rng = StdRng::seed_from_u64(2024);
    let tapes = TapeSet::random(&mut rng, graph.len(), 64);
    let execution = execute(&protocol, &graph, &good, &tapes);
    println!("{}", render_trace(&graph, &good, &execution));

    println!("== exact analysis (no sampling) ==\n");
    let exact = protocol_s_outcomes(&graph, &good, t);
    let ml = modified_levels(&good).min_level();
    println!("good run:      ML(R) = {ml}, Pr[all attack] = {} (Theorem 6.8: min(1, ε·ML) = min(1, {ml}/{t}))", exact.ta);

    let mut cut = Run::good(&graph, n);
    cut.cut_from_round(Round::new(4));
    let exact_cut = protocol_s_outcomes(&graph, &cut, t);
    println!(
        "cut at r4:     ML(R) = {}, Pr[all attack] = {}, Pr[disagree] = {} (≤ ε = 1/{t})",
        modified_levels(&cut).min_level(),
        exact_cut.ta,
        exact_cut.pa
    );

    println!("\n== Monte Carlo cross-check ({} trials) ==\n", 20_000);
    let report = simulate(
        &protocol,
        &graph,
        &FixedRun::new(cut),
        SimConfig::new(20_000, 7),
    );
    println!("cut at r4:     liveness = {}", report.liveness());
    println!("               disagree = {}", report.disagreement());
    println!("\nthe worst the adversary can ever do to Protocol S is ε = 1/{t} disagreement —");
    println!("but liveness costs rounds: certain attack needs N ≥ t = {t} (run the `expt` binary for the full tables)");
    Ok(())
}
