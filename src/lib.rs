//! # coordinated-attack
//!
//! A full reproduction of *“A Tradeoff Between Safety and Liveness for
//! Randomized Coordinated Attack Protocols”* (George Varghese and Nancy A.
//! Lynch, PODC 1992) as a Rust library: the formal model, the paper's
//! protocols, the lower-bound machinery, and an executable experiment suite
//! verifying every quantitative claim.
//!
//! This crate is a facade over the workspace:
//!
//! * [`core`] (`ca-core`) — graphs, runs, executions, causality,
//!   information levels, clipping.
//! * [`protocols`] (`ca-protocols`) — Protocol S (optimal), Protocol A
//!   (the §3 example), and baselines.
//! * [`sim`] (`ca-sim`) — adversary strategies and Monte Carlo estimation.
//! * [`analysis`] (`ca-analysis`) — exact outcome probabilities, tradeoff
//!   frontiers, and experiments E1–E12.
//!
//! # Quickstart
//!
//! Two generals, ten rounds, a 1-in-8 disagreement budget:
//!
//! ```
//! use coordinated_attack::prelude::*;
//!
//! let graph = Graph::complete(2)?;
//! let run = Run::good(&graph, 10);          // the adversary delivers everything
//! let exact = protocol_s_outcomes(&graph, &run, 8); // ε = 1/8
//!
//! // Theorem 6.8: liveness = min(1, ε·ML(R)) = min(1, 10/8) = 1.
//! assert_eq!(exact.ta, Rational::ONE);
//! # Ok::<(), coordinated_attack::core::ModelError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/ca-bench/src/bin/expt.rs`
//! for the experiment runner.

#![warn(missing_docs)]

pub use ca_analysis as analysis;
pub use ca_async as asynchronous;
pub use ca_core as core;
pub use ca_protocols as protocols;
pub use ca_sim as sim;

/// The most commonly used items, for glob import in examples and tests.
pub mod prelude {
    pub use ca_analysis::exact::{protocol_a_outcomes, protocol_s_outcomes, ExactOutcome};
    pub use ca_analysis::report::Table;
    pub use ca_analysis::runs::{leader_only_input_run, ml_staircase, tree_run};
    pub use ca_analysis::sweep::{run_sweep, ScenarioSweepConfig, ScenarioSweepReport};
    pub use ca_core::exec::{execute, execute_outputs, Execution};
    pub use ca_core::graph::{Graph, GraphStats, TopologySpec};
    pub use ca_core::ids::{ProcessId, Round};
    pub use ca_core::level::{levels, modified_levels};
    pub use ca_core::outcome::Outcome;
    pub use ca_core::protocol::{Ctx, Protocol};
    pub use ca_core::rational::Rational;
    pub use ca_core::run::Run;
    pub use ca_core::tape::TapeSet;
    pub use ca_protocols::{
        AttackOnInput, ChainProtocol, CombineRule, DeterministicFlood, FixedThreshold, GridS,
        NeverAttack, ProtocolA, ProtocolS, Repeat, ValidityMode, VectorS,
    };
    pub use ca_sim::{
        simulate, simulate_scalar, simulate_sliced, BernoulliEstimate, FixedRun, LossModel,
        RandomDrop, SimConfig, SimReport, WeakAdversary,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_reexports_work_together() {
        let graph = Graph::complete(2).unwrap();
        let run = Run::good(&graph, 4);
        let out = protocol_s_outcomes(&graph, &run, 8);
        assert_eq!(out.ta, Rational::new(1, 2));
    }
}
