//! Hand-rolled `#[derive(Serialize, Deserialize)]` for the offline serde
//! stand-in.
//!
//! Real `serde_derive` pulls in `syn`/`quote`; neither is available offline,
//! so this crate parses the derive input directly from the token stream and
//! emits impl blocks as strings. It supports exactly the shapes this
//! workspace uses — plain structs, tuple/newtype/unit structs, and enums
//! with unit/newtype/tuple/struct variants, optionally generic — and
//! panics with a clear message on anything fancier (`where` clauses,
//! `#[serde(...)]` attributes).
//!
//! Generated code follows the same encoding conventions as
//! `serde::json`: structs are objects keyed by field name, newtype structs
//! are transparent, tuple structs are arrays, unit variants are strings,
//! and data-carrying variants are single-key objects.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::ser::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let code = gen_serialize(&item);
    code.parse().unwrap_or_else(|e| {
        panic!(
            "derived Serialize for `{}` failed to reparse: {e}",
            item.name
        )
    })
}

/// Derives `serde::de::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let code = gen_deserialize(&item);
    code.parse().unwrap_or_else(|e| {
        panic!(
            "derived Deserialize for `{}` failed to reparse: {e}",
            item.name
        )
    })
}

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

struct Input {
    name: String,
    /// Verbatim generics declaration, e.g. `< T : Clone >`, or empty.
    generics_decl: String,
    /// Generic arguments for the self type, e.g. `<T>`, or empty.
    generics_args: String,
    /// Names of the type parameters (bounds are added per derive).
    type_params: Vec<String>,
    data: Data,
}

enum Data {
    UnitStruct,
    NewtypeStruct,
    TupleStruct(usize),
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Newtype,
    Tuple(usize),
    Struct(Vec<String>),
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn is_punct(tt: &TokenTree, c: char) -> bool {
    matches!(tt, TokenTree::Punct(p) if p.as_char() == c)
}

fn is_ident(tt: &TokenTree, word: &str) -> bool {
    matches!(tt, TokenTree::Ident(id) if id.to_string() == word)
}

fn ident_text(tt: &TokenTree) -> Option<String> {
    match tt {
        TokenTree::Ident(id) => Some(id.to_string()),
        _ => None,
    }
}

/// Skips `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], mut j: usize) -> usize {
    while j + 1 < toks.len() && is_punct(&toks[j], '#') {
        j += 2; // `#` plus the bracketed group
    }
    if j < toks.len() && is_ident(&toks[j], "pub") {
        j += 1;
        if let Some(TokenTree::Group(g)) = toks.get(j) {
            if g.delimiter() == Delimiter::Parenthesis {
                j += 1; // `pub(crate)` etc.
            }
        }
    }
    j
}

/// Advances past a type (or discriminant) to just after the next `,` at
/// angle-bracket depth zero; stops at end of tokens.
fn skip_past_comma(toks: &[TokenTree], mut j: usize) -> usize {
    let mut depth = 0i32;
    while j < toks.len() {
        let tt = &toks[j];
        if is_punct(tt, '<') {
            depth += 1;
        } else if is_punct(tt, '>') {
            depth -= 1;
        } else if is_punct(tt, ',') && depth == 0 {
            return j + 1;
        }
        j += 1;
    }
    j
}

/// Parses `<...>` starting at `*i` (no-op when absent). Returns the verbatim
/// declaration, the argument list for the self type, and the type-parameter
/// names.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> (String, String, Vec<String>) {
    if !toks.get(*i).is_some_and(|tt| is_punct(tt, '<')) {
        return (String::new(), String::new(), Vec::new());
    }
    let start = *i;
    let mut depth = 0i32;
    let mut args: Vec<String> = Vec::new();
    let mut type_params: Vec<String> = Vec::new();
    let mut at_param_start = false;
    while *i < toks.len() {
        let tt = &toks[*i];
        if is_punct(tt, '<') {
            depth += 1;
            if depth == 1 {
                at_param_start = true;
            }
            *i += 1;
            continue;
        }
        if is_punct(tt, '>') {
            depth -= 1;
            *i += 1;
            if depth == 0 {
                break;
            }
            continue;
        }
        if is_punct(tt, ',') && depth == 1 {
            at_param_start = true;
            *i += 1;
            continue;
        }
        if at_param_start && depth == 1 {
            at_param_start = false;
            if is_punct(tt, '\'') {
                let name = ident_text(&toks[*i + 1]).expect("lifetime name");
                args.push(format!("'{name}"));
                *i += 2;
                continue;
            }
            if is_ident(tt, "const") {
                let name = ident_text(&toks[*i + 1]).expect("const parameter name");
                args.push(name);
                *i += 2;
                continue;
            }
            let name =
                ident_text(tt).unwrap_or_else(|| panic!("unsupported generic parameter `{tt}`"));
            args.push(name.clone());
            type_params.push(name);
            *i += 1;
            continue;
        }
        *i += 1;
    }
    let decl: TokenStream = toks[start..*i].iter().cloned().collect();
    (
        decl.to_string(),
        format!("<{}>", args.join(", ")),
        type_params,
    )
}

/// Parses `{ name: Type, ... }` contents into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        j = skip_attrs_and_vis(&toks, j);
        if j >= toks.len() {
            break;
        }
        let name = ident_text(&toks[j])
            .unwrap_or_else(|| panic!("expected field name, found `{}`", toks[j]));
        out.push(name);
        j += 2; // name and `:`
        j = skip_past_comma(&toks, j);
    }
    out
}

/// Counts the fields of a tuple struct / tuple variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut fields = 0usize;
    let mut depth = 0i32;
    let mut segment_has_tokens = false;
    for tt in stream {
        if is_punct(&tt, ',') && depth == 0 {
            if segment_has_tokens {
                fields += 1;
            }
            segment_has_tokens = false;
            continue;
        }
        if is_punct(&tt, '<') {
            depth += 1;
        } else if is_punct(&tt, '>') {
            depth -= 1;
        }
        segment_has_tokens = true;
    }
    if segment_has_tokens {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut out = Vec::new();
    let mut j = 0;
    while j < toks.len() {
        j = skip_attrs_and_vis(&toks, j);
        if j >= toks.len() {
            break;
        }
        let name = ident_text(&toks[j])
            .unwrap_or_else(|| panic!("expected variant name, found `{}`", toks[j]));
        j += 1;
        let kind = match toks.get(j) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                j += 1;
                if n == 1 {
                    VariantKind::Newtype
                } else {
                    VariantKind::Tuple(n)
                }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                j += 1;
                VariantKind::Struct(fields)
            }
            _ => VariantKind::Unit,
        };
        j = skip_past_comma(&toks, j); // also skips `= discriminant`
        out.push(Variant { name, kind });
    }
    out
}

fn parse_input(input: TokenStream) -> Input {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&toks, 0);
    let keyword = ident_text(&toks[i])
        .unwrap_or_else(|| panic!("expected `struct` or `enum`, found `{}`", toks[i]));
    i += 1;
    let name =
        ident_text(&toks[i]).unwrap_or_else(|| panic!("expected type name, found `{}`", toks[i]));
    i += 1;
    let (generics_decl, generics_args, type_params) = parse_generics(&toks, &mut i);
    if toks.get(i).is_some_and(|tt| is_ident(tt, "where")) {
        panic!(
            "serde_derive shim: `where` clauses are unsupported; write bounds inline on `{name}`"
        );
    }
    let data = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Struct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                match count_tuple_fields(g.stream()) {
                    1 => Data::NewtypeStruct,
                    n => Data::TupleStruct(n),
                }
            }
            Some(tt) if is_punct(tt, ';') => Data::UnitStruct,
            _ => panic!("unsupported struct body for `{name}`"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Data::Enum(parse_variants(g.stream()))
            }
            _ => panic!("expected enum body for `{name}`"),
        },
        other => panic!("serde_derive shim cannot derive for `{other} {name}`"),
    };
    Input {
        name,
        generics_decl,
        generics_args,
        type_params,
        data,
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Builds a `where` clause bounding every type parameter by `bound`.
fn bounds_clause(type_params: &[String], bound: &str) -> String {
    if type_params.is_empty() {
        return String::new();
    }
    let items: Vec<String> = type_params
        .iter()
        .map(|p| format!("{p}: {bound}"))
        .collect();
    format!("where {}", items.join(", "))
}

fn gen_serialize(inp: &Input) -> String {
    let name = &inp.name;
    let body = match &inp.data {
        Data::UnitStruct => {
            format!("::serde::ser::Serializer::serialize_unit_struct(serializer, \"{name}\")")
        }
        Data::NewtypeStruct => format!(
            "::serde::ser::Serializer::serialize_newtype_struct(serializer, \"{name}\", &self.0)"
        ),
        Data::TupleStruct(n) => {
            let mut s = format!(
                "let mut st = ::serde::ser::Serializer::serialize_tuple_struct(serializer, \"{name}\", {n}usize)?;\n"
            );
            for k in 0..*n {
                s.push_str(&format!(
                    "::serde::ser::SerializeTupleStruct::serialize_field(&mut st, &self.{k})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeTupleStruct::end(st)");
            s
        }
        Data::Struct(fields) => {
            let mut s = format!(
                "let mut st = ::serde::ser::Serializer::serialize_struct(serializer, \"{name}\", {}usize)?;\n",
                fields.len()
            );
            for f in fields {
                s.push_str(&format!(
                    "::serde::ser::SerializeStruct::serialize_field(&mut st, \"{f}\", &self.{f})?;\n"
                ));
            }
            s.push_str("::serde::ser::SerializeStruct::end(st)");
            s
        }
        Data::Enum(variants) => {
            let mut arms = String::new();
            for (idx, v) in variants.iter().enumerate() {
                let vname = &v.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "Self::{vname} => ::serde::ser::Serializer::serialize_unit_variant(serializer, \"{name}\", {idx}u32, \"{vname}\"),\n"
                    )),
                    VariantKind::Newtype => arms.push_str(&format!(
                        "Self::{vname}(__f0) => ::serde::ser::Serializer::serialize_newtype_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", __f0),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let mut arm = format!(
                            "Self::{vname}({}) => {{\nlet mut st = ::serde::ser::Serializer::serialize_tuple_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {n}usize)?;\n",
                            binds.join(", ")
                        );
                        for b in &binds {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeTupleVariant::serialize_field(&mut st, {b})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeTupleVariant::end(st)\n},\n");
                        arms.push_str(&arm);
                    }
                    VariantKind::Struct(fields) => {
                        let mut arm = format!(
                            "Self::{vname} {{ {} }} => {{\nlet mut st = ::serde::ser::Serializer::serialize_struct_variant(serializer, \"{name}\", {idx}u32, \"{vname}\", {}usize)?;\n",
                            fields.join(", "),
                            fields.len()
                        );
                        for f in fields {
                            arm.push_str(&format!(
                                "::serde::ser::SerializeStructVariant::serialize_field(&mut st, \"{f}\", {f})?;\n"
                            ));
                        }
                        arm.push_str("::serde::ser::SerializeStructVariant::end(st)\n},\n");
                        arms.push_str(&arm);
                    }
                }
            }
            if arms.is_empty() {
                "match *self {}".to_owned()
            } else {
                format!("match self {{\n{arms}}}")
            }
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::ser::Serialize for {name}{args} {bounds} {{\n\
         fn serialize<__S: ::serde::ser::Serializer>(&self, serializer: __S) -> ::core::result::Result<__S::Ok, __S::Error> {{\n\
         {body}\n\
         }}\n\
         }}",
        decl = inp.generics_decl,
        args = inp.generics_args,
        bounds = bounds_clause(&inp.type_params, "::serde::ser::Serialize"),
    )
}

/// Shared snippet: reject a non-array payload, or one of the wrong length,
/// then build `{ctor}(items[0], items[1], ...)`.
fn tuple_body(ctor: &str, context: &str, n: usize) -> String {
    let mut s = format!(
        "let items = value.as_array().ok_or_else(|| ::serde::json::Error::custom(::std::format!(\"expected array for {context}, got {{}}\", value.kind())))?;\n\
         if items.len() != {n}usize {{\n\
         return ::core::result::Result::Err(::serde::json::Error::custom(::std::format!(\"expected {n} elements for {context}, got {{}}\", items.len())));\n\
         }}\n"
    );
    let parts: Vec<String> = (0..n)
        .map(|k| format!("::serde::de::Deserialize::deserialize(&items[{k}usize])?"))
        .collect();
    s.push_str(&format!(
        "::core::result::Result::Ok({ctor}({}))",
        parts.join(", ")
    ));
    s
}

/// Shared snippet: reject a non-object payload, then build
/// `{ctor} {{ field: de::field(obj, "field")?, ... }}`.
fn struct_body(ctor: &str, context: &str, fields: &[String]) -> String {
    let mut s = format!(
        "let obj = value.as_object().ok_or_else(|| ::serde::json::Error::custom(::std::format!(\"expected object for {context}, got {{}}\", value.kind())))?;\n"
    );
    let parts: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de::field(obj, \"{f}\")?"))
        .collect();
    s.push_str(&format!(
        "::core::result::Result::Ok({ctor} {{ {} }})",
        parts.join(", ")
    ));
    s
}

fn gen_deserialize(inp: &Input) -> String {
    let name = &inp.name;
    let body = match &inp.data {
        Data::UnitStruct => format!(
            "if let ::serde::json::Value::Null = value {{\n\
             ::core::result::Result::Ok(Self)\n\
             }} else {{\n\
             ::core::result::Result::Err(::serde::json::Error::custom(::std::format!(\"expected null for unit struct {name}, got {{}}\", value.kind())))\n\
             }}"
        ),
        Data::NewtypeStruct => {
            "::core::result::Result::Ok(Self(::serde::de::Deserialize::deserialize(value)?))"
                .to_owned()
        }
        Data::TupleStruct(n) => tuple_body("Self", &format!("tuple struct {name}"), *n),
        Data::Struct(fields) => struct_body("Self", &format!("struct {name}"), fields),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let arm_body = match &v.kind {
                    VariantKind::Unit => {
                        format!("::core::result::Result::Ok(Self::{vname})")
                    }
                    VariantKind::Newtype => format!(
                        "::core::result::Result::Ok(Self::{vname}(::serde::de::Deserialize::deserialize(value)?))"
                    ),
                    VariantKind::Tuple(n) => tuple_body(
                        &format!("Self::{vname}"),
                        &format!("variant {name}::{vname}"),
                        *n,
                    ),
                    VariantKind::Struct(fields) => struct_body(
                        &format!("Self::{vname}"),
                        &format!("variant {name}::{vname}"),
                        fields,
                    ),
                };
                arms.push_str(&format!("\"{vname}\" => {{\n{arm_body}\n}}\n"));
            }
            format!(
                "let (variant, value) = ::serde::de::variant(value)?;\n\
                 match variant {{\n\
                 {arms}\
                 other => ::core::result::Result::Err(::serde::json::Error::custom(::std::format!(\"unknown variant `{{other}}` of enum {name}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{decl} ::serde::de::Deserialize for {name}{args} {bounds} {{\n\
         fn deserialize(value: &::serde::json::Value) -> ::core::result::Result<Self, ::serde::json::Error> {{\n\
         {body}\n\
         }}\n\
         }}",
        decl = inp.generics_decl,
        args = inp.generics_args,
        bounds = bounds_clause(&inp.type_params, "::serde::de::Deserialize"),
    )
}
