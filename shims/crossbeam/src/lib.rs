//! Offline stand-in for `crossbeam`, providing scoped threads over
//! `std::thread::scope` (which landed in std long after crossbeam
//! popularized the API).

pub mod thread {
    //! Scoped threads with crossbeam's closure signature: the spawn closure
    //! receives the scope again, so workers can themselves spawn.

    use std::thread as std_thread;

    /// A scope handle; `Copy` so it can be captured by many closures.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread bound to the scope; it may borrow from `'env`.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(scope)),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std_thread::Result<T> {
            self.inner.join()
        }
    }

    /// Runs `f` with a scope; all spawned threads are joined before this
    /// returns.
    ///
    /// # Errors
    ///
    /// Crossbeam reports child panics as `Err`. `std::thread::scope`
    /// instead resumes the panic on the parent after joining, so this
    /// always returns `Ok` — callers' `.expect(...)` is then a no-op, and
    /// a worker panic still propagates with its original message.
    pub fn scope<'env, F, R>(f: F) -> std_thread::Result<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = vec![1u64, 2, 3, 4];
            let mut results = vec![0u64; data.len()];
            super::scope(|scope| {
                for (slot, &x) in results.iter_mut().zip(&data) {
                    scope.spawn(move |_| {
                        *slot = x * 10;
                    });
                }
            })
            .expect("scope");
            assert_eq!(results, vec![10, 20, 30, 40]);
        }

        #[test]
        fn workers_can_respawn() {
            let total = std::sync::atomic::AtomicU64::new(0);
            super::scope(|scope| {
                scope.spawn(|inner| {
                    inner.spawn(|_| {
                        total.fetch_add(7, std::sync::atomic::Ordering::SeqCst);
                    });
                });
            })
            .expect("scope");
            assert_eq!(total.load(std::sync::atomic::Ordering::SeqCst), 7);
        }
    }
}
