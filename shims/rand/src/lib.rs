//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in an environment with no crates.io access, so this
//! shim provides the (small) subset of the `rand 0.8` API the workspace
//! uses: the [`Rng`] extension trait (`gen`, `gen_bool`, `gen_range`), the
//! [`SeedableRng`] constructor trait, and [`rngs::StdRng`] — here a
//! xoshiro256++ generator seeded through SplitMix64. It is a high-quality
//! statistical PRNG (not cryptographic), which is all the Monte Carlo
//! machinery needs; every consumer seeds it explicitly, so reproducibility
//! is unchanged.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 uniform bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `Rng`.
pub trait Standard: Sized {
    /// Draws one uniform value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` accepts, producing values of type `T`.
///
/// Generic over `T` (rather than using an associated type) so the value
/// type can drive inference of integer-literal ranges, exactly as in real
/// rand: `let m: usize = rng.gen_range(3..7)` infers `Range<usize>`.
pub trait SampleRange<T> {
    /// Draws one uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection sampling (exact).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample from empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p must be in [0,1]");
        f64::sample(self) < p
    }

    /// Draws a uniform value from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator deterministically from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Not the same stream as upstream `rand`'s ChaCha-based `StdRng`, but a
    /// statistically strong generator with the same interface; all seeds in
    /// the workspace are explicit, so determinism is preserved.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_bool_extremes_and_rate() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3..7);
            assert!((3..7).contains(&v));
            let w = rng.gen_range(1u64..=4);
            assert!((1..=4).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: super::Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let dynrng: &mut StdRng = &mut rng;
        let _ = draw(dynrng);
    }

    #[test]
    fn uniform_range_is_roughly_flat() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 7];
        for _ in 0..7000 {
            counts[rng.gen_range(0usize..7)] += 1;
        }
        for &c in &counts {
            assert!((800..1200).contains(&c), "counts = {counts:?}");
        }
    }
}
