//! [`Serialize`] and [`Deserialize`] implementations for std types.

use crate::de::Deserialize;
use crate::json::{Error, Value};
use crate::ser::{self, Serialize, Serializer};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

// ---------------------------------------------------------------------------
// Primitives
// ---------------------------------------------------------------------------

macro_rules! primitive {
    ($ty:ty, $ser:ident, $pat:pat => $expr:expr, $expected:literal) => {
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.$ser(*self)
            }
        }
        impl Deserialize for $ty {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    $pat => $expr,
                    other => Err(Error::custom(format!(
                        concat!("expected ", $expected, ", got {}"),
                        other.kind()
                    ))),
                }
            }
        }
    };
}

macro_rules! int_via_i64 {
    ($($ty:ty => $ser:ident),* $(,)?) => {
        $(
            impl Serialize for $ty {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    serializer.$ser(*self)
                }
            }
            impl Deserialize for $ty {
                fn deserialize(value: &Value) -> Result<Self, Error> {
                    let n = value.as_i64().ok_or_else(|| {
                        Error::custom(format!("expected integer, got {}", value.kind()))
                    })?;
                    <$ty>::try_from(n).map_err(|_| {
                        Error::custom(format!(
                            concat!("integer {} out of range for ", stringify!($ty)),
                            n
                        ))
                    })
                }
            }
        )*
    };
}

primitive!(bool, serialize_bool, Value::Bool(b) => Ok(*b), "bool");

int_via_i64! {
    i8 => serialize_i8,
    i16 => serialize_i16,
    i32 => serialize_i32,
    i64 => serialize_i64,
    u8 => serialize_u8,
    u16 => serialize_u16,
    u32 => serialize_u32,
}

impl Serialize for u64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self)
    }
}
impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_u64()
            .ok_or_else(|| Error::custom(format!("expected integer, got {}", value.kind())))
    }
}

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = u64::deserialize(value)?;
        usize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range for usize")))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i64(*self as i64)
    }
}
impl Deserialize for isize {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let n = value
            .as_i64()
            .ok_or_else(|| Error::custom(format!("expected integer, got {}", value.kind())))?;
        isize::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range for isize")))
    }
}

impl Serialize for i128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_i128(*self)
    }
}
impl Deserialize for i128 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_i64()
            .map(i128::from)
            .ok_or_else(|| Error::custom(format!("expected integer, got {}", value.kind())))
    }
}

impl Serialize for u128 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_u128(*self)
    }
}
impl Deserialize for u128 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_u64()
            .map(u128::from)
            .ok_or_else(|| Error::custom(format!("expected integer, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f32(*self)
    }
}
impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        f64::deserialize(value).map(|v| v as f32)
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_f64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_char(*self)
    }
}
impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!(
                "expected single-character string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_unit()
    }
}
impl Deserialize for () {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(()),
            other => Err(Error::custom(format!(
                "expected null, got {}",
                other.kind()
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// References and containers
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => serializer.serialize_some(v),
            None => serializer.serialize_none(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

fn serialize_slice<T: Serialize, S: Serializer>(
    items: &[T],
    serializer: S,
) -> Result<S::Ok, S::Error> {
    use ser::SerializeSeq as _;
    let mut seq = serializer.serialize_seq(Some(items.len()))?;
    for item in items {
        seq.serialize_element(item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_slice(self, serializer)
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
        items.iter().map(T::deserialize).collect()
    }
}

fn serialize_iter<T: Serialize, S: Serializer>(
    len: usize,
    items: impl Iterator<Item = T>,
    serializer: S,
) -> Result<S::Ok, S::Error> {
    use ser::SerializeSeq as _;
    let mut seq = serializer.serialize_seq(Some(len))?;
    for item in items {
        seq.serialize_element(&item)?;
    }
    seq.end()
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(self.len(), self.iter(), serializer)
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(self.len(), self.iter(), serializer)
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serialize_iter(self.len(), self.iter(), serializer)
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_array()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?;
        items.iter().map(T::deserialize).collect()
    }
}

macro_rules! tuple_impls {
    ($(($($idx:tt $name:ident),+))+) => {
        $(
            impl<$($name: Serialize),+> Serialize for ($($name,)+) {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    use ser::SerializeTuple as _;
                    let mut t = serializer.serialize_tuple(tuple_impls!(@count $($name)+))?;
                    $(t.serialize_element(&self.$idx)?;)+
                    t.end()
                }
            }
            impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
                fn deserialize(value: &Value) -> Result<Self, Error> {
                    let arity = tuple_impls!(@count $($name)+);
                    let items = value.as_array().ok_or_else(|| {
                        Error::custom(format!("expected array, got {}", value.kind()))
                    })?;
                    if items.len() != arity {
                        return Err(Error::custom(format!(
                            "expected {}-element array, got {} elements",
                            arity,
                            items.len()
                        )));
                    }
                    Ok(($($name::deserialize(&items[$idx])?,)+))
                }
            }
        )+
    };
    (@count $($name:ident)+) => { [$(tuple_impls!(@one $name)),+].len() };
    (@one $name:ident) => { () };
}

tuple_impls! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
}

// Maps serialize with string-convertible keys (JSON's only key type).
macro_rules! map_impls {
    ($($map:ident),+) => {
        $(
            impl<K: Serialize, V: Serialize> Serialize for $map<K, V> {
                fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                    use ser::SerializeMap as _;
                    let mut m = serializer.serialize_map(Some(self.len()))?;
                    for (k, v) in self {
                        m.serialize_key(k)?;
                        m.serialize_value(v)?;
                    }
                    m.end()
                }
            }
        )+
    };
}

map_impls!(BTreeMap, HashMap);

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_object()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

// `Value` itself round-trips transparently, so reports can embed raw JSON.
impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        use ser::{SerializeMap as _, SerializeSeq as _};
        match self {
            Value::Null => serializer.serialize_unit(),
            Value::Bool(b) => serializer.serialize_bool(*b),
            Value::I64(n) => serializer.serialize_i64(*n),
            Value::U64(n) => serializer.serialize_u64(*n),
            Value::F64(x) => serializer.serialize_f64(*x),
            Value::Str(s) => serializer.serialize_str(s),
            Value::Array(items) => {
                let mut seq = serializer.serialize_seq(Some(items.len()))?;
                for item in items {
                    seq.serialize_element(item)?;
                }
                seq.end()
            }
            Value::Object(entries) => {
                let mut m = serializer.serialize_map(Some(entries.len()))?;
                for (k, v) in entries {
                    m.serialize_key(k.as_str())?;
                    m.serialize_value(v)?;
                }
                m.end()
            }
        }
    }
}
impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use crate::json;

    #[test]
    fn std_types_roundtrip_through_json() {
        let v: (u64, Option<i32>, Vec<bool>, String) =
            (7, Some(-3), vec![true, false], "hi".to_owned());
        let text = json::to_string(&v).unwrap();
        assert_eq!(text, "[7,-3,[true,false],\"hi\"]");
        let back: (u64, Option<i32>, Vec<bool>, String) = json::from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn missing_option_reads_as_none() {
        let back: Option<u32> = json::from_str("null").unwrap();
        assert_eq!(back, None);
    }
}
