//! Serialization: the visitor-style half of the serde API.
//!
//! The trait surface here is exactly what the workspace needs: the
//! `Serializer` trait (implemented by `ca_sim::wire`'s counting serializer
//! and by [`crate::json`]'s value builder) and the compound-serializer
//! traits for sequences, tuples, maps, structs, and enum variants.

use std::fmt::Display;

/// Errors a serializer may produce.
pub trait Error: Sized {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A serializable value.
pub trait Serialize {
    /// Feeds `self` into `serializer`.
    ///
    /// # Errors
    ///
    /// Propagates whatever the serializer reports.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A data-format backend.
///
/// Mirrors `serde::ser::Serializer`, minus the rarely used entry points the
/// workspace never calls (`collect_str`, `serialize_unit_variant` with
/// skipped fields, etc.).
pub trait Serializer: Sized {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error: Error;
    /// Compound serializer for sequences.
    type SerializeSeq: SerializeSeq<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuples.
    type SerializeTuple: SerializeTuple<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple structs.
    type SerializeTupleStruct: SerializeTupleStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for tuple enum variants.
    type SerializeTupleVariant: SerializeTupleVariant<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for maps.
    type SerializeMap: SerializeMap<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for structs.
    type SerializeStruct: SerializeStruct<Ok = Self::Ok, Error = Self::Error>;
    /// Compound serializer for struct enum variants.
    type SerializeStructVariant: SerializeStructVariant<Ok = Self::Ok, Error = Self::Error>;

    /// Serializes a `bool`.
    fn serialize_bool(self, v: bool) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i8`.
    fn serialize_i8(self, v: i8) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i16`.
    fn serialize_i16(self, v: i16) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i32`.
    fn serialize_i32(self, v: i32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i64`.
    fn serialize_i64(self, v: i64) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `i128`.
    fn serialize_i128(self, v: i128) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u8`.
    fn serialize_u8(self, v: u8) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u16`.
    fn serialize_u16(self, v: u16) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u32`.
    fn serialize_u32(self, v: u32) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u64`.
    fn serialize_u64(self, v: u64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `u128`.
    fn serialize_u128(self, v: u128) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f32`.
    fn serialize_f32(self, v: f32) -> Result<Self::Ok, Self::Error>;
    /// Serializes an `f64`.
    fn serialize_f64(self, v: f64) -> Result<Self::Ok, Self::Error>;
    /// Serializes a `char`.
    fn serialize_char(self, v: char) -> Result<Self::Ok, Self::Error>;
    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error>;
    /// Serializes raw bytes.
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::None`.
    fn serialize_none(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes `Option::Some`.
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error>;
    /// Serializes the unit value `()`.
    fn serialize_unit(self) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit struct.
    fn serialize_unit_struct(self, name: &'static str) -> Result<Self::Ok, Self::Error>;
    /// Serializes a unit enum variant.
    fn serialize_unit_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-field tuple struct transparently.
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Serializes a single-field tuple enum variant.
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Self::Ok, Self::Error>;
    /// Begins a sequence.
    fn serialize_seq(self, len: Option<usize>) -> Result<Self::SerializeSeq, Self::Error>;
    /// Begins a tuple.
    fn serialize_tuple(self, len: usize) -> Result<Self::SerializeTuple, Self::Error>;
    /// Begins a tuple struct.
    fn serialize_tuple_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleStruct, Self::Error>;
    /// Begins a tuple enum variant.
    fn serialize_tuple_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeTupleVariant, Self::Error>;
    /// Begins a map.
    fn serialize_map(self, len: Option<usize>) -> Result<Self::SerializeMap, Self::Error>;
    /// Begins a struct.
    fn serialize_struct(
        self,
        name: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStruct, Self::Error>;
    /// Begins a struct enum variant.
    fn serialize_struct_variant(
        self,
        name: &'static str,
        variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<Self::SerializeStructVariant, Self::Error>;
}

/// In-progress sequence.
pub trait SerializeSeq {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the sequence.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress tuple.
pub trait SerializeTuple {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one element.
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress tuple struct.
pub trait SerializeTupleStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the tuple struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress tuple enum variant.
pub trait SerializeTupleVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one field.
    fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress map.
pub trait SerializeMap {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one key.
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Self::Error>;
    /// Serializes one value.
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Self::Error>;
    /// Finishes the map.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress struct.
pub trait SerializeStruct {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the struct.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}

/// In-progress struct enum variant.
pub trait SerializeStructVariant {
    /// Value produced on success.
    type Ok;
    /// Error type.
    type Error;
    /// Serializes one named field.
    fn serialize_field<T: Serialize + ?Sized>(
        &mut self,
        key: &'static str,
        value: &T,
    ) -> Result<(), Self::Error>;
    /// Finishes the variant.
    fn end(self) -> Result<Self::Ok, Self::Error>;
}
