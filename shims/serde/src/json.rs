//! A deterministic JSON encoder/decoder over [`Value`] trees.
//!
//! This is the shim's `serde_json`: [`to_value`] runs any [`Serialize`] impl
//! through a value-building [`crate::ser::Serializer`], [`to_string`] /
//! [`to_string_pretty`] print deterministically (object entries keep
//! insertion order, floats use Rust's shortest round-trip formatting), and
//! [`from_str`] parses back into [`Value`] for [`Deserialize`].
//!
//! Determinism matters here: the chaos harness promises byte-identical
//! reports for identical seeds, and diffs of saved schedules must reflect
//! semantic changes only.

use crate::de::Deserialize;
use crate::ser::{self, Serialize};
use std::fmt;

/// A JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    I64(i64),
    /// An unsigned integer above `i64::MAX`.
    U64(u64),
    /// A float.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; entries keep insertion order for deterministic output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's JSON type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Numeric view as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `u64`, if in range.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) => u64::try_from(v).ok(),
            Value::U64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric view as `i64`, if in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }
}

/// JSON encode/decode error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl Error {
    /// Builds an error from a message (mirror of [`ser::Error::custom`]).
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialization: Serialize -> Value
// ---------------------------------------------------------------------------

/// Converts any serializable value to a [`Value`] tree.
///
/// # Errors
///
/// Fails on non-finite floats and map keys that are not strings.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    value.serialize(ValueSerializer)
}

/// Encodes to compact JSON.
///
/// # Errors
///
/// Same conditions as [`to_value`].
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print(&to_value(value)?, None))
}

/// Encodes to pretty (2-space indented) JSON with a trailing newline-free
/// body; output is byte-deterministic for equal inputs.
///
/// # Errors
///
/// Same conditions as [`to_value`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(print(&to_value(value)?, Some(0)))
}

/// Parses JSON text into a [`Value`].
///
/// # Errors
///
/// Returns an error describing the first syntax problem.
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

/// Parses JSON text straight into a deserializable type.
///
/// # Errors
///
/// Propagates syntax errors from [`parse`] and shape errors from the
/// target's [`Deserialize`] impl.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::deserialize(&parse(text)?)
}

/// Converts a [`Value`] into a deserializable type.
///
/// # Errors
///
/// Propagates shape errors from the target's [`Deserialize`] impl.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::deserialize(value)
}

struct ValueSerializer;

fn finite(v: f64) -> Result<Value, Error> {
    if v.is_finite() {
        Ok(Value::F64(v))
    } else {
        Err(Error(format!("non-finite float {v} has no JSON form")))
    }
}

/// Builder for arrays (sequences, tuples, tuple structs/variants).
struct ArrayBuilder {
    items: Vec<Value>,
    /// For variants: wrap the finished array as `{variant: [...]}`.
    variant: Option<&'static str>,
}

/// Builder for objects (maps, structs, struct variants).
struct ObjectBuilder {
    entries: Vec<(String, Value)>,
    pending_key: Option<String>,
    variant: Option<&'static str>,
}

fn wrap(variant: Option<&'static str>, v: Value) -> Value {
    match variant {
        Some(name) => Value::Object(vec![(name.to_owned(), v)]),
        None => v,
    }
}

impl ser::Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;
    type SerializeSeq = ArrayBuilder;
    type SerializeTuple = ArrayBuilder;
    type SerializeTupleStruct = ArrayBuilder;
    type SerializeTupleVariant = ArrayBuilder;
    type SerializeMap = ObjectBuilder;
    type SerializeStruct = ObjectBuilder;
    type SerializeStructVariant = ObjectBuilder;

    fn serialize_bool(self, v: bool) -> Result<Value, Error> {
        Ok(Value::Bool(v))
    }
    fn serialize_i8(self, v: i8) -> Result<Value, Error> {
        Ok(Value::I64(v.into()))
    }
    fn serialize_i16(self, v: i16) -> Result<Value, Error> {
        Ok(Value::I64(v.into()))
    }
    fn serialize_i32(self, v: i32) -> Result<Value, Error> {
        Ok(Value::I64(v.into()))
    }
    fn serialize_i64(self, v: i64) -> Result<Value, Error> {
        Ok(Value::I64(v))
    }
    fn serialize_i128(self, v: i128) -> Result<Value, Error> {
        i64::try_from(v)
            .map(Value::I64)
            .map_err(|_| Error(format!("i128 {v} out of JSON integer range")))
    }
    fn serialize_u8(self, v: u8) -> Result<Value, Error> {
        Ok(Value::I64(v.into()))
    }
    fn serialize_u16(self, v: u16) -> Result<Value, Error> {
        Ok(Value::I64(v.into()))
    }
    fn serialize_u32(self, v: u32) -> Result<Value, Error> {
        Ok(Value::I64(v.into()))
    }
    fn serialize_u64(self, v: u64) -> Result<Value, Error> {
        Ok(match i64::try_from(v) {
            Ok(i) => Value::I64(i),
            Err(_) => Value::U64(v),
        })
    }
    fn serialize_u128(self, v: u128) -> Result<Value, Error> {
        u64::try_from(v)
            .map(|u| match i64::try_from(u) {
                Ok(i) => Value::I64(i),
                Err(_) => Value::U64(u),
            })
            .map_err(|_| Error(format!("u128 {v} out of JSON integer range")))
    }
    fn serialize_f32(self, v: f32) -> Result<Value, Error> {
        finite(v.into())
    }
    fn serialize_f64(self, v: f64) -> Result<Value, Error> {
        finite(v)
    }
    fn serialize_char(self, v: char) -> Result<Value, Error> {
        Ok(Value::Str(v.to_string()))
    }
    fn serialize_str(self, v: &str) -> Result<Value, Error> {
        Ok(Value::Str(v.to_owned()))
    }
    fn serialize_bytes(self, v: &[u8]) -> Result<Value, Error> {
        Ok(Value::Array(
            v.iter().map(|&b| Value::I64(b.into())).collect(),
        ))
    }
    fn serialize_none(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_unit(self) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_struct(self, _name: &'static str) -> Result<Value, Error> {
        Ok(Value::Null)
    }
    fn serialize_unit_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
    ) -> Result<Value, Error> {
        Ok(Value::Str(variant.to_owned()))
    }
    fn serialize_newtype_struct<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        value.serialize(ValueSerializer)
    }
    fn serialize_newtype_variant<T: Serialize + ?Sized>(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        value: &T,
    ) -> Result<Value, Error> {
        Ok(wrap(Some(variant), value.serialize(ValueSerializer)?))
    }
    fn serialize_seq(self, len: Option<usize>) -> Result<ArrayBuilder, Error> {
        Ok(ArrayBuilder {
            items: Vec::with_capacity(len.unwrap_or(0)),
            variant: None,
        })
    }
    fn serialize_tuple(self, len: usize) -> Result<ArrayBuilder, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_struct(
        self,
        _name: &'static str,
        len: usize,
    ) -> Result<ArrayBuilder, Error> {
        self.serialize_seq(Some(len))
    }
    fn serialize_tuple_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ArrayBuilder, Error> {
        Ok(ArrayBuilder {
            items: Vec::with_capacity(len),
            variant: Some(variant),
        })
    }
    fn serialize_map(self, len: Option<usize>) -> Result<ObjectBuilder, Error> {
        Ok(ObjectBuilder {
            entries: Vec::with_capacity(len.unwrap_or(0)),
            pending_key: None,
            variant: None,
        })
    }
    fn serialize_struct(self, _name: &'static str, len: usize) -> Result<ObjectBuilder, Error> {
        self.serialize_map(Some(len))
    }
    fn serialize_struct_variant(
        self,
        _name: &'static str,
        _variant_index: u32,
        variant: &'static str,
        len: usize,
    ) -> Result<ObjectBuilder, Error> {
        Ok(ObjectBuilder {
            entries: Vec::with_capacity(len),
            pending_key: None,
            variant: Some(variant),
        })
    }
}

impl ser::SerializeSeq for ArrayBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        self.items.push(value.serialize(ValueSerializer)?);
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(wrap(self.variant, Value::Array(self.items)))
    }
}

macro_rules! array_like {
    ($trait:path, $method:ident) => {
        impl $trait for ArrayBuilder {
            type Ok = Value;
            type Error = Error;
            fn $method<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
                self.items.push(value.serialize(ValueSerializer)?);
                Ok(())
            }
            fn end(self) -> Result<Value, Error> {
                Ok(wrap(self.variant, Value::Array(self.items)))
            }
        }
    };
}

array_like!(ser::SerializeTuple, serialize_element);
array_like!(ser::SerializeTupleStruct, serialize_field);
array_like!(ser::SerializeTupleVariant, serialize_field);

impl ser::SerializeMap for ObjectBuilder {
    type Ok = Value;
    type Error = Error;
    fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
        match key.serialize(ValueSerializer)? {
            Value::Str(s) => {
                self.pending_key = Some(s);
                Ok(())
            }
            other => Err(Error(format!(
                "JSON map keys must be strings, got {}",
                other.kind()
            ))),
        }
    }
    fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
        let key = self
            .pending_key
            .take()
            .ok_or_else(|| Error("serialize_value before serialize_key".to_owned()))?;
        self.entries.push((key, value.serialize(ValueSerializer)?));
        Ok(())
    }
    fn end(self) -> Result<Value, Error> {
        Ok(wrap(self.variant, Value::Object(self.entries)))
    }
}

macro_rules! object_like {
    ($trait:path) => {
        impl $trait for ObjectBuilder {
            type Ok = Value;
            type Error = Error;
            fn serialize_field<T: Serialize + ?Sized>(
                &mut self,
                key: &'static str,
                value: &T,
            ) -> Result<(), Error> {
                self.entries
                    .push((key.to_owned(), value.serialize(ValueSerializer)?));
                Ok(())
            }
            fn end(self) -> Result<Value, Error> {
                Ok(wrap(self.variant, Value::Object(self.entries)))
            }
        }
    };
}

object_like!(ser::SerializeStruct);
object_like!(ser::SerializeStructVariant);

// ---------------------------------------------------------------------------
// Printing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Formats a float deterministically: Rust's shortest round-trip repr, with
/// a `.0` suffix when it would otherwise read as an integer.
fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

/// `indent = None` prints compact JSON; `Some(level)` pretty-prints.
fn print(v: &Value, indent: Option<usize>) -> String {
    let mut out = String::new();
    print_into(&mut out, v, indent);
    out
}

fn print_into(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => out.push_str(&fmt_f64(*x)),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (k, item) in items.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                match indent {
                    Some(level) => {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        print_into(out, item, Some(level + 1));
                    }
                    None => print_into(out, item, None),
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (k, (key, val)) in entries.iter().enumerate() {
                if k > 0 {
                    out.push(',');
                }
                match indent {
                    Some(level) => {
                        out.push('\n');
                        out.push_str(&"  ".repeat(level + 1));
                        escape_into(out, key);
                        out.push_str(": ");
                        print_into(out, val, Some(level + 1));
                    }
                    None => {
                        escape_into(out, key);
                        out.push(':');
                        print_into(out, val, None);
                    }
                }
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error(format!("expected `{kw}` at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.expect_keyword("null").map(|()| Value::Null),
            Some(b't') => self.expect_keyword("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_keyword("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                b as char, self.pos
            ))),
            None => Err(Error("unexpected end of input".to_owned())),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_owned()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".to_owned()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".to_owned()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".to_owned()))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8 in string".to_owned()))?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error("unterminated string".to_owned())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ascii digits are valid UTF-8");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("bad number `{text}`")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_parse_roundtrip() {
        let v = Value::Object(vec![
            ("a".to_owned(), Value::I64(-3)),
            (
                "b".to_owned(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".to_owned(), Value::F64(0.5)),
            ("d".to_owned(), Value::Str("x\"\\\n".to_owned())),
            ("e".to_owned(), Value::U64(u64::MAX)),
        ]);
        for pretty in [false, true] {
            let text = print(&v, if pretty { Some(0) } else { None });
            assert_eq!(parse(&text).unwrap(), v, "pretty = {pretty}");
        }
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.125), "0.125");
        assert_eq!(parse("1.0").unwrap(), Value::F64(1.0));
        assert_eq!(parse("1").unwrap(), Value::I64(1));
    }

    #[test]
    fn printing_is_deterministic() {
        let v = Value::Object(vec![
            ("z".to_owned(), Value::I64(1)),
            ("a".to_owned(), Value::I64(2)),
        ]);
        // Insertion order, not sorted: deterministic, diff-friendly.
        assert_eq!(print(&v, None), "{\"z\":1,\"a\":2}");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
    }
}
