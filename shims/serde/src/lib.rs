//! Offline stand-in for `serde` (+ a built-in JSON data format).
//!
//! The workspace builds without crates.io access, so this shim provides the
//! slice of serde the workspace relies on:
//!
//! * [`Serialize`] / [`ser`] — the visitor-style serializer API, with exactly
//!   the trait surface `ca_sim::wire`'s counting serializer implements;
//! * [`de::Deserialize`] — a simplified, JSON-value-based deserialization
//!   trait (no visitor machinery; nothing in the workspace implements a
//!   custom `Deserializer`);
//! * [`json`] — a deterministic JSON encoder/decoder used by the chaos
//!   harness to save, replay, and diff fault schedules and reports;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   shim, generating impls against the traits above.
//!
//! Conventions match `serde_json`'s external tagging: structs are objects,
//! tuple structs are arrays, newtype structs are transparent, unit variants
//! are strings, and data-carrying variants are single-key objects.

pub mod de;
pub mod json;
pub mod ser;

// The trait and the derive macro live in different namespaces, so both can
// be re-exported under the same name (as in real serde).
pub use de::Deserialize;
pub use ser::Serialize;
pub use serde_derive::{Deserialize, Serialize};

/// Implementations of [`Serialize`] and [`de::Deserialize`] for std types.
mod impls;
