//! Deserialization: a simplified, JSON-value-based API.
//!
//! Real serde deserializes through a visitor abstraction so any data format
//! can drive it. Nothing in this workspace implements a custom
//! `Deserializer`, so this shim collapses the abstraction: a value is
//! deserialized straight from a parsed [`crate::json::Value`] tree. The
//! derive macro generates impls of [`Deserialize`] that mirror the encoding
//! conventions of [`crate::json`]'s serializer.

use crate::json::{Error, Value};

/// A value reconstructible from a JSON tree.
pub trait Deserialize: Sized {
    /// Reads `Self` out of `value`.
    ///
    /// # Errors
    ///
    /// Returns an error when the JSON shape does not match `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

/// Reads field `name` from the object entries `obj`, treating a missing key
/// as JSON `null` (so `Option` fields may be omitted).
///
/// # Errors
///
/// Propagates the field type's own shape errors, annotated with the field
/// name.
pub fn field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, Error> {
    static NULL: Value = Value::Null;
    let v = obj
        .iter()
        .find(|(k, _)| k == name)
        .map_or(&NULL, |(_, v)| v);
    T::deserialize(v).map_err(|e| Error::custom(format!("field `{name}`: {e}")))
}

/// Interprets `value` as an externally tagged enum: either a bare string
/// (unit variant) or a single-key object `{variant: payload}`. Returns the
/// variant name and its payload (`Null` for unit variants).
///
/// # Errors
///
/// Returns an error for any other JSON shape.
pub fn variant(value: &Value) -> Result<(&str, &Value), Error> {
    static NULL: Value = Value::Null;
    match value {
        Value::Str(name) => Ok((name, &NULL)),
        Value::Object(entries) if entries.len() == 1 => Ok((entries[0].0.as_str(), &entries[0].1)),
        other => Err(Error::custom(format!(
            "expected enum (string or single-key object), got {}",
            other.kind()
        ))),
    }
}
