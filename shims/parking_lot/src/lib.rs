//! Offline stand-in for `parking_lot`: the `Mutex`/`RwLock` API without
//! lock poisoning, backed by `std::sync`.

use std::sync;

/// Guard for a locked [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A mutex whose `lock` never returns a poison error (parking_lot has no
/// poisoning; a panic while locked simply releases the lock).
#[derive(Debug, Default)]
pub struct Mutex<T>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Locks, ignoring poisoning from other threads' panics.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the mutex and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// Guard for a read-locked [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard for a write-locked [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Consumes the lock and returns the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(3u32);
        *m.lock() += 4;
        assert_eq!(*m.lock(), 7);
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
