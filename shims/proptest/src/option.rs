//! `Option` strategies (`of`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Strategy producing `None` or `Some` of an inner strategy's value.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
        // Real proptest favors `Some`; matching that keeps the Some branch
        // well exercised without starving the None branch.
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `Option`s of values from `inner` (75% `Some`).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
