//! Offline stand-in for `proptest`.
//!
//! Provides the slice of the proptest API this workspace's property tests
//! use: the [`Strategy`] trait with `prop_map` / `prop_flat_map`, integer
//! and float range strategies, [`any`], [`Just`], tuple strategies,
//! [`collection::vec`], [`option::of`], the [`proptest!`] macro, and
//! `prop_assert*`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs via the assertion
//!   message; minimization is out of scope (the chaos harness has its own
//!   delta-debugging shrinker for the inputs that matter).
//! * **Deterministic sampling.** Each test's RNG is seeded from a hash of
//!   the test's name, so failures reproduce without a persistence file.

use rand::rngs::StdRng;
use rand::{Rng, RngCore};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod option;

/// Re-exports mirroring real proptest's `prop` module shorthand.
pub mod prop {
    pub use crate::{collection, option};
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, Strategy,
    };
}

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { source: self, f }
    }

    /// Chains a dependent strategy off each generated value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { source: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Always produces a clone of the given value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical full-range strategy.
pub trait ArbitraryValue {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

/// The strategy returned by [`any`].
pub struct AnyStrategy<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full range of `T`.
pub fn any<T: ArbitraryValue>() -> AnyStrategy<T> {
    AnyStrategy(PhantomData)
}

macro_rules! arbitrary_ints {
    ($($ty:ty),+) => {
        $(
            impl ArbitraryValue for $ty {
                fn arbitrary(rng: &mut StdRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )+
    };
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

// ---------------------------------------------------------------------------
// Range strategies
// ---------------------------------------------------------------------------

/// Samples a value in `[lo, lo + span)` where `span > 0`, shared by all
/// integer range strategies (everything widens through `i128`).
fn sample_span(rng: &mut StdRng, lo: i128, span: i128) -> i128 {
    assert!(span > 0, "cannot sample from an empty range");
    let span = u64::try_from(span).expect("range span too large for this proptest shim");
    lo + i128::from(rng.gen_range(0..span))
}

macro_rules! int_range_strategies {
    ($($ty:ty),+) => {
        $(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    let lo = self.start as i128;
                    sample_span(rng, lo, self.end as i128 - lo) as $ty
                }
            }
            impl Strategy for RangeInclusive<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut StdRng) -> $ty {
                    let lo = *self.start() as i128;
                    sample_span(rng, lo, *self.end() as i128 - lo + 1) as $ty
                }
            }
        )+
    };
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, i128);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies
// ---------------------------------------------------------------------------

macro_rules! tuple_strategies {
    ($(($($name:ident),+))+) => {
        $(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Configuration and the case loop behind [`proptest!`].
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// How many cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to draw.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Smaller than real proptest's 256: no shrinking means a failure
            // report is only as useful as the case that produced it, and the
            // workspace's properties are statistical, not boundary-hunting.
            ProptestConfig { cases: 64 }
        }
    }

    /// FNV-1a, used to derive a per-test seed from the test's name.
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `test` against `config.cases` values drawn from `strategy`,
    /// deterministically per test name. Panics (with the case index) on the
    /// first failing case.
    pub fn run<S: Strategy>(
        config: ProptestConfig,
        name: &str,
        strategy: &S,
        mut test: impl FnMut(S::Value),
    ) {
        let mut rng = StdRng::seed_from_u64(fnv1a(name.as_bytes()));
        for _case in 0..config.cases {
            test(strategy.generate(&mut rng));
        }
    }
}

/// Declares deterministic property tests.
///
/// Each `fn name(pat in strategy, ...) { body }` item expands to a plain
/// `#[test]` (the attribute is written by the caller and passed through)
/// that draws tuples from the strategies and runs the body per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @config ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            @config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@config ($config:expr)) => {};
    (@config ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __strategy = ($($strat,)+);
            $crate::test_runner::run(
                $config,
                concat!(module_path!(), "::", stringify!($name)),
                &__strategy,
                |($($pat,)+)| $body,
            );
        }
        $crate::__proptest_fns! { @config ($config) $($rest)* }
    };
}

/// Asserts inside a property body (no shrinking, so plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { ::std::assert!($($tt)*) };
}

/// Equality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { ::std::assert_eq!($($tt)*) };
}

/// Inequality assert inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { ::std::assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds; tuples and maps compose.
        #[test]
        fn ranges_and_combinators(
            a in 2usize..=5,
            b in -50i128..50,
            c in 0.0f64..0.9,
            v in prop::collection::vec(any::<bool>(), 1..8),
            o in prop::option::of(1u64..4),
            d in (0u8..3).prop_map(|k| k * 2),
        ) {
            prop_assert!((2..=5).contains(&a));
            prop_assert!((-50..50).contains(&b));
            prop_assert!((0.0..0.9).contains(&c));
            prop_assert!(!v.is_empty() && v.len() < 8);
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
            prop_assert_eq!(d % 2, 0);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        use rand::SeedableRng;
        let strat = (0u64..1000, 0u64..1000);
        let mut r1 = rand::rngs::StdRng::seed_from_u64(1);
        let mut r2 = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(strat.generate(&mut r1), strat.generate(&mut r2));
    }

    proptest! {
        /// The default config also works (no `proptest_config` header).
        #[test]
        fn default_config_runs(x in 0usize..10) {
            prop_assert!(x < 10);
        }
    }
}
