//! Collection strategies (`vec`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Strategy producing `Vec`s of values from an element strategy.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.min == self.size.max {
            self.size.min
        } else {
            rng.gen_range(self.size.min..=self.size.max)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `Vec`s whose length is drawn from `size` and whose elements come from
/// `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
