//! Offline stand-in for `criterion`.
//!
//! Keeps the API shape the workspace's benches use — `Criterion`,
//! `benchmark_group`/`bench_with_input`/`bench_function`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!`, `black_box` — with a deliberately
//! simple measurement loop: a short calibration pass picks an iteration
//! count targeting ~50ms per benchmark, then one timed pass reports the
//! mean time per iteration. No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for bench code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A two-part id `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

/// Runs closures repeatedly and measures them.
pub struct Bencher {
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    mean: Duration,
}

impl Bencher {
    /// Times `routine`, storing the mean time per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the iteration count until one pass takes ≥5ms.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || iters >= 1 << 20 {
                break elapsed / u32::try_from(iters).expect("iteration count fits u32");
            }
            iters *= 2;
        };
        // Measure: one pass sized to ~50ms.
        let target = Duration::from_millis(50);
        let n = (target.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let start = Instant::now();
        for _ in 0..n {
            black_box(routine());
        }
        self.mean = start.elapsed() / u32::try_from(n).expect("iteration count fits u32");
    }
}

fn run_one(name: &str, f: impl FnOnce(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
    };
    f(&mut b);
    println!("{name}: {:?} per iter", b.mean);
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `routine` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        routine: F,
    ) -> &mut Self
    where
        F: FnOnce(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id.text), |b| routine(b, input));
        self
    }

    /// Benchmarks a closure with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&format!("{}/{id}", self.name), routine);
        self
    }

    /// Overrides the sample count (accepted for API compatibility; this
    /// harness sizes runs by time, not samples).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Benchmarks a single named closure.
    pub fn bench_function<F>(&mut self, name: impl Display, routine: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_one(&name.to_string(), routine);
        self
    }
}

/// Bundles bench functions under a name, as real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut total = 0u64;
        run_one("smoke", |b| {
            b.iter(|| {
                total = total.wrapping_add(black_box(1));
            });
        });
        assert!(total > 0);
    }
}
