//! Exact PA/TA in polynomial time: the **level-vector dynamic program**.
//!
//! The exhaustive oracles ([`crate::enumeration`], [`Run::try_enumerate_all`])
//! pay `2^bits` executions and hit the typed 24-bit wall long before the
//! paper's §8 scale (N = 1000). The paper's own structure admits far better:
//! counts equal modified levels (Lemma 6.4), levels move by at most a couple
//! of units per round, and the spread `|ML_i − ML_j| ≤ 1` (Lemma 6.2) is an
//! automaton invariant. So the *joint* state of the `m` counting automata,
//! viewed up to a common count shift, lives in a **constant-size** space:
//!
//! * per process: a normalized count in `{0, 1, 2}`, the seen-set
//!   (`m ≤ 8` ⟹ one byte), and the valid/token flags — 12 bits, so the
//!   whole structural state packs into a `u128`;
//! * plus one shared **base** (the common shift), clipped at the protocol's
//!   saturation point: once every counting process fires with probability 1
//!   (`count + slack − offset ≥ t`, or `count ≥ θ`), larger bases are
//!   outcome- and dynamics-equivalent, so they collapse onto one class.
//!
//! The sweep [`sweep`] runs a transfer over `(structural state → set of
//! reachable bases)`: per-round transition kernels are derived from the
//! `2^E` delivery patterns (`E` = directed edges) and **memoized per
//! structural class**, so the whole 2^inputs × 2^(E·N) run space reduces to
//! (reachable structs) × (N rounds) kernel applications — polynomial in N.
//! That computes `max_R Pr[TA|R]` and `max_R Pr[PA|R]` for *every* horizon
//! up to N exactly, in `ca_core::rational` arithmetic, at scales where
//! enumeration returns its typed `bits > 24` error.
//!
//! # Fidelity and the enumeration-as-oracle contract
//!
//! Transitions are computed by running the **real**
//! [`CountingState::process_messages`] on reconstructed states — the same
//! generalization of [`crate::weak_exact`]'s two-general chain to arbitrary
//! graphs, never a hand-derived transition table. The DP is an
//! *optimization*, not a second source of truth: on every DP-eligible
//! configuration small enough to enumerate (`bits ≤ 24`),
//!
//! * [`run_outcomes`] must equal the closed forms in [`crate::exact`] and
//!   the executed protocol, and
//! * [`sweep`] must equal [`worst_case_by_enumeration`] (brute force over
//!   [`Run::try_enumerate_all`]),
//!
//! both enforced by the differential suite in `tests/level_dp_differential.rs`
//! and the in-module tests below.

use crate::exact::ExactOutcome;
use ca_core::bitset::BitSet;
use ca_core::error::CaError;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::rational::Rational;
use ca_core::run::Run;
use ca_core::SlicedSpec;
use ca_obs::{CounterId, Metrics, SpanId};
use ca_protocols::counting::{CountingMsg, CountingState};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Most processes the sweep supports: the per-process seen-set must fit the
/// 8 bits reserved for it in the packed structural key.
pub const MAX_DP_PROCESSES: usize = 8;

/// Most directed edges the sweep supports: kernels enumerate all `2^E`
/// delivery patterns per structural class, so `E` is capped where that stays
/// cheap (4096 patterns — K4's 12 directed edges are the largest clique).
pub const MAX_DP_EDGES: usize = 12;

/// Largest firing range `t = 1/ε` (and threshold `θ`) the DP accepts: the
/// base set holds one bit per un-saturated base value, so this bounds its
/// footprint at 8 KiB per structural class.
pub const MAX_DP_T: u64 = 1 << 16;

/// Bits per process in the packed structural key: 2 (normalized count)
/// + 1 (valid) + 1 (token) + 8 (seen-set).
const PROC_BITS: u32 = 12;

/// A DP-eligible output rule: the integer-parameter mirror of
/// [`SlicedSpec`]. Both supported protocol families are the Figure-1
/// counting automaton; only the firing rule differs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DpSpec {
    /// Protocol S's randomized rule: `rfire` uniform on `(offset, offset+t]`,
    /// attack iff `count ≥ 1 ∧ count + slack ≥ rfire`, so a process with
    /// `count ≥ 1` and the token attacks with probability
    /// `clamp((count + slack − offset) / t, 0, 1)` — exact in rationals.
    RandomFire {
        /// 0 for input-based validity, 1 for message-based (footnote 1).
        offset: u32,
        /// The firing range width `t = 1/ε` as an exact integer.
        t: u64,
        /// Decision slack (0 for standard S, 1 for the eager variant).
        slack: u32,
    },
    /// The deterministic threshold rule of
    /// [`ca_protocols::FixedThreshold`]: attack iff the process holds the
    /// token and `count ≥ θ`.
    Threshold {
        /// The firing threshold `θ ≥ 1`.
        theta: u32,
    },
}

impl DpSpec {
    /// Standard Protocol S with `ε = 1/t`.
    pub fn protocol_s(t: u64) -> Self {
        DpSpec::RandomFire {
            offset: 0,
            t,
            slack: 0,
        }
    }

    /// The eager variant ([`ca_protocols::ProtocolS::eager`]).
    pub fn eager(t: u64) -> Self {
        DpSpec::RandomFire {
            offset: 0,
            t,
            slack: 1,
        }
    }

    /// The message-based-validity variant
    /// ([`ca_protocols::ProtocolS::with_message_validity`]).
    pub fn message_validity(t: u64) -> Self {
        DpSpec::RandomFire {
            offset: 1,
            t,
            slack: 0,
        }
    }

    /// The deterministic threshold rule.
    pub fn threshold(theta: u32) -> Self {
        DpSpec::Threshold { theta }
    }

    /// Converts a sliced-engine spec when its parameters are exactly
    /// representable: `offset ∈ {0, 1}` and `t` a positive integer within
    /// [`MAX_DP_T`]. Returns `None` otherwise — the caller falls back to the
    /// scalar path, mirroring the sliced engine's own eligibility contract.
    pub fn from_sliced(spec: SlicedSpec) -> Option<DpSpec> {
        match spec {
            SlicedSpec::RandomFire { offset, t, slack } => {
                if offset != 0.0 && offset != 1.0 {
                    return None;
                }
                if !(t >= 1.0 && t <= MAX_DP_T as f64 && t.fract() == 0.0) {
                    return None;
                }
                Some(DpSpec::RandomFire {
                    offset: offset as u32,
                    t: t as u64,
                    slack,
                })
            }
            SlicedSpec::Threshold { theta } => Some(DpSpec::Threshold { theta }),
        }
    }

    /// Exact probability that a process with this final `count` (and token
    /// possession) attacks. Tokenless and count-0 processes never attack.
    pub fn attack_prob(&self, count: u32, has_token: bool) -> Rational {
        if !has_token || count == 0 {
            return Rational::ZERO;
        }
        match *self {
            DpSpec::RandomFire { offset, t, slack } => Rational::new(
                i128::from(count) + i128::from(slack) - i128::from(offset),
                t as i128,
            )
            .clamp(Rational::ZERO, Rational::ONE),
            DpSpec::Threshold { theta } => {
                if count >= theta {
                    Rational::ONE
                } else {
                    Rational::ZERO
                }
            }
        }
    }

    /// The base at which every counting process (`count ≥ 1`, which implies
    /// token possession) fires with probability exactly 1, whatever its
    /// normalized count. Bases at or past this value are clip-equivalent:
    /// same outcome probabilities, same (shift-invariant) dynamics.
    fn saturation_base(&self) -> u32 {
        match *self {
            // count = 1 + base, p = 1 ⟺ 1 + base + slack − offset ≥ t.
            DpSpec::RandomFire { offset, t, slack } => {
                (t as i64 + i64::from(offset) - i64::from(slack) - 1).max(0) as u32
            }
            // count = 1 + base ≥ θ.
            DpSpec::Threshold { theta } => theta - 1,
        }
    }

    /// Validates the firing-rule parameters.
    pub fn validate_params(&self) -> Result<(), CaError> {
        match *self {
            DpSpec::RandomFire { offset, t, .. } => {
                if t == 0 || t > MAX_DP_T {
                    return Err(CaError::malformed(format!(
                        "DP firing range t = {t} outside 1..={MAX_DP_T}"
                    )));
                }
                if offset > 1 {
                    return Err(CaError::malformed(format!(
                        "DP rfire offset {offset} is not a validity mode (0 or 1)"
                    )));
                }
            }
            DpSpec::Threshold { theta } => {
                if theta == 0 || u64::from(theta) > MAX_DP_T {
                    return Err(CaError::malformed(format!(
                        "DP threshold θ = {theta} outside 1..={MAX_DP_T}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Validates parameters *and* the graph's fit for the all-runs sweep
    /// (`m ≤ 8` for the packed seen-sets, `E ≤ 12` for the kernel's
    /// delivery-pattern enumeration).
    pub fn validate_for_sweep(&self, graph: &Graph) -> Result<(), CaError> {
        self.validate_params()?;
        let m = graph.len();
        if !(2..=MAX_DP_PROCESSES).contains(&m) {
            return Err(CaError::malformed(format!(
                "level DP sweep supports 2..={MAX_DP_PROCESSES} processes, graph has {m}"
            )));
        }
        let edges = graph.directed_edges().count();
        if edges > MAX_DP_EDGES {
            return Err(CaError::malformed(format!(
                "level DP sweep supports ≤{MAX_DP_EDGES} directed edges, graph has {edges}"
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Per-run exact outcomes (direct stepping of the real automaton)
// ---------------------------------------------------------------------------

/// Outcome probabilities from the final joint automaton state: all attack
/// events are driven by the one shared `rfire` draw (or are deterministic),
/// so they are nested — `Pr[TA] = min_i p_i`, `Pr[some attack] = max_i p_i`.
fn outcome_of(spec: &DpSpec, states: &[CountingState<u8>]) -> ExactOutcome {
    let mut ta = Rational::ONE;
    let mut some = Rational::ZERO;
    for s in states {
        let p = spec.attack_prob(s.count, s.token.is_some());
        ta = ta.min(p);
        some = some.max(p);
    }
    ExactOutcome {
        ta,
        na: Rational::ONE - some,
        pa: some - ta,
    }
}

/// Exact outcome probabilities of the DP-eligible protocol `spec` on one
/// fixed run, by stepping the real [`CountingState`] automaton once per
/// round (counts and token possession are `rfire`-independent) and
/// integrating the firing rule analytically.
///
/// Equivalent to [`crate::exact::protocol_s_outcomes_slack`] on the
/// Protocol S family, but also covers the message-validity offset and the
/// deterministic threshold rule, and exits early once every process fires
/// with probability 1 (probabilities are monotone in the round: counts never
/// decrease and the token is never revoked).
pub fn run_outcomes(graph: &Graph, run: &Run, spec: &DpSpec) -> Result<ExactOutcome, CaError> {
    spec.validate_params()?;
    let m = graph.len();
    if run.process_count() != m {
        return Err(CaError::malformed(format!(
            "run spans {} processes but the graph has {m}",
            run.process_count()
        )));
    }
    let mut states: Vec<CountingState<u8>> = graph
        .vertices()
        .map(|i| {
            let token = (i == ProcessId::LEADER).then_some(1u8);
            CountingState::initial(m, i, run.has_input(i), token)
        })
        .collect();
    for r in 1..=run.horizon() {
        let out = outcome_of(spec, &states);
        if out.ta == Rational::ONE {
            break; // saturated: TA is certain and stays certain
        }
        let msgs: Vec<CountingMsg<u8>> = states.iter().map(CountingState::to_msg).collect();
        let mut inbox: Vec<Vec<CountingMsg<u8>>> = vec![Vec::new(); m];
        run.for_each_message_in_round(Round::new(r), |slot| {
            inbox[slot.to.index()].push(msgs[slot.from.index()].clone());
        });
        for (i, inbox_i) in inbox.into_iter().enumerate() {
            if !inbox_i.is_empty() {
                states[i].process_messages(m, ProcessId::new(i as u32), &inbox_i);
            }
        }
    }
    Ok(outcome_of(spec, &states))
}

/// Protocol S exact outcomes through the DP path, with the scalar closed
/// form as a divergence-audited fallback: when `audit` is set the scalar
/// [`crate::exact::protocol_s_outcomes`] is also computed and any
/// disagreement routes the scalar answer through (and bumps the
/// `exact.dp.fallbacks` counter) — the same spot-check-and-fall-back
/// pattern the Monte Carlo layer uses for the sliced engine.
///
/// Returns the outcome and whether the DP result was used.
pub fn outcomes_with_fallback(
    graph: &Graph,
    run: &Run,
    t: u64,
    audit: bool,
) -> (ExactOutcome, bool) {
    let obs = Metrics::new();
    let dp = run_outcomes(graph, run, &DpSpec::protocol_s(t))
        .ok()
        .filter(ExactOutcome::is_valid);
    let result = match dp {
        Some(out) if !audit => (out, true),
        Some(out) => {
            let scalar = crate::exact::protocol_s_outcomes(graph, run, t);
            if out == scalar {
                (out, true)
            } else {
                obs.inc(CounterId::ExactDpFallbacks);
                (scalar, false)
            }
        }
        None => {
            obs.inc(CounterId::ExactDpFallbacks);
            (crate::exact::protocol_s_outcomes(graph, run, t), false)
        }
    };
    obs.flush();
    result
}

// ---------------------------------------------------------------------------
// Structural states: packing, normalization, interning
// ---------------------------------------------------------------------------

/// Packs the joint automaton state (normalized counts) into the structural
/// key: 12 bits per process, low process first.
///
/// # Panics
///
/// Panics if a normalized count exceeds 2 — that would break Lemma 6.2's
/// spread invariant, which the packing relies on.
fn pack_state(states: &[CountingState<u8>]) -> u128 {
    let mut key = 0u128;
    for (i, s) in states.iter().enumerate() {
        assert!(
            s.count <= 2,
            "normalized count {} breaks the Lemma 6.2 spread invariant",
            s.count
        );
        let mut seen_mask = 0u16;
        for b in s.seen.iter() {
            seen_mask |= 1 << b;
        }
        let w = (s.count as u16)
            | (u16::from(s.valid) << 2)
            | (u16::from(s.token.is_some()) << 3)
            | (seen_mask << 4);
        key |= u128::from(w) << (i as u32 * PROC_BITS);
    }
    key
}

/// Inverse of [`pack_state`].
fn unpack_state(key: u128, m: usize) -> Vec<CountingState<u8>> {
    (0..m)
        .map(|i| {
            let w = ((key >> (i as u32 * PROC_BITS)) & 0xFFF) as u16;
            let mut seen = BitSet::new(m);
            for b in 0..m {
                if (w >> (4 + b)) & 1 == 1 {
                    seen.insert(b);
                }
            }
            CountingState {
                count: u32::from(w & 0b11),
                seen,
                valid: w & 0b100 != 0,
                token: (w & 0b1000 != 0).then_some(1u8),
            }
        })
        .collect()
}

/// Shifts all counts down so the minimum positive count sits at exactly 1
/// (preserving the `count ≥ 1` semantics the automaton branches on);
/// min-0 states are left untouched. Returns the shift, which the caller
/// accumulates into the base.
fn normalize(states: &mut [CountingState<u8>]) -> u32 {
    let min = states.iter().map(|s| s.count).min().unwrap_or(0);
    let delta = min.saturating_sub(1);
    if delta > 0 {
        for s in states.iter_mut() {
            s.count -= delta;
        }
    }
    delta
}

// ---------------------------------------------------------------------------
// Base sets: reachable common shifts per structural class, clipped
// ---------------------------------------------------------------------------

/// The set of reachable bases for one structural class: a bitset over
/// `0..=cap`, where the cap bit is the clip-equivalence class "saturated —
/// everything fires with probability 1".
#[derive(Clone, Debug, PartialEq, Eq)]
struct BaseSet {
    words: Vec<u64>,
    /// Number of distinct base classes (`cap + 1`).
    bits: usize,
}

impl BaseSet {
    fn empty(cap: u32) -> Self {
        let bits = cap as usize + 1;
        BaseSet {
            words: vec![0; bits.div_ceil(64)],
            bits,
        }
    }

    fn insert(&mut self, b: usize) {
        debug_assert!(b < self.bits);
        self.words[b / 64] |= 1 << (b % 64);
    }

    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Highest reachable base, if any.
    fn max_bit(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(wi * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// True iff any set bit lies strictly above `threshold`.
    fn any_bit_above(&self, threshold: usize) -> bool {
        let start = threshold + 1;
        if start >= self.bits {
            return false;
        }
        let w0 = start / 64;
        if self.words[w0] >> (start % 64) != 0 {
            return true;
        }
        self.words[w0 + 1..].iter().any(|&w| w != 0)
    }

    /// All reachable bases, ascending.
    fn iter_bits(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| (w >> b) & 1 == 1)
                .map(move |b| wi * 64 + b)
        })
    }

    /// ORs `other` shifted up by `delta` into `self`, folding anything past
    /// the cap onto the cap bit. Returns whether any base was clipped — a
    /// clip-equivalence-class collapse.
    fn or_shifted(&mut self, other: &BaseSet, delta: u32) -> bool {
        debug_assert_eq!(self.bits, other.bits);
        let cap = self.bits - 1;
        let delta = delta as usize;
        let clipped = if delta == 0 {
            false
        } else if delta > cap {
            !other.is_empty()
        } else {
            other.any_bit_above(cap - delta)
        };
        let wshift = delta / 64;
        let bshift = (delta % 64) as u32;
        for wi in (wshift..self.words.len()).rev() {
            let lo = other.words[wi - wshift];
            let mut v = if bshift == 0 { lo } else { lo << bshift };
            if bshift > 0 && wi > wshift {
                v |= other.words[wi - wshift - 1] >> (64 - bshift);
            }
            self.words[wi] |= v;
        }
        // Clear the shifted-past-the-cap bits, then fold them onto the cap.
        let tail = self.bits % 64;
        if tail != 0 {
            *self.words.last_mut().unwrap() &= (1u64 << tail) - 1;
        }
        if clipped {
            self.insert(cap);
        }
        clipped
    }
}

// ---------------------------------------------------------------------------
// The sweep
// ---------------------------------------------------------------------------

/// One row of the exactly computed §8 curve: worst-case (over all runs of
/// this horizon) total-attack and partial-attack probabilities.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Run horizon (number of rounds).
    pub round: u32,
    /// `max_R Pr[TA|R]` — the best achievable liveness at this horizon.
    pub max_ta: Rational,
    /// `max_R Pr[PA|R]` — the worst-case disagreement `U_s` at this horizon.
    pub max_pa: Rational,
}

/// Deterministic work counters of one sweep (mirrored into the `exact.dp.*`
/// observability counters).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DpStats {
    /// Distinct structural equivalence classes interned.
    pub structural_states: u64,
    /// Frontier entries expanded, summed over rounds.
    pub states_visited: u64,
    /// Kernel-cache hits (a class revisited in a later round or frontier).
    pub kernel_hits: u64,
    /// Kernel-cache misses (kernels actually computed: `2^E` pattern
    /// executions each).
    pub kernel_misses: u64,
    /// Base values folded onto the saturation cap (clip-equivalence
    /// collapses).
    pub collapses: u64,
}

/// The byte-stable result of [`sweep`]: the exactly computed tradeoff curve
/// plus the work statistics. Contains no wall-clock fields, so serialized
/// reports are identical run to run — the `ca exact --compare` drift gate
/// relies on this.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Report schema version.
    pub schema: u32,
    /// Number of processes.
    pub m: usize,
    /// Sweep horizon N.
    pub rounds: u32,
    /// The firing rule analyzed.
    pub spec: DpSpec,
    /// First horizon with `max_ta = 1` (liveness 1 achievable), if reached.
    pub first_certain_round: Option<u32>,
    /// `max_ta` at the final horizon.
    pub final_max_ta: Rational,
    /// Worst-case disagreement at the final horizon — since sparse runs
    /// embed every shorter run, this is `U_s` over the whole ≤N-round family.
    pub u_s: Rational,
    /// Curve rows at the requested checkpoint horizons (final always
    /// included).
    pub curve: Vec<CurvePoint>,
    /// Work counters.
    pub stats: DpStats,
}

/// The sweep engine state, separated so kernels intern successors while the
/// frontier is being expanded.
struct Sweeper {
    m: usize,
    edges: Vec<(usize, usize)>,
    /// Structural key → interned id.
    ids: HashMap<u128, usize>,
    /// id → packed key.
    keys: Vec<u128>,
    /// id → `(count, token)` per process, for outcome evaluation.
    procs: Vec<Vec<(u32, bool)>>,
    /// id → memoized transition kernel: deduped `(successor id, base delta)`
    /// over all `2^E` delivery patterns.
    kernels: Vec<Option<Vec<(usize, u32)>>>,
    stats: DpStats,
}

impl Sweeper {
    fn intern(&mut self, key: u128) -> usize {
        if let Some(&id) = self.ids.get(&key) {
            return id;
        }
        let id = self.keys.len();
        self.ids.insert(key, id);
        self.keys.push(key);
        self.procs.push(
            unpack_state(key, self.m)
                .iter()
                .map(|s| (s.count, s.token.is_some()))
                .collect(),
        );
        self.kernels.push(None);
        self.stats.structural_states += 1;
        id
    }

    /// The memoized kernel for structural class `id`: runs the real
    /// automaton once per delivery pattern and collapses the results to the
    /// distinct `(successor class, base delta)` edges.
    fn kernel(&mut self, id: usize, obs: &Metrics) -> &[(usize, u32)] {
        if self.kernels[id].is_some() {
            self.stats.kernel_hits += 1;
            obs.inc(CounterId::ExactDpKernelHits);
        } else {
            self.stats.kernel_misses += 1;
            obs.inc(CounterId::ExactDpKernelMisses);
            let _span = obs.span(SpanId::ExactDpKernel);
            let states = unpack_state(self.keys[id], self.m);
            let msgs: Vec<CountingMsg<u8>> = states.iter().map(CountingState::to_msg).collect();
            let mut edges: Vec<(usize, u32)> = Vec::new();
            for pattern in 0u32..1 << self.edges.len() {
                let mut next = states.clone();
                for (j, state) in next.iter_mut().enumerate() {
                    let inbox: Vec<CountingMsg<u8>> = self
                        .edges
                        .iter()
                        .enumerate()
                        .filter(|&(e, &(_, to))| to == j && pattern >> e & 1 == 1)
                        .map(|(_, &(from, _))| msgs[from].clone())
                        .collect();
                    if !inbox.is_empty() {
                        state.process_messages(self.m, ProcessId::new(j as u32), &inbox);
                    }
                }
                let delta = normalize(&mut next);
                let succ = self.intern(pack_state(&next));
                edges.push((succ, delta));
            }
            edges.sort_unstable();
            edges.dedup();
            self.kernels[id] = Some(edges);
        }
        self.kernels[id].as_deref().expect("kernel just ensured")
    }

    /// Cheap per-round maximum TA: for a fixed structural class TA is
    /// nondecreasing in the base (every attack probability is), so only the
    /// highest reachable base matters.
    fn max_ta(&self, frontier: &[Option<BaseSet>], spec: &DpSpec) -> Rational {
        let mut best = Rational::ZERO;
        for (id, slot) in frontier.iter().enumerate() {
            let Some(bs) = slot else { continue };
            let Some(base) = bs.max_bit() else { continue };
            let mut ta = Rational::ONE;
            for &(count, token) in &self.procs[id] {
                ta = ta.min(spec.attack_prob(count + base as u32, token));
            }
            best = best.max(ta);
        }
        best
    }

    /// Full checkpoint extremes: brute force over every reachable
    /// `(class, base)` pair — PA is not monotone in the base (saturation
    /// collapses it back to 0), so unlike TA it needs the full scan.
    fn extremes(
        &self,
        frontier: &[Option<BaseSet>],
        spec: &DpSpec,
        obs: &Metrics,
    ) -> (Rational, Rational) {
        let _span = obs.span(SpanId::ExactDpExtremes);
        let mut max_ta = Rational::ZERO;
        let mut max_pa = Rational::ZERO;
        for (id, slot) in frontier.iter().enumerate() {
            let Some(bs) = slot else { continue };
            for base in bs.iter_bits() {
                let mut ta = Rational::ONE;
                let mut some = Rational::ZERO;
                for &(count, token) in &self.procs[id] {
                    let p = spec.attack_prob(count + base as u32, token);
                    ta = ta.min(p);
                    some = some.max(p);
                }
                max_ta = max_ta.max(ta);
                max_pa = max_pa.max(some - ta);
            }
        }
        (max_ta, max_pa)
    }
}

/// Runs the level-vector DP over **all** runs of horizon ≤ `rounds` (every
/// input subset × every per-round delivery pattern) and returns the exactly
/// computed worst-case curve: `max_R Pr[TA|R]` at every horizon (recorded at
/// the checkpoint horizons, plus the final), `max_R Pr[PA|R]` at the
/// checkpoints, the first horizon achieving liveness 1, and the DP work
/// statistics.
///
/// Time is `O(rounds · classes · kernel-edges)` plus one `2^E`-pattern
/// kernel computation per structural class — polynomial in `rounds` where
/// enumeration is exponential.
pub fn sweep(
    graph: &Graph,
    rounds: u32,
    spec: &DpSpec,
    checkpoints: &[u32],
) -> Result<SweepReport, CaError> {
    spec.validate_for_sweep(graph)?;
    let obs = Metrics::new();
    let report = {
        let _sweep_span = obs.span(SpanId::ExactDpSweep);
        let m = graph.len();
        let cap = spec.saturation_base();
        let mut sw = Sweeper {
            m,
            edges: graph
                .directed_edges()
                .map(|(a, b)| (a.index(), b.index()))
                .collect(),
            ids: HashMap::new(),
            keys: Vec::new(),
            procs: Vec::new(),
            kernels: Vec::new(),
            stats: DpStats::default(),
        };

        // Initial frontier: every input subset (the adversary also chooses
        // which inputs arrive — matching `Run::enumerate_all`'s run space).
        let mut frontier: Vec<Option<BaseSet>> = Vec::new();
        for mask in 0u32..1 << m {
            let states: Vec<CountingState<u8>> = graph
                .vertices()
                .map(|i| {
                    let token = (i == ProcessId::LEADER).then_some(1u8);
                    CountingState::initial(m, i, mask >> i.index() & 1 == 1, token)
                })
                .collect();
            let id = sw.intern(pack_state(&states));
            if frontier.len() < sw.keys.len() {
                frontier.resize_with(sw.keys.len(), || None);
            }
            frontier[id]
                .get_or_insert_with(|| BaseSet::empty(cap))
                .insert(0);
        }

        let mut wanted: Vec<u32> = checkpoints
            .iter()
            .copied()
            .filter(|&c| c <= rounds)
            .chain([rounds])
            .collect();
        wanted.sort_unstable();
        wanted.dedup();

        let mut curve: Vec<CurvePoint> = Vec::new();
        let mut first_certain: Option<u32> = None;
        let mut record = |sw: &Sweeper, frontier: &[Option<BaseSet>], round: u32| {
            if wanted.binary_search(&round).is_ok() {
                let (max_ta, max_pa) = sw.extremes(frontier, spec, &obs);
                curve.push(CurvePoint {
                    round,
                    max_ta,
                    max_pa,
                });
            }
        };
        record(&sw, &frontier, 0);

        for r in 1..=rounds {
            let mut next: Vec<Option<BaseSet>> = Vec::new();
            next.resize_with(sw.keys.len(), || None);
            for (id, slot) in frontier.iter_mut().enumerate() {
                let Some(bs) = slot.take() else {
                    continue;
                };
                sw.stats.states_visited += 1;
                obs.inc(CounterId::ExactDpStates);
                let kernel: Vec<(usize, u32)> = sw.kernel(id, &obs).to_vec();
                if next.len() < sw.keys.len() {
                    next.resize_with(sw.keys.len(), || None);
                }
                for (succ, delta) in kernel {
                    let slot = next[succ].get_or_insert_with(|| BaseSet::empty(cap));
                    if slot.or_shifted(&bs, delta) {
                        sw.stats.collapses += 1;
                        obs.inc(CounterId::ExactDpCollapses);
                    }
                }
            }
            frontier = next;
            if first_certain.is_none() && sw.max_ta(&frontier, spec) == Rational::ONE {
                first_certain = Some(r);
            }
            record(&sw, &frontier, r);
        }

        let last = curve.last().copied().unwrap_or(CurvePoint {
            round: rounds,
            max_ta: Rational::ZERO,
            max_pa: Rational::ZERO,
        });
        SweepReport {
            schema: 1,
            m,
            rounds,
            spec: *spec,
            first_certain_round: first_certain,
            final_max_ta: last.max_ta,
            u_s: last.max_pa,
            curve,
            stats: sw.stats,
        }
    };
    obs.flush();
    Ok(report)
}

/// The brute-force oracle for [`sweep`]: enumerates **every** run of the
/// horizon with [`Run::try_enumerate_all`] (typed `bits > 24` error past the
/// wall — exactly the wall the DP removes) and maximizes [`run_outcomes`]
/// over it. Returns `(max_ta, max_pa)`.
pub fn worst_case_by_enumeration(
    graph: &Graph,
    rounds: u32,
    spec: &DpSpec,
) -> Result<(Rational, Rational), CaError> {
    spec.validate_params()?;
    let mut max_ta = Rational::ZERO;
    let mut max_pa = Rational::ZERO;
    for run in Run::try_enumerate_all(graph, rounds)? {
        let out = run_outcomes(graph, &run, spec)?;
        max_ta = max_ta.max(out.ta);
        max_pa = max_pa.max(out.pa);
    }
    Ok((max_ta, max_pa))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{protocol_s_outcomes, protocol_s_outcomes_slack};
    use ca_core::protocol::Protocol;
    use ca_protocols::{FixedThreshold, ProtocolS};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn rat(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn from_sliced_mirrors_the_protocol_specs() {
        let cases: [(&dyn Fn() -> Option<SlicedSpec>, DpSpec); 4] = [
            (
                &|| ProtocolS::new(0.25).sliced_spec(),
                DpSpec::protocol_s(4),
            ),
            (&|| ProtocolS::eager(0.25).sliced_spec(), DpSpec::eager(4)),
            (
                &|| ProtocolS::with_message_validity(0.25).sliced_spec(),
                DpSpec::message_validity(4),
            ),
            (
                &|| FixedThreshold::new(5).sliced_spec(),
                DpSpec::threshold(5),
            ),
        ];
        for (sliced, expect) in cases {
            assert_eq!(DpSpec::from_sliced(sliced().unwrap()), Some(expect));
        }
        // Non-integer firing ranges are not exactly representable: ineligible.
        assert_eq!(
            DpSpec::from_sliced(SlicedSpec::RandomFire {
                offset: 0.0,
                t: 2.5,
                slack: 0,
            }),
            None
        );
    }

    #[test]
    fn attack_probability_formulas() {
        let s = DpSpec::protocol_s(4);
        assert_eq!(s.attack_prob(0, true), Rational::ZERO);
        assert_eq!(s.attack_prob(3, false), Rational::ZERO);
        assert_eq!(s.attack_prob(3, true), rat(3, 4));
        assert_eq!(s.attack_prob(9, true), Rational::ONE, "clamps at 1");
        // Message validity shifts the numerator down by one.
        assert_eq!(
            DpSpec::message_validity(4).attack_prob(1, true),
            Rational::ZERO
        );
        assert_eq!(DpSpec::message_validity(4).attack_prob(3, true), rat(2, 4));
        // Eager shifts it up by one.
        assert_eq!(DpSpec::eager(4).attack_prob(1, true), rat(2, 4));
        // Threshold is the 0/1 step.
        assert_eq!(DpSpec::threshold(3).attack_prob(2, true), Rational::ZERO);
        assert_eq!(DpSpec::threshold(3).attack_prob(3, true), Rational::ONE);
    }

    #[test]
    fn run_outcomes_matches_the_closed_form_on_thinned_runs() {
        let mut rng = StdRng::seed_from_u64(91);
        for m in [2usize, 3] {
            let g = Graph::complete(m).unwrap();
            for _ in 0..25 {
                let mut run = Run::good(&g, 5);
                for i in g.vertices() {
                    if rng.gen_bool(0.25) {
                        run.remove_input(i);
                    }
                }
                let slots: Vec<_> = run.messages().collect();
                for s in slots {
                    if rng.gen_bool(0.4) {
                        run.remove_message(s.from, s.to, s.round);
                    }
                }
                for t in [2u64, 7] {
                    for slack in [0u32, 1] {
                        let spec = DpSpec::RandomFire {
                            offset: 0,
                            t,
                            slack,
                        };
                        assert_eq!(
                            run_outcomes(&g, &run, &spec).unwrap(),
                            protocol_s_outcomes_slack(&g, &run, t, slack),
                            "m={m} t={t} slack={slack} on {run}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn message_validity_never_attacks_without_messages() {
        // Footnote 1's condition, exactly: the no-message run has NA = 1
        // under message-based validity but PA = ε under input-based.
        let g = Graph::complete(3).unwrap();
        let mut run = Run::empty(3, 4);
        for i in g.vertices() {
            run.add_input(i);
        }
        let mv = run_outcomes(&g, &run, &DpSpec::message_validity(8)).unwrap();
        assert_eq!(mv.na, Rational::ONE);
        let s = run_outcomes(&g, &run, &DpSpec::protocol_s(8)).unwrap();
        assert_eq!(s.pa, rat(1, 8), "leader alone attacks iff rfire ≤ 1");
    }

    #[test]
    fn eager_doubles_unsafety_on_r1() {
        // Theorem A.1's price on R₁ = {(v₀,1,0)}: the eager leader attacks
        // alone whenever rfire ≤ 2.
        let g = Graph::complete(2).unwrap();
        let mut run = Run::empty(2, 3);
        run.add_input(ProcessId::LEADER);
        let eager = run_outcomes(&g, &run, &DpSpec::eager(8)).unwrap();
        assert_eq!(eager.pa, rat(2, 8));
        let plain = run_outcomes(&g, &run, &DpSpec::protocol_s(8)).unwrap();
        assert_eq!(plain.pa, rat(1, 8));
    }

    #[test]
    fn sweep_matches_enumeration_on_two_generals() {
        let g = Graph::complete(2).unwrap();
        let rounds = 4;
        let all: Vec<u32> = (0..=rounds).collect();
        for spec in [
            DpSpec::protocol_s(3),
            DpSpec::eager(3),
            DpSpec::message_validity(3),
            DpSpec::threshold(2),
        ] {
            let report = sweep(&g, rounds, &spec, &all).unwrap();
            assert_eq!(report.curve.len(), all.len());
            for row in &report.curve {
                let (ta, pa) = worst_case_by_enumeration(&g, row.round, &spec).unwrap();
                assert_eq!(row.max_ta, ta, "{spec:?} round {}", row.round);
                assert_eq!(row.max_pa, pa, "{spec:?} round {}", row.round);
            }
        }
    }

    #[test]
    fn sweep_matches_enumeration_on_three_generals() {
        let g = Graph::complete(3).unwrap();
        let spec = DpSpec::protocol_s(3);
        let report = sweep(&g, 2, &spec, &[1, 2]).unwrap();
        for row in report.curve.iter().filter(|row| row.round > 0) {
            let (ta, pa) = worst_case_by_enumeration(&g, row.round, &spec).unwrap();
            assert_eq!((row.max_ta, row.max_pa), (ta, pa), "round {}", row.round);
        }
    }

    #[test]
    fn saturation_clipping_is_exact_at_tiny_t() {
        // t = 2 saturates almost immediately: every base past the cap folds
        // onto the clip class, and the result still matches brute force.
        let g = Graph::complete(2).unwrap();
        let spec = DpSpec::protocol_s(2);
        let report = sweep(&g, 6, &spec, &[6]).unwrap();
        let (ta, pa) = worst_case_by_enumeration(&g, 6, &spec).unwrap();
        assert_eq!(report.final_max_ta, ta);
        assert_eq!(report.u_s, pa);
        assert!(report.stats.collapses > 0, "tiny t must clip: {report:?}");
    }

    #[test]
    fn the_paper_curve_shape_on_three_generals() {
        // Theorem 6.8 as the sweep sees it: best liveness is min(1, r/t),
        // liveness 1 first at r = t, and U_s = ε throughout.
        let g = Graph::complete(3).unwrap();
        let t = 5u64;
        let all: Vec<u32> = (0..=8).collect();
        let report = sweep(&g, 8, &DpSpec::protocol_s(t), &all).unwrap();
        for row in &report.curve {
            assert_eq!(
                row.max_ta,
                rat(i128::from(row.round).min(t as i128), t as i128),
                "max TA at round {}",
                row.round
            );
        }
        assert_eq!(report.first_certain_round, Some(t as u32));
        assert_eq!(report.u_s, rat(1, t as i128));
        assert_eq!(report.final_max_ta, Rational::ONE);
    }

    #[test]
    fn threshold_sweep_finds_the_certainty_round_and_total_unsafety() {
        // FixedThreshold against the strong adversary: liveness 1 from round
        // θ (the good run), but U_s = 1 (cut exactly at the threshold).
        let g = Graph::complete(2).unwrap();
        let report = sweep(&g, 5, &DpSpec::threshold(3), &[5]).unwrap();
        assert_eq!(report.first_certain_round, Some(3));
        assert_eq!(report.u_s, Rational::ONE);
    }

    #[test]
    fn sweep_rejects_oversized_instances() {
        let spec = DpSpec::protocol_s(4);
        let big = Graph::complete(5).unwrap(); // 20 directed edges
        assert!(sweep(&big, 2, &spec, &[]).is_err());
        let wide = Graph::star(9).unwrap(); // 9 processes
        assert!(sweep(&wide, 2, &spec, &[]).is_err());
        assert!(DpSpec::protocol_s(MAX_DP_T + 1).validate_params().is_err());
        assert!(DpSpec::threshold(0).validate_params().is_err());
    }

    #[test]
    fn stats_are_deterministic_and_kernels_memoize() {
        let g = Graph::complete(3).unwrap();
        let spec = DpSpec::protocol_s(6);
        let a = sweep(&g, 12, &spec, &[12]).unwrap();
        let b = sweep(&g, 12, &spec, &[12]).unwrap();
        assert_eq!(a, b, "sweep must be fully deterministic");
        assert_eq!(a.stats.kernel_misses, a.stats.structural_states);
        assert!(a.stats.kernel_hits > a.stats.kernel_misses);
        assert!(a.stats.states_visited >= 12);
    }

    #[test]
    fn fallback_helper_agrees_with_scalar_and_reports_dp_use() {
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for k in 0..10 {
            let mut run = Run::good(&g, 4);
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.3) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let (out, used_dp) = outcomes_with_fallback(&g, &run, 5, k % 2 == 0);
            assert!(used_dp, "DP and scalar agree, so DP must be used");
            assert_eq!(out, protocol_s_outcomes(&g, &run, 5));
        }
    }

    #[test]
    fn base_set_shift_clips_onto_the_cap() {
        let mut a = BaseSet::empty(4);
        a.insert(0);
        a.insert(3);
        let mut b = BaseSet::empty(4);
        assert!(!b.or_shifted(&a, 0), "no shift, no clip");
        assert!(b.or_shifted(&a, 2), "3 + 2 > cap 4 clips");
        assert_eq!(b.iter_bits().collect::<Vec<_>>(), vec![0, 2, 3, 4]);
        assert_eq!(b.max_bit(), Some(4));
        // Deltas beyond the cap fold everything onto it.
        let mut c = BaseSet::empty(4);
        assert!(c.or_shifted(&a, 9));
        assert_eq!(c.iter_bits().collect::<Vec<_>>(), vec![4]);
    }
}
