//! Exact analysis, run constructions, and the experiment suite.
//!
//! * [`enumeration`] — exact probabilities by exhaustive tape enumeration
//!   (zero-error cross-check of the closed forms).
//! * [`exact`] — closed-form outcome probabilities for Protocols S and A on
//!   fixed runs (the paper's theorems as equalities over [`ca_core::Rational`]).
//! * [`level_dp`] — the level-vector dynamic program: exact worst-case
//!   PA/TA curves in polynomial time, past enumeration's 24-bit wall
//!   (enumeration stays on as the differential oracle).
//! * [`runs`] — the lower-bound run constructions (Lemma A.6 tree runs, `R₁`,
//!   ML staircases, causal-independence runs).
//! * [`tradeoff`] — consequences of `L/U ≤ N`: frontiers and round
//!   crossovers (Section 8's 1000-round claim).
//! * [`weak_exact`] — exact Markov-chain analysis of the weak adversary on
//!   two generals (the analytic form of §8's unpublished claim).
//! * [`sweep`] — big-graph scenario sweeps: topology × weak-adversary
//!   tradeoff frontiers over generated graphs (`ca sweep`).
//! * [`experiments`] — E1–E12, the executable version of the paper's claims;
//!   see DESIGN.md §4 for the index.
//! * [`report`] — tables (text + CSV) used by the experiment runner.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod enumeration;
pub mod exact;
pub mod experiments;
pub mod level_dp;
pub mod report;
pub mod runs;
pub mod sweep;
pub mod tradeoff;
pub mod weak_exact;

pub use exact::{protocol_a_outcomes, protocol_s_outcomes, ExactOutcome};
pub use experiments::{all_experiments, experiment_by_id, Experiment, ExperimentResult, Scale};
pub use level_dp::{DpSpec, SweepReport};
pub use report::Table;
pub use sweep::{run_sweep, ScenarioSweepConfig, ScenarioSweepReport};
