//! Result tables: aligned text rendering and CSV export.
//!
//! Every experiment emits a [`Table`]; the experiment runner prints it
//! aligned for humans and can dump CSV for plotting.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A simple rectangular table of strings with a header row.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as CSV (RFC-4180-style quoting for fields that need it).
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| field(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| field(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    /// Renders with columns padded to their widest cell.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (k, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if k > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:<w$}", w = *w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * cols.saturating_sub(1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_owned()
    } else if x.abs() >= 0.01 {
        format!("{x:.4}")
    } else {
        format!("{x:.2e}")
    }
}

/// Formats a probability with its 95% interval.
pub fn fmt_estimate(e: &ca_sim::BernoulliEstimate) -> String {
    let (lo, hi) = e.interval95();
    format!("{} [{}, {}]", fmt_f64(e.point()), fmt_f64(lo), fmt_f64(hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render() {
        let mut t = Table::new(["N", "U(A)", "bound"]);
        t.push_row(["4", "0.3333", "0.25"]);
        t.push_row(["8", "0.1429", "0.125"]);
        let s = t.to_string();
        assert!(s.contains("N  U(A)    bound"), "got:\n{s}");
        assert!(s.contains("-"));
        assert!(s.contains("0.1429"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        assert_eq!(t.headers().len(), 3);
        assert_eq!(t.rows()[1][0], "8");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only one"]);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(["name", "value"]);
        t.push_row(["plain", "1"]);
        t.push_row(["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("name,value\n"));
        assert!(csv.contains("\"has,comma\",\"has\"\"quote\"\n"));
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(0.5), "0.5000");
        assert_eq!(fmt_f64(0.001), "1.00e-3");
        assert!(fmt_f64(123.456).starts_with("123.4"));
    }

    #[test]
    fn estimate_formatting() {
        let e = ca_sim::BernoulliEstimate::new(50, 100);
        let s = fmt_estimate(&e);
        assert!(s.starts_with("0.5000 ["));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(["x"]);
        assert!(t.is_empty());
        let s = t.to_string();
        assert!(s.contains('x'));
    }
}
