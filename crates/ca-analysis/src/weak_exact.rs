//! Exact weak-adversary analysis on two generals.
//!
//! Against the weak adversary of §8 — each message destroyed independently
//! with probability `p` — the two-general counting automaton is a small
//! Markov chain: the pair of counts only matters up to a common shift (the
//! automaton's update rules compare counts, never read absolute values), and
//! the seen-sets are determined by the counts on a 2-clique (a nonzero
//! count's seen-set is always `{self}` — any merge instantly fills `V` and
//! bumps). Tracking the *normalized* pair plus the accumulated shift gives
//! the exact distribution of the final counts, hence exact expected liveness
//! `E[min(1, ε·Mincount)]` and exact expected disagreement for Protocol S —
//! the analytic form of the paper's unpublished "vastly improved
//! performance" claim, and a cross-check for experiment E10.
//!
//! Fidelity note: transitions are computed by running the *real*
//! [`CountingState`] update code on reconstructed states, not by a hand
//! derivation of the chain.

use ca_core::bitset::BitSet;
use ca_core::ids::ProcessId;
use ca_protocols::counting::CountingState;
use std::collections::HashMap;

/// A normalized joint state of the two automata: counts shifted so the
/// smaller of two positive counts sits near 0, plus the propagation flags.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
struct NormState {
    count_a: u32,
    count_b: u32,
    valid_a: bool,
    valid_b: bool,
    token_a: bool,
    token_b: bool,
}

/// Results of the exact weak-adversary analysis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WeakExact {
    /// Expected liveness `E[Pr[TA|R]] = E[min(1, ε·Mincount)]`.
    pub liveness: f64,
    /// Expected disagreement `E[Pr[PA|R]]`.
    pub disagreement: f64,
    /// Expected final minimum count `E[Mincount]`.
    pub expected_mincount: f64,
}

fn to_counting(norm: &NormState, who: ProcessId) -> CountingState<u8> {
    let (count, valid, token) = if who == ProcessId::LEADER {
        (norm.count_a, norm.valid_a, norm.token_a)
    } else {
        (norm.count_b, norm.valid_b, norm.token_b)
    };
    let mut seen = BitSet::new(2);
    if count >= 1 {
        seen.insert(who.index());
    }
    CountingState {
        count,
        seen,
        valid,
        token: token.then_some(1u8),
    }
}

fn from_counting(a: &CountingState<u8>, b: &CountingState<u8>) -> NormState {
    NormState {
        count_a: a.count,
        count_b: b.count,
        valid_a: a.valid,
        valid_b: b.valid,
        token_a: a.token.is_some(),
        token_b: b.token.is_some(),
    }
}

/// Applies one synchronous round with the given delivery pattern, using the
/// real automaton code. Returns the new normalized state and the amount the
/// common shift grew.
fn step(norm: &NormState, deliver_ab: bool, deliver_ba: bool) -> (NormState, u32) {
    let a = to_counting(norm, ProcessId::LEADER);
    let b = to_counting(norm, ProcessId::new(1));
    let (msg_a, msg_b) = (a.to_msg(), b.to_msg());
    let mut a2 = a;
    let mut b2 = b;
    if deliver_ba {
        a2.process_messages(2, ProcessId::LEADER, &[msg_b]);
    }
    if deliver_ab {
        b2.process_messages(2, ProcessId::new(1), &[msg_a]);
    }
    let mut next = from_counting(&a2, &b2);
    // Renormalize: shift both counts down while both stay ≥ 1. Keeping the
    // minimum at exactly 1 (not 0) preserves the count ≥ 1 semantics.
    let mut shift = 0;
    while next.count_a > 1 && next.count_b > 1 {
        next.count_a -= 1;
        next.count_b -= 1;
        shift += 1;
    }
    (next, shift)
}

/// Exact expected liveness and disagreement of Protocol S on the 2-clique
/// under the weak adversary: `n` rounds, drop probability `p`, `ε = 1/t`,
/// both generals receive the input.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]` or `t == 0`.
pub fn weak_adversary_exact(n: u32, p: f64, t: u64) -> WeakExact {
    assert!(
        (0.0..=1.0).contains(&p),
        "drop probability must be in [0,1]"
    );
    assert!(t > 0, "t = 1/epsilon must be positive");

    // Initial state: leader has token + input (count 1), follower has input.
    let init = NormState {
        count_a: 1,
        count_b: 0,
        valid_a: true,
        valid_b: true,
        token_a: true,
        token_b: false,
    };
    // Distribution over (normalized state, accumulated shift).
    let mut dist: HashMap<(NormState, u32), f64> = HashMap::new();
    dist.insert((init, 0), 1.0);

    let q = 1.0 - p;
    let patterns = [
        (true, true, q * q),
        (true, false, q * p),
        (false, true, p * q),
        (false, false, p * p),
    ];

    for _ in 0..n {
        let mut next: HashMap<(NormState, u32), f64> = HashMap::with_capacity(dist.len() * 2);
        for ((norm, base), prob) in dist {
            for &(ab, ba, pat_prob) in &patterns {
                if pat_prob == 0.0 {
                    continue;
                }
                let (new_norm, shift) = step(&norm, ab, ba);
                *next.entry((new_norm, base + shift)).or_insert(0.0) += prob * pat_prob;
            }
        }
        dist = next;
    }

    let eps = 1.0 / t as f64;
    let clamp = |count: f64| (eps * count).min(1.0);
    let mut liveness = 0.0;
    let mut disagreement = 0.0;
    let mut expected_mincount = 0.0;
    for ((norm, base), prob) in &dist {
        let ca = f64::from(norm.count_a + base);
        let cb = f64::from(norm.count_b + base);
        let mincount = ca.min(cb);
        // A tokenless process never attacks; its count is 0 then.
        let max_attackable = {
            let mut m = 0.0f64;
            if norm.token_a {
                m = m.max(ca);
            }
            if norm.token_b {
                m = m.max(cb);
            }
            m
        };
        liveness += prob * clamp(mincount);
        disagreement += prob * (clamp(max_attackable) - clamp(mincount));
        expected_mincount += prob * mincount;
    }
    WeakExact {
        liveness,
        disagreement,
        expected_mincount,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::graph::Graph;
    use ca_protocols::ProtocolS;
    use ca_sim::{simulate, RandomDrop, SimConfig};

    #[test]
    fn zero_drop_matches_synchronous_exact() {
        // p = 0 is the good run: liveness = min(1, N/t), PA = width ε.
        for (n, t) in [(4u32, 8u64), (10, 8), (6, 3)] {
            let out = weak_adversary_exact(n, 0.0, t);
            let expect_live = (n as f64 / t as f64).min(1.0);
            assert!(
                (out.liveness - expect_live).abs() < 1e-12,
                "n={n}, t={t}: {out:?}"
            );
            assert!((out.expected_mincount - n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn total_loss_leaves_leader_alone() {
        // p = 1: nothing ever delivered; Mincount = 0, leader attacks iff
        // rfire ≤ 1 → PA = ε, liveness 0.
        let out = weak_adversary_exact(8, 1.0, 4);
        assert_eq!(out.liveness, 0.0);
        assert!((out.disagreement - 0.25).abs() < 1e-12);
        assert_eq!(out.expected_mincount, 0.0);
    }

    #[test]
    fn monotone_in_drop_probability() {
        let t = 8u64;
        let mut last = f64::INFINITY;
        for p in [0.0, 0.1, 0.2, 0.4, 0.6, 0.8] {
            let out = weak_adversary_exact(12, p, t);
            assert!(
                out.liveness <= last + 1e-12,
                "liveness not monotone at p={p}"
            );
            assert!(out.disagreement <= 1.0 / t as f64 + 1e-12, "U ≤ ε at p={p}");
            last = out.liveness;
        }
    }

    #[test]
    fn matches_monte_carlo() {
        let g = Graph::complete(2).unwrap();
        let n = 16u32;
        let t = 8u64;
        for p in [0.1f64, 0.3] {
            let exact = weak_adversary_exact(n, p, t);
            let proto = ProtocolS::new(1.0 / t as f64);
            let sampler = RandomDrop::new(&g, n, p);
            let report = simulate(&proto, &g, &sampler, SimConfig::new(30_000, 77));
            assert!(
                report.liveness().consistent_with_z(exact.liveness, 4.0),
                "p={p}: exact L {} vs MC {}",
                exact.liveness,
                report.liveness()
            );
            assert!(
                report
                    .disagreement()
                    .consistent_with_z(exact.disagreement, 4.0),
                "p={p}: exact U {} vs MC {}",
                exact.disagreement,
                report.disagreement()
            );
        }
    }

    #[test]
    fn ratio_blows_past_the_strong_ceiling() {
        // The §8 claim in exact form: at moderate N and small p, L/U far
        // exceeds the strong-adversary ceiling N.
        let n = 24u32;
        let t = 12u64;
        let out = weak_adversary_exact(n, 0.05, t);
        assert!(out.liveness > 0.999, "{out:?}");
        assert!(out.disagreement < 1e-4, "{out:?}");
        let ratio = out.liveness / out.disagreement.max(1e-300);
        assert!(ratio > 10.0 * n as f64, "ratio {ratio} vs ceiling {n}");
    }

    #[test]
    fn mincount_distribution_is_sane() {
        // E[Mincount] decreases smoothly with p and is bounded by N.
        let n = 10u32;
        let a = weak_adversary_exact(n, 0.2, 4).expected_mincount;
        let b = weak_adversary_exact(n, 0.5, 4).expected_mincount;
        assert!(a > b && a <= f64::from(n) && b >= 0.0);
    }
}
