//! The safety–liveness tradeoff: `L/U ≤ N` and its consequences.
//!
//! Theorem 5.4 says `L(F, R) ≤ U_s(F) · L(R)` for every protocol and run;
//! since `L(R) ≤ N + 1` is bounded by the rounds (and `= N` on good runs of a
//! 2-clique), any protocol with liveness 1 on some run needs
//! `U ≥ 1/L(R) ≥ ~1/N`. This module computes the bound's consequences —
//! e.g. Section 8's headline number: liveness 1 with `U ≤ 0.001` needs at
//! least 1000 rounds — and the achieved frontier of Protocol S.

use crate::exact::protocol_s_outcomes;
use ca_core::graph::Graph;
use ca_core::level::{levels, modified_levels};
use ca_core::rational::Rational;
use ca_core::run::Run;
use serde::{Deserialize, Serialize};

/// One point on the tradeoff frontier.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Number of protocol rounds.
    pub n: u32,
    /// The unsafety budget `ε` (as `1/t`).
    pub t: u64,
    /// `L(R)` of the probe run (the lower-bound capacity).
    pub level: u32,
    /// `ML(R)` of the probe run (what Protocol S can use).
    pub modified_level: u32,
    /// The upper bound `min(1, ε·L(R))` of Theorem 5.4.
    pub bound: Rational,
    /// Protocol S's exact liveness `min(1, ε·ML(R))` on the probe run.
    pub achieved: Rational,
}

/// Computes the frontier on the good run of `graph` for each horizon in `ns`.
pub fn frontier(graph: &Graph, ns: &[u32], t: u64) -> Vec<FrontierPoint> {
    ns.iter()
        .map(|&n| {
            let run = Run::good(graph, n);
            let level = levels(&run).min_level();
            let ml = modified_levels(&run).min_level();
            let eps = Rational::new(1, t as i128);
            FrontierPoint {
                n,
                t,
                level,
                modified_level: ml,
                bound: (eps * Rational::from(level)).min(Rational::ONE),
                achieved: protocol_s_outcomes(graph, &run, t).ta,
            }
        })
        .collect()
}

/// The smallest horizon in `1..=cap` satisfying `pred`, where `pred` is
/// **monotone** in the horizon (once true, true for every larger horizon).
///
/// Levels of the good run only grow as rounds are added, so both round
/// thresholds below are monotone and binary search returns exactly what the
/// linear scan `(1..=cap).find(pred)` would — at `O(log cap)` probes instead
/// of `O(cap)`, which is what keeps E9's `t = 1000` row cheap.
fn min_horizon_satisfying(cap: u32, pred: impl Fn(u32) -> bool) -> Option<u32> {
    if cap == 0 || !pred(cap) {
        return None;
    }
    let (mut lo, mut hi) = (1u32, cap);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// The minimum horizon `N` for which Protocol S reaches liveness 1 on the
/// good run of `graph` with unsafety budget `ε = 1/t`, or `None` if no
/// `N ≤ cap` suffices.
///
/// For the 2-clique `ML(good) = N`, so the answer is exactly `t` — the
/// Section 8 claim that `ε = 0.001` forces 1000 rounds.
pub fn min_rounds_for_certain_liveness(graph: &Graph, t: u64, cap: u32) -> Option<u32> {
    min_horizon_satisfying(cap, |n| {
        let run = Run::good(graph, n);
        protocol_s_outcomes(graph, &run, t).ta == Rational::ONE
    })
}

/// The level-DP version of [`min_rounds_for_certain_liveness`]: the
/// smallest horizon at which **any** run (not just the good run) reaches
/// liveness 1, computed exactly over the full run space by
/// [`crate::level_dp::sweep`]. Since the good run maximizes every level,
/// this agrees with the good-run closed form wherever both apply — but it
/// needs no "good run is optimal" assumption, and it stays exact at
/// horizons where enumeration would refuse.
///
/// Returns `Err` when the graph is not DP-eligible (`m > 8` or more than
/// 12 directed edges).
pub fn exact_certain_liveness_round(
    graph: &Graph,
    t: u64,
    cap: u32,
) -> Result<Option<u32>, ca_core::error::CaError> {
    let spec = crate::level_dp::DpSpec::protocol_s(t);
    Ok(crate::level_dp::sweep(graph, cap, &spec, &[])?.first_certain_round)
}

/// The lower-bound version: the smallest `N` such that `ε·L(good run) ≥ 1` —
/// no protocol can reach liveness 1 sooner (Theorem 5.4), so this is a lower
/// bound on rounds for *every* protocol.
///
/// On the 2-clique the unmodified level of the good run is `N + 1` (hearing
/// the input already counts as one level), so this returns `t - 1` — one
/// round less than Protocol S needs. The gap is exactly the `L` vs `ML`
/// slack of Lemma 6.1, which the second lower bound (Theorem A.1) closes.
pub fn min_rounds_lower_bound(graph: &Graph, t: u64, cap: u32) -> Option<u32> {
    min_horizon_satisfying(cap, |n| {
        let run = Run::good(graph, n);
        u64::from(levels(&run).min_level()) >= t
    })
}

/// The achieved tradeoff ratio `L(S, R_good) / U_s(S)` at horizon `n`
/// (with `U_s(S) = ε` exactly, which experiment E4 verifies), as a rational.
pub fn achieved_ratio(graph: &Graph, n: u32, t: u64) -> Rational {
    let run = Run::good(graph, n);
    let liveness = protocol_s_outcomes(graph, &run, t).ta;
    liveness / Rational::new(1, t as i128)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_respects_theorem_5_4() {
        let g = Graph::complete(2).unwrap();
        for pt in frontier(&g, &[1, 2, 4, 8, 16], 8) {
            assert!(
                pt.achieved <= pt.bound,
                "L(S) must respect the bound: {pt:?}"
            );
            // And the gap is at most one level's worth of ε (Lemma 6.1).
            let eps = Rational::new(1, 8);
            assert!(pt.bound - pt.achieved <= eps, "gap > ε: {pt:?}");
        }
    }

    #[test]
    fn two_clique_needs_exactly_t_rounds() {
        // Section 8's numeric claim, scaled down: ε = 1/12 ⟹ 12 rounds for
        // Protocol S; the level-based lower bound allows one round less
        // (L = N + 1 on the good run), the Lemma 6.1 gap.
        let g = Graph::complete(2).unwrap();
        assert_eq!(min_rounds_for_certain_liveness(&g, 12, 64), Some(12));
        assert_eq!(min_rounds_lower_bound(&g, 12, 64), Some(11));
        assert_eq!(min_rounds_for_certain_liveness(&g, 12, 8), None);
    }

    #[test]
    fn exact_dp_round_agrees_with_the_good_run_closed_form() {
        // The sweep maximizes over every run, the closed form probes the
        // good run; the good run is optimal, so they must agree — and the
        // DP proves it rather than assuming it.
        for (g, t, cap) in [
            (Graph::complete(2).unwrap(), 12u64, 16u32),
            (Graph::complete(3).unwrap(), 7, 12),
            (Graph::line(3).unwrap(), 5, 16),
        ] {
            assert_eq!(
                exact_certain_liveness_round(&g, t, cap).unwrap(),
                min_rounds_for_certain_liveness(&g, t, cap),
                "t={t} on {g:?}"
            );
        }
        // Unreachable cap: both report None.
        let g = Graph::complete(2).unwrap();
        assert_eq!(exact_certain_liveness_round(&g, 12, 8).unwrap(), None);
        // Ineligible graph: typed error, not a wrong answer.
        assert!(exact_certain_liveness_round(&Graph::complete(5).unwrap(), 4, 4).is_err());
    }

    #[test]
    fn bigger_cliques_need_rounds_too() {
        // On K_m the level still climbs ~1 per round (complete gossip), so
        // the answer stays close to t.
        let g = Graph::complete(4).unwrap();
        let rounds = min_rounds_for_certain_liveness(&g, 6, 64).unwrap();
        assert!(rounds >= 6, "lower bound: at least t rounds");
        assert!(rounds <= 8, "complete graph gossips fast");
    }

    #[test]
    fn achieved_ratio_equals_ml_until_saturation() {
        let g = Graph::complete(2).unwrap();
        // Until liveness saturates, L/U = ML(R) = N ≤ the bound N.
        assert_eq!(achieved_ratio(&g, 5, 8), Rational::from(5i64));
        // After saturation the ratio is capped at t.
        assert_eq!(achieved_ratio(&g, 20, 8), Rational::from(8i64));
    }

    #[test]
    fn binary_search_matches_linear_scan() {
        // The binary search relies on monotonicity of the probed predicates
        // in the horizon; cross-check against the naive linear scan over
        // several topologies, budgets, and caps (including unreachable ones).
        let graphs = [
            Graph::complete(2).unwrap(),
            Graph::complete(4).unwrap(),
            Graph::line(4).unwrap(),
            Graph::ring(5).unwrap(),
        ];
        for g in &graphs {
            for t in [2u64, 3, 5, 8] {
                for cap in [1u32, 4, 20, 40] {
                    let linear_live = (1..=cap)
                        .find(|&n| protocol_s_outcomes(g, &Run::good(g, n), t).ta == Rational::ONE);
                    assert_eq!(
                        min_rounds_for_certain_liveness(g, t, cap),
                        linear_live,
                        "liveness threshold: t={t} cap={cap}"
                    );
                    let linear_lower =
                        (1..=cap).find(|&n| u64::from(levels(&Run::good(g, n)).min_level()) >= t);
                    assert_eq!(
                        min_rounds_lower_bound(g, t, cap),
                        linear_lower,
                        "lower bound threshold: t={t} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn line_graph_pays_its_diameter() {
        // On a line of 4, levels climb ~1 per 3 rounds; liveness 1 needs
        // roughly 3t rounds — topology matters, the tradeoff is per *level*,
        // not per round.
        let g_line = Graph::line(4).unwrap();
        let g_clique = Graph::complete(4).unwrap();
        let t = 4u64;
        let line_rounds = min_rounds_for_certain_liveness(&g_line, t, 128).unwrap();
        let clique_rounds = min_rounds_for_certain_liveness(&g_clique, t, 128).unwrap();
        assert!(
            line_rounds > clique_rounds,
            "line {line_rounds} vs clique {clique_rounds}"
        );
    }
}
