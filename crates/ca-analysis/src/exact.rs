//! Exact outcome probabilities.
//!
//! For a **fixed run**, both of the paper's protocols have so little
//! randomness that every outcome probability is a small closed-form rational:
//!
//! * **Protocol S** — the counting automaton is deterministic given the run
//!   (`count_i = ML_i(R)`, Lemma 6.4; which processes hear `rfire` is a
//!   flows-to fact). The only randomness is `rfire ~ U(0, 1/ε]`, so
//!   `Pr[TA|R] = min(1, ε·Mincount)` and
//!   `Pr[PA|R] = min(1, ε·Maxcount) − min(1, ε·Mincount)`, where the
//!   min/max range over final counts. Because counts spread by at most 1
//!   (Lemma 6.2), `Pr[PA|R] ≤ ε` — Theorem 6.7 in one line.
//! * **Protocol A** — the only randomness is `rfire ~ U{2..N}`; we execute
//!   the real protocol once per possible value and tally.
//!
//! To stay grounded in the implementation (not just the math), the Protocol S
//! analysis *executes the protocol* to read off the final counts and token
//! possession, then integrates over `rfire` analytically.

use ca_core::exec::execute;
use ca_core::graph::Graph;
use ca_core::rational::Rational;
use ca_core::run::Run;
use ca_core::tape::{BitTape, TapeSet};
use ca_protocols::{ProtocolA, ProtocolS};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Exact probabilities of the three outcomes for one protocol on one run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExactOutcome {
    /// `Pr[TA|R]` — the liveness `L(F, R)`.
    pub ta: Rational,
    /// `Pr[NA|R]`.
    pub na: Rational,
    /// `Pr[PA|R]` — the disagreement probability.
    pub pa: Rational,
}

impl ExactOutcome {
    /// Checks internal consistency (`ta + na + pa = 1`, all in `[0,1]`).
    pub fn is_valid(&self) -> bool {
        self.ta.is_probability()
            && self.na.is_probability()
            && self.pa.is_probability()
            && self.ta + self.na + self.pa == Rational::ONE
    }
}

impl fmt::Display for ExactOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TA={} NA={} PA={}", self.ta, self.na, self.pa)
    }
}

/// Exact outcome probabilities of **Protocol S** with `ε = 1/t` on `run`.
///
/// `t` must be a positive integer (the experiments use `ε = 1/t` throughout;
/// arbitrary rational `ε` would work the same way but is not needed).
///
/// The final counts and token possession are read from a real execution
/// (they do not depend on the sampled `rfire` value), then the uniform
/// `rfire ∈ (0, t]` is integrated exactly.
///
/// # Panics
///
/// Panics if `t == 0` or dimensions mismatch.
pub fn protocol_s_outcomes(graph: &Graph, run: &Run, t: u64) -> ExactOutcome {
    protocol_s_outcomes_slack(graph, run, t, 0)
}

/// Exact outcome probabilities of the slack-generalized Protocol S family
/// (attack iff `count ≥ 1` and `count + slack ≥ rfire`): slack 0 is
/// Protocol S, slack 1 is [`ProtocolS::eager`].
///
/// # Panics
///
/// Panics if `t == 0` or dimensions mismatch.
pub fn protocol_s_outcomes_slack(graph: &Graph, run: &Run, t: u64, slack: u32) -> ExactOutcome {
    assert!(t > 0, "t = 1/epsilon must be positive");
    let epsilon = 1.0 / t as f64;
    let proto = ProtocolS::new(epsilon);

    // Any tape will do: counts and token possession are rfire-independent.
    let tapes = TapeSet::from_tapes(
        (0..graph.len())
            .map(|_| BitTape::from_words(vec![0x0123_4567_89AB_CDEF]))
            .collect(),
    );
    let ex = execute(&proto, graph, run, &tapes);

    // Final counts; a process can attack only with the token and count ≥ 1.
    // Thresholds are count + slack; rfire ~ U(0, t].
    let t_rat = Rational::new(t as i128, 1);
    let clamp = |threshold: u32| Rational::from(threshold).min(t_rat) / t_rat;

    let mut ta: Option<Rational> = Some(Rational::ONE); // min over processes
    let mut some = Rational::ZERO; // max over attackable processes
    for i in graph.vertices() {
        let state = ex.local(i).states.last().expect("final state");
        let attackable = state.token.is_some() && state.count >= 1;
        if attackable {
            let p = clamp(state.count + slack);
            some = some.max(p);
            ta = ta.map(|v| v.min(p));
        } else {
            ta = None; // this process never attacks: TA impossible
        }
    }
    let ta = ta.unwrap_or(Rational::ZERO);
    ExactOutcome {
        ta,
        na: Rational::ONE - some,
        pa: some - ta,
    }
}

/// Exact outcome probabilities of **Protocol A** (horizon `n`) on `run`,
/// computed by executing the protocol once for each of the `n - 1` equally
/// likely values of `rfire`.
///
/// # Panics
///
/// Panics if the run is not over exactly 2 processes or horizons mismatch.
pub fn protocol_a_outcomes(graph: &Graph, run: &Run, n: u32) -> ExactOutcome {
    assert_eq!(run.process_count(), 2, "protocol A is a 2-general protocol");
    assert_eq!(
        run.horizon(),
        n,
        "run horizon differs from protocol horizon"
    );
    let proto = ProtocolA::new(n);
    let denom = (n - 1) as i128;
    let (mut ta, mut na, mut pa) = (0i128, 0i128, 0i128);
    for rfire in 2..=n {
        // Force the leader's tape so rejection sampling yields this rfire.
        let word = u64::from(rfire - 2);
        let tapes = TapeSet::from_tapes(vec![
            BitTape::from_words(vec![word; 64]),
            BitTape::from_words(vec![0; 64]),
        ]);
        let ex = execute(&proto, graph, run, &tapes);
        match ex.outcome() {
            ca_core::outcome::Outcome::TotalAttack => ta += 1,
            ca_core::outcome::Outcome::NoAttack => na += 1,
            ca_core::outcome::Outcome::PartialAttack => pa += 1,
        }
    }
    ExactOutcome {
        ta: Rational::new(ta, denom),
        na: Rational::new(na, denom),
        pa: Rational::new(pa, denom),
    }
}

/// Exact per-process decision probabilities `Pr[D_i|R]` of Protocol S on
/// `run`: `min(1, ε·count_i)` for token holders with `count ≥ 1`, else 0.
///
/// These are the quantities the paper's elementary Lemmas 2.2 and 2.3 bound:
/// `Pr[D_i|R] − Pr[D_j|R] ≤ U_s(F)` and `L(F,R) ≤ Pr[D_i|R]` — asserted over
/// exact values in this module's tests.
///
/// # Panics
///
/// Panics if `t == 0` or dimensions mismatch.
pub fn protocol_s_decision_probabilities(graph: &Graph, run: &Run, t: u64) -> Vec<Rational> {
    assert!(t > 0, "t = 1/epsilon must be positive");
    let proto = ProtocolS::new(1.0 / t as f64);
    let tapes = TapeSet::from_tapes(
        (0..graph.len())
            .map(|_| BitTape::from_words(vec![0x0123_4567_89AB_CDEF]))
            .collect(),
    );
    let ex = execute(&proto, graph, run, &tapes);
    let t_rat = Rational::new(t as i128, 1);
    graph
        .vertices()
        .map(|i| {
            let state = ex.local(i).states.last().expect("final state");
            if state.token.is_some() && state.count >= 1 {
                Rational::from(state.count).min(t_rat) / t_rat
            } else {
                Rational::ZERO
            }
        })
        .collect()
}

/// Exact worst-case disagreement of Protocol S over a family of runs:
/// returns `(worst_pa, index_of_worst_run)`.
///
/// # Panics
///
/// Panics if `family` is empty.
pub fn protocol_s_worst_pa(graph: &Graph, family: &[Run], t: u64) -> (Rational, usize) {
    assert!(!family.is_empty(), "empty run family");
    family
        .iter()
        .enumerate()
        .map(|(k, run)| (protocol_s_outcomes(graph, run, t).pa, k))
        .max()
        .expect("nonempty family")
}

/// Exact worst-case disagreement of Protocol A over a family of runs.
///
/// # Panics
///
/// Panics if `family` is empty.
pub fn protocol_a_worst_pa(graph: &Graph, family: &[Run], n: u32) -> (Rational, usize) {
    assert!(!family.is_empty(), "empty run family");
    family
        .iter()
        .enumerate()
        .map(|(k, run)| (protocol_a_outcomes(graph, run, n).pa, k))
        .max()
        .expect("nonempty family")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::ids::{ProcessId, Round};
    use ca_core::level::modified_levels;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn s_good_run_liveness_is_min_one_epsilon_ml() {
        // Theorem 6.8 as an equality on the good run: ML(R) = N for m = 2.
        let g = Graph::complete(2).unwrap();
        for n in [2u32, 4, 7] {
            for t in [2u64, 8, 20] {
                let run = Run::good(&g, n);
                let out = protocol_s_outcomes(&g, &run, t);
                let ml = modified_levels(&run).min_level();
                assert_eq!(ml, n);
                let predicted = Rational::new(ml as i128, t as i128).min(Rational::ONE);
                assert_eq!(out.ta, predicted, "n={n}, t={t}");
                assert!(out.is_valid());
            }
        }
    }

    #[test]
    fn s_disagreement_never_exceeds_epsilon() {
        // Theorem 6.7, exactly, over the whole cut family.
        let g = Graph::complete(2).unwrap();
        let n = 5;
        let t = 4u64;
        let eps = Rational::new(1, t as i128);
        for run in ca_sim::cut_family(&g, n) {
            let out = protocol_s_outcomes(&g, &run, t);
            assert!(out.pa <= eps, "PA = {} > ε on {run}", out.pa);
            assert!(out.is_valid());
        }
    }

    #[test]
    fn s_survives_crash_stop_failures() {
        // Crash-stop is a special case of link failure: the bound holds and
        // liveness still follows min(1, ε·ML) exactly.
        use ca_core::level::modified_levels;
        let g = Graph::complete(3).unwrap();
        let n = 6;
        let t = 5u64;
        let eps = Rational::new(1, t as i128);
        for run in ca_sim::crash_family(&g, n) {
            let out = protocol_s_outcomes(&g, &run, t);
            assert!(out.pa <= eps, "PA = {} > ε on crash run {run}", out.pa);
            let ml = modified_levels(&run).min_level();
            assert_eq!(
                out.ta,
                (eps * Rational::from(ml)).min(Rational::ONE),
                "liveness formula under crash"
            );
        }
    }

    #[test]
    fn s_empty_run_is_perfectly_safe_and_dead() {
        let g = Graph::complete(3).unwrap();
        let out = protocol_s_outcomes(&g, &Run::empty(3, 4), 5);
        assert_eq!(out.ta, Rational::ZERO);
        assert_eq!(out.pa, Rational::ZERO);
        assert_eq!(out.na, Rational::ONE);
    }

    #[test]
    fn s_leaderless_run_cannot_attack() {
        // Cut the leader off: no token ever leaves it, and the leader's own
        // count is capped at 1; Pr[attack] = ε for the leader alone → PA = ε.
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 4);
        for r in 1..=4u32 {
            run.remove_message(p(0), p(1), Round::new(r));
        }
        let out = protocol_s_outcomes(&g, &run, 8);
        assert_eq!(out.ta, Rational::ZERO);
        assert_eq!(
            out.pa,
            Rational::new(1, 8),
            "leader attacks alone iff rfire ≤ 1"
        );
    }

    #[test]
    fn s_saturates_at_probability_one() {
        // ML(R) = N ≥ t ⟹ liveness exactly 1.
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 6);
        let out = protocol_s_outcomes(&g, &run, 4);
        assert_eq!(out.ta, Rational::ONE);
        assert_eq!(out.pa, Rational::ZERO);
    }

    #[test]
    fn a_good_run_certain_attack() {
        let g = Graph::complete(2).unwrap();
        let n = 6;
        let out = protocol_a_outcomes(&g, &Run::good(&g, n), n);
        assert_eq!(out.ta, Rational::ONE);
        assert!(out.is_valid());
    }

    #[test]
    fn a_cut_at_d_has_pa_exactly_one_over_n_minus_one() {
        let g = Graph::complete(2).unwrap();
        let n = 7;
        for d in 2..=n {
            let mut run = Run::good(&g, n);
            run.cut_from_round(Round::new(d));
            let out = protocol_a_outcomes(&g, &run, n);
            assert_eq!(out.pa, Rational::new(1, (n - 1) as i128), "cut at {d}");
            // TA iff rfire < d: (d - 2) of the (n-1) values.
            assert_eq!(out.ta, Rational::new((d - 2) as i128, (n - 1) as i128));
        }
    }

    #[test]
    fn a_worst_case_over_cut_family_is_one_over_n_minus_one() {
        let g = Graph::complete(2).unwrap();
        let n = 6;
        let family = ca_sim::cut_family(&g, n);
        let (worst, _) = protocol_a_worst_pa(&g, &family, n);
        assert_eq!(worst, Rational::new(1, (n - 1) as i128));
    }

    #[test]
    fn s_worst_case_over_cut_family_is_epsilon() {
        let g = Graph::complete(2).unwrap();
        let n = 6;
        let t = 3u64;
        let family = ca_sim::cut_family(&g, n);
        let (worst, _) = protocol_s_worst_pa(&g, &family, t);
        assert_eq!(worst, Rational::new(1, t as i128), "the bound is tight");
    }

    #[test]
    fn lemmas_2_2_and_2_3_hold_exactly() {
        // Lemma 2.2: Pr[D_i|R] − Pr[D_j|R] ≤ U_s(F) = ε.
        // Lemma 2.3: L(F,R) ≤ Pr[D_i|R] for every i.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = Graph::complete(3).unwrap();
        let t = 6u64;
        let eps = Rational::new(1, t as i128);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..40 {
            let mut run = Run::good(&g, 5);
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.4) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let probs = protocol_s_decision_probabilities(&g, &run, t);
            let out = protocol_s_outcomes(&g, &run, t);
            for &pi in &probs {
                assert!(out.ta <= pi, "Lemma 2.3: L = {} > Pr[D_i] = {pi}", out.ta);
                for &pj in &probs {
                    assert!(pi - pj <= eps, "Lemma 2.2: {pi} - {pj} > ε");
                }
            }
        }
    }

    #[test]
    fn lemma_5_3_decision_probability_bounded_by_u_times_level() {
        // Pr[D_i|R] ≤ U_s(F)·L_i(R) with U_s(S) = ε, exactly.
        use ca_core::level::levels;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = Graph::complete(3).unwrap();
        let t = 5u64;
        let eps = Rational::new(1, t as i128);
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..40 {
            let mut run = Run::good(&g, 4);
            for i in g.vertices() {
                if rng.gen_bool(0.3) {
                    run.remove_input(i);
                }
            }
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.4) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let probs = protocol_s_decision_probabilities(&g, &run, t);
            let l = levels(&run);
            for (i, &pi) in g.vertices().zip(&probs) {
                let bound = (eps * Rational::from(l.level(i))).min(Rational::ONE);
                assert!(pi <= bound, "Lemma 5.3: Pr[D_{i}] = {pi} > ε·L_i = {bound}");
            }
        }
    }

    #[test]
    fn a_no_input_run_is_dead() {
        let g = Graph::complete(2).unwrap();
        let n = 5;
        let run = Run::good_with_inputs(&g, n, &[]);
        let out = protocol_a_outcomes(&g, &run, n);
        assert_eq!(out.na, Rational::ONE);
    }
}
