//! The scenario sweep: topology × weak-adversary × protocol tradeoff
//! frontiers at big `m`.
//!
//! Every experiment in the registry probes a fixed small graph. The sweep
//! opens the workload axis instead: it takes a list of
//! [`TopologySpec`]s (generated graphs at `m` in the hundreds to ~2000), a
//! list of weak-adversary [`LossModel`]s, and a curve of Protocol S firing
//! ranges `t = 1/ε`, and estimates per cell how the topology's
//! diameter/expansion shifts §8's `L/U` tradeoff — the observed TA (liveness)
//! and PA (unsafety) rates as a function of `t`.
//!
//! # How a trial is classified
//!
//! One trial samples an [`EdgeRun`](ca_core::run::EdgeRun) through the weak
//! adversary's edge-keyed path, runs the sparse level frontier once for the
//! modified-level extremes `(min_i ML_i, max_i ML_i)`, and draws one `rfire`
//! coin. By Lemma 6.4, Protocol S's counts equal `ML`, so with
//! `rfire = t · u` (input-based validity, zero slack):
//!
//! * **TA** ⟺ `min ML ≥ rfire` — everyone fires;
//! * **NA** ⟺ `max ML < rfire` — nobody fires;
//! * **PA** otherwise.
//!
//! The whole `t`-curve shares the single trial (common random numbers): the
//! frontier pass and the unit draw `u` are computed once, and each curve
//! point just compares against its own `t · u`. That makes cross-`t`
//! comparisons noise-free and the per-cell cost independent of curve length.
//!
//! # Determinism
//!
//! Cells are independent: cell `c` derives its RNG stream from
//! `mix64(seed, c)` and trial `k` within it from `mix64(cell_seed, k)`, so
//! reports are byte-identical for a given `(config, seed)` across thread
//! counts (the `threads` knob is serialized as 0, like `SimReport`). All
//! tallies are integer [`BernoulliEstimate`]s; the only floats in a report
//! are echoed config parameters.

use crate::report::Table;
use ca_core::error::CaError;
use ca_core::graph::{GraphStats, TopologySpec};
use ca_core::level::{modified_level_extremes_into, LevelScratch};
use ca_sim::weak::{LossModel, WeakAdversary};
use ca_sim::{mix64, parallel_map, resolve_workers, BernoulliEstimate};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one scenario sweep: the cross product of topologies and
/// adversaries, the Protocol S firing-range curve, and the sampling budget.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSweepConfig {
    /// Topologies to sweep (each a seed-deterministic generator spec).
    pub topologies: Vec<TopologySpec>,
    /// Weak-adversary loss models to sweep.
    pub adversaries: Vec<LossModel>,
    /// Protocol S firing ranges `t = 1/ε` for the tradeoff curve.
    pub t_curve: Vec<u32>,
    /// Monte Carlo trials per cell.
    pub trials: u64,
    /// Root seed; cell `c` uses `mix64(seed, c)`.
    pub seed: u64,
    /// Horizon slack: each cell runs `N = diameter + horizon_slack` rounds,
    /// giving information `horizon_slack` spare rounds beyond one graph
    /// traversal.
    pub horizon_slack: u32,
    /// Worker threads (0 = `CA_THREADS` or all cores). Serialized as 0 so
    /// reports stay byte-identical across thread counts.
    pub threads: usize,
}

impl ScenarioSweepConfig {
    /// The default scenario set at process count `m`: a near-square grid
    /// (high diameter), a Watts–Strogatz small world and a Barabási–Albert
    /// scale-free graph (low diameter), each under iid 5% loss and a bursty
    /// Gilbert–Elliott channel with the same ~9% stationary loss character.
    pub fn default_at(m: usize, trials: u64, seed: u64) -> Self {
        ScenarioSweepConfig {
            topologies: vec![
                TopologySpec::near_square_grid(m),
                TopologySpec::SmallWorld {
                    m,
                    k: 6,
                    beta: 0.1,
                    seed: 1,
                },
                TopologySpec::ScaleFree {
                    m,
                    attach: 3,
                    seed: 1,
                },
            ],
            adversaries: vec![
                LossModel::Iid { p: 0.05 },
                LossModel::GilbertElliott {
                    loss_good: 0.01,
                    loss_bad: 0.5,
                    good_to_bad: 0.05,
                    bad_to_good: 0.25,
                },
            ],
            t_curve: vec![2, 4, 8, 16],
            trials,
            seed,
            horizon_slack: 4,
            threads: 0,
        }
    }

    fn validate(&self) -> Result<(), CaError> {
        if self.topologies.is_empty() {
            return Err(CaError::malformed("sweep needs at least one topology"));
        }
        if self.adversaries.is_empty() {
            return Err(CaError::malformed("sweep needs at least one adversary"));
        }
        if self.t_curve.is_empty() || self.t_curve.contains(&0) {
            return Err(CaError::malformed(
                "sweep needs a nonempty t-curve of positive firing ranges",
            ));
        }
        if self.trials == 0 {
            return Err(CaError::malformed("sweep needs at least one trial"));
        }
        Ok(())
    }
}

/// One point of a cell's tradeoff curve: outcome tallies at firing range `t`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Protocol S firing range `t = 1/ε` (the paper's `L/U` axis up to `N`).
    pub t: u32,
    /// Total-attack (liveness) tally.
    pub ta: BernoulliEstimate,
    /// Partial-attack (unsafety) tally.
    pub pa: BernoulliEstimate,
    /// No-attack tally.
    pub na: BernoulliEstimate,
}

/// One topology × adversary cell of the sweep.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioCell {
    /// The topology spec (reproducible: `spec.build()` regenerates the graph).
    pub topology: TopologySpec,
    /// Short topology name for tables.
    pub topology_name: String,
    /// The adversary loss model.
    pub adversary: LossModel,
    /// Short adversary name for tables.
    pub adversary_name: String,
    /// Generated-graph statistics (the frontier's x-axis material).
    pub graph: GraphStats,
    /// The cell's horizon `N = diameter + horizon_slack`.
    pub horizon: u32,
    /// Trials run.
    pub trials: u64,
    /// Sum over trials of `min_i ML_i` (integer, for byte-stable means).
    pub ml_min_sum: u64,
    /// Sum over trials of `max_i ML_i`.
    pub ml_max_sum: u64,
    /// Smallest `min_i ML_i` observed.
    pub ml_floor: u32,
    /// Largest `max_i ML_i` observed.
    pub ml_ceiling: u32,
    /// The tradeoff curve, one point per configured `t`.
    pub points: Vec<FrontierPoint>,
}

impl ScenarioCell {
    /// Mean over trials of the run-wide modified level `min_i ML_i`.
    pub fn mean_ml_min(&self) -> f64 {
        self.ml_min_sum as f64 / self.trials as f64
    }

    /// Mean over trials of `max_i ML_i`.
    pub fn mean_ml_max(&self) -> f64 {
        self.ml_max_sum as f64 / self.trials as f64
    }
}

/// The byte-stable result of [`run_sweep`]. Contains no wall-clock fields;
/// the `ca sweep --compare` drift gate relies on exact equality.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSweepReport {
    /// Report schema version.
    pub schema: u32,
    /// The configuration that produced it (threads zeroed).
    pub config: ScenarioSweepConfig,
    /// One cell per topology × adversary pair, topology-major.
    pub cells: Vec<ScenarioCell>,
}

impl ScenarioSweepReport {
    /// Renders the per-cell frontier as a [`Table`] (one row per cell × t).
    pub fn table(&self) -> Table {
        let mut table = Table::new(vec![
            "topology",
            "adversary",
            "diam",
            "deg",
            "N",
            "t",
            "TA",
            "PA",
            "NA",
        ]);
        for cell in &self.cells {
            for pt in &cell.points {
                table.push_row(vec![
                    cell.topology_name.clone(),
                    cell.adversary_name.clone(),
                    cell.graph.diameter.to_string(),
                    format!("{:.1}", cell.graph.degree_mean()),
                    cell.horizon.to_string(),
                    pt.t.to_string(),
                    format!("{:.3}", pt.ta.point()),
                    format!("{:.3}", pt.pa.point()),
                    format!("{:.3}", pt.na.point()),
                ]);
            }
        }
        table
    }
}

/// Runs one topology × adversary cell.
fn run_cell(
    topology: &TopologySpec,
    adversary: &LossModel,
    config: &ScenarioSweepConfig,
    cell_seed: u64,
) -> Result<ScenarioCell, CaError> {
    let graph = topology.build().map_err(CaError::from)?;
    let stats = GraphStats::of(&graph);
    let horizon = stats.diameter + config.horizon_slack;
    let weak = WeakAdversary::new(&graph, horizon, *adversary);
    let mut er = weak.edge_template();
    let mut scratch = LevelScratch::new();
    let mut points: Vec<FrontierPoint> = config
        .t_curve
        .iter()
        .map(|&t| FrontierPoint {
            t,
            ta: BernoulliEstimate::default(),
            pa: BernoulliEstimate::default(),
            na: BernoulliEstimate::default(),
        })
        .collect();
    let (mut ml_min_sum, mut ml_max_sum) = (0u64, 0u64);
    let (mut ml_floor, mut ml_ceiling) = (u32::MAX, 0u32);
    for trial in 0..config.trials {
        // One RNG stream per trial, like the Monte Carlo engine: trial
        // identity, not worker identity, determines the draws.
        let mut rng = StdRng::seed_from_u64(mix64(cell_seed, trial));
        // Draw order: slot coins in canonical link-major order, then one
        // rfire unit coin — shared by the whole t-curve (CRN).
        weak.sample_edges_into(&mut er, &mut rng);
        let (ml_min, ml_max) = modified_level_extremes_into(&er, &mut scratch);
        let u = (rng.next_u64() as f64 + 1.0) / 18_446_744_073_709_551_616.0; // 2^64
        ml_min_sum += u64::from(ml_min);
        ml_max_sum += u64::from(ml_max);
        ml_floor = ml_floor.min(ml_min);
        ml_ceiling = ml_ceiling.max(ml_max);
        for pt in points.iter_mut() {
            // rfire uniform in (0, t]: TA iff every count clears it, NA iff
            // none does (ML = 0 processes never fire; rfire > 0 covers them).
            let rfire = f64::from(pt.t) * u;
            let ta = f64::from(ml_min) >= rfire;
            let na = f64::from(ml_max) < rfire;
            pt.ta.record(ta);
            pt.na.record(na);
            pt.pa.record(!ta && !na);
        }
    }
    Ok(ScenarioCell {
        topology: topology.clone(),
        topology_name: topology.name(),
        adversary: *adversary,
        adversary_name: adversary.name(),
        graph: stats,
        horizon,
        trials: config.trials,
        ml_min_sum,
        ml_max_sum,
        ml_floor,
        ml_ceiling,
        points,
    })
}

/// Runs the scenario sweep: every topology × adversary cell in parallel
/// (order-preserving, per-cell seed streams), returning a byte-stable report.
///
/// # Errors
///
/// Returns an error if the config is degenerate (empty axes, zero trials or
/// firing ranges) or a topology spec fails to build.
pub fn run_sweep(config: &ScenarioSweepConfig) -> Result<ScenarioSweepReport, CaError> {
    config.validate()?;
    let cells: Vec<(usize, usize)> = (0..config.topologies.len())
        .flat_map(|t| (0..config.adversaries.len()).map(move |a| (t, a)))
        .collect();
    let workers = resolve_workers(config.threads);
    let results = parallel_map(cells.len(), workers, |idx| {
        let (t, a) = cells[idx];
        run_cell(
            &config.topologies[t],
            &config.adversaries[a],
            config,
            mix64(config.seed, idx as u64),
        )
    });
    let mut out = Vec::with_capacity(results.len());
    for cell in results {
        out.push(cell?);
    }
    let mut echoed = config.clone();
    echoed.threads = 0;
    Ok(ScenarioSweepReport {
        schema: 1,
        config: echoed,
        cells: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ScenarioSweepConfig {
        ScenarioSweepConfig {
            topologies: vec![TopologySpec::Ring { m: 8 }, TopologySpec::Complete { m: 5 }],
            adversaries: vec![
                LossModel::Iid { p: 0.1 },
                LossModel::GilbertElliott {
                    loss_good: 0.02,
                    loss_bad: 0.6,
                    good_to_bad: 0.1,
                    bad_to_good: 0.3,
                },
            ],
            t_curve: vec![2, 4, 8],
            trials: 64,
            seed: 0xCA11,
            horizon_slack: 3,
            threads: 1,
        }
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let mut one = tiny_config();
        one.threads = 1;
        let mut four = tiny_config();
        four.threads = 4;
        let a = run_sweep(&one).unwrap();
        let b = run_sweep(&four).unwrap();
        assert_eq!(a, b, "reports must not depend on worker count");
        assert_eq!(
            serde::json::to_string(&a).unwrap(),
            serde::json::to_string(&b).unwrap()
        );
        assert_eq!(a.config.threads, 0, "threads echoed as 0");
    }

    #[test]
    fn outcome_tallies_partition_trials() {
        let report = run_sweep(&tiny_config()).unwrap();
        assert_eq!(report.cells.len(), 4);
        for cell in &report.cells {
            assert_eq!(cell.trials, 64);
            assert!(cell.ml_floor <= cell.ml_ceiling);
            for pt in &cell.points {
                let total = pt.ta.point() * 64.0 + pt.pa.point() * 64.0 + pt.na.point() * 64.0;
                assert!(
                    (total - 64.0).abs() < 1e-9,
                    "TA/PA/NA must partition the trials"
                );
            }
        }
    }

    #[test]
    fn liveness_decreases_with_t_on_each_cell() {
        // rfire = t·u grows with t under shared u, so TA (min ML ≥ rfire) is
        // monotone nonincreasing along the curve — exactly the §8 tradeoff
        // shape, and a direct consequence of CRN sharing.
        let report = run_sweep(&tiny_config()).unwrap();
        for cell in &report.cells {
            for w in cell.points.windows(2) {
                assert!(
                    w[0].ta.point() >= w[1].ta.point(),
                    "TA must fall as t grows: {cell:?}"
                );
            }
        }
    }

    #[test]
    fn complete_graph_outlevels_ring_under_same_loss() {
        // Same loss model, same trial budget: the dense graph reaches higher
        // run-wide ML than the ring (more disjoint paths, smaller diameter).
        let report = run_sweep(&tiny_config()).unwrap();
        let ring_iid = &report.cells[0];
        let k5_iid = &report.cells[2];
        assert_eq!(ring_iid.topology_name, "ring8");
        assert_eq!(k5_iid.topology_name, "k5");
        assert!(
            k5_iid.mean_ml_min() > ring_iid.mean_ml_min(),
            "K5 {} vs ring {}",
            k5_iid.mean_ml_min(),
            ring_iid.mean_ml_min()
        );
    }

    #[test]
    fn rejects_degenerate_configs() {
        let mut c = tiny_config();
        c.topologies.clear();
        assert!(run_sweep(&c).is_err());
        let mut c = tiny_config();
        c.trials = 0;
        assert!(run_sweep(&c).is_err());
        let mut c = tiny_config();
        c.t_curve = vec![0];
        assert!(run_sweep(&c).is_err());
    }

    #[test]
    fn report_serde_round_trips_and_tables() {
        let report = run_sweep(&tiny_config()).unwrap();
        let json = serde::json::to_string_pretty(&report).unwrap();
        let back: ScenarioSweepReport = serde::json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let rendered = report.table().to_string();
        assert!(rendered.contains("ring8"));
        assert!(rendered.contains("ge0.02-0.6"));
    }
}
