//! Structured run generators used by the lower-bound constructions and the
//! experiments.
//!
//! * [`tree_run`] — Lemma A.6: information flows only *down* a spanning tree
//!   from the leader, giving `ML(R) = ML_1(R) = 1` on any connected graph
//!   with diameter ≤ N.
//! * [`leader_only_input_run`] — the run `R₁ = {(v₀, 1, 0)}` at the heart of
//!   the second lower bound.
//! * [`ml_staircase`] — a family of runs whose `ML(R)` sweeps `0..=N`
//!   (deliver everything for the first `k` rounds, then nothing), the x-axis
//!   of the Theorem 6.8 liveness curve.
//! * [`isolated_pair_run`] — a run in which two chosen processes are
//!   causally independent (for the Lemma A.2 experiments).

use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::run::Run;

/// The Lemma A.6 run: input only at the leader; message `(i, j, r)` delivered
/// iff `i` is `j`'s parent in a BFS spanning tree rooted at the leader, for
/// every round `r`. On a connected graph with diameter ≤ `n` this gives
/// `ML(R) = 1` while every process still hears the input and `rfire`.
///
/// # Panics
///
/// Panics if the graph is disconnected.
pub fn tree_run(graph: &Graph, n: u32) -> Run {
    let parent = graph
        .spanning_tree(ProcessId::LEADER)
        .expect("tree_run requires a connected graph");
    let mut run = Run::empty(graph.len(), n);
    run.add_input(ProcessId::LEADER);
    for j in graph.vertices() {
        if let Some(par) = parent[j.index()] {
            for r in Round::protocol_rounds(n) {
                run.add_message(par, j, r);
            }
        }
    }
    run
}

/// The run `R₁ = {(v₀, 1, 0)}`: input only at the leader, **no** messages
/// delivered at all. `Clip₁` of the Lemma A.6 run; `ML(R₁) = 0` for everyone
/// but the leader.
pub fn leader_only_input_run(m: usize, n: u32) -> Run {
    let mut run = Run::empty(m, n);
    run.add_input(ProcessId::LEADER);
    run
}

/// Runs whose modified level sweeps a staircase: for each `k ∈ 0..=n`,
/// deliver every input and every message of rounds `1..=k` and destroy all
/// later ones. Returns the `n + 1` runs in order of `k`.
///
/// On a 2-clique, run `k` has `ML = k`; on larger graphs `ML` grows with `k`
/// at a topology-dependent rate (measured by experiment E11).
pub fn ml_staircase(graph: &Graph, n: u32) -> Vec<Run> {
    (0..=n)
        .map(|k| {
            let mut run = Run::good(graph, n);
            run.cut_from_round(Round::new(k + 1));
            run
        })
        .collect()
}

/// A run over ≥ 3 processes in which `a` and `b` are **causally
/// independent**: all inputs arrive, but the only messages delivered are
/// `a → b`-avoiding: nothing is ever delivered *to* `a` or *to* `b`, so no
/// process's round-0 state reaches both. (Everything else flows freely.)
///
/// # Panics
///
/// Panics if `a == b`.
pub fn isolated_pair_run(graph: &Graph, n: u32, a: ProcessId, b: ProcessId) -> Run {
    assert_ne!(a, b, "the pair must be distinct");
    let mut run = Run::good(graph, n);
    for from in graph.vertices() {
        run.cut_link_from_round(from, a, Round::new(1));
        run.cut_link_from_round(from, b, Round::new(1));
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use ca_core::flow::FlowGraph;
    use ca_core::level::{levels, modified_levels};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn tree_run_has_ml_exactly_one() {
        // Lemma A.6 on several topologies.
        for graph in [
            Graph::complete(4).unwrap(),
            Graph::star(5).unwrap(),
            Graph::ring(5).unwrap(),
            Graph::line(4).unwrap(),
            Graph::balanced_tree(7, 2).unwrap(),
        ] {
            let n = graph.diameter().unwrap().max(1) + 1;
            let run = tree_run(&graph, n);
            run.validate(&graph).unwrap();
            let ml = modified_levels(&run);
            assert_eq!(ml.level(ProcessId::LEADER), 1, "ML_1 = 1 on {graph}");
            assert_eq!(ml.min_level(), 1, "ML(R) = 1 on {graph}");
            for i in graph.vertices() {
                assert!(ml.level(i) >= 1, "everyone hears input+rfire on {graph}");
            }
            // And L_1(R) = 1 too (used in the Theorem A.1 proof).
            assert_eq!(levels(&run).level(ProcessId::LEADER), 1);
        }
    }

    #[test]
    fn tree_run_too_short_horizon_leaves_leaves_at_zero() {
        // If N < depth of some vertex, the input cannot reach it.
        let graph = Graph::line(5).unwrap();
        let run = tree_run(&graph, 2);
        let ml = modified_levels(&run);
        assert_eq!(ml.min_level(), 0, "far end of the line is unreached");
    }

    #[test]
    fn leader_only_input_run_shape() {
        let run = leader_only_input_run(3, 4);
        assert_eq!(run.input_count(), 1);
        assert!(run.has_input(ProcessId::LEADER));
        assert_eq!(run.message_count(), 0);
        let ml = modified_levels(&run);
        assert_eq!(ml.level(p(0)), 1);
        assert_eq!(ml.level(p(1)), 0);
    }

    #[test]
    fn ml_staircase_sweeps_all_levels_on_clique() {
        let g = Graph::complete(2).unwrap();
        let n = 5;
        let runs = ml_staircase(&g, n);
        assert_eq!(runs.len(), 6);
        for (k, run) in runs.iter().enumerate() {
            assert_eq!(
                modified_levels(run).min_level(),
                k as u32,
                "staircase step {k}"
            );
        }
    }

    #[test]
    fn ml_staircase_is_monotone_on_any_graph() {
        let g = Graph::star(4).unwrap();
        let runs = ml_staircase(&g, 6);
        let mls: Vec<u32> = runs
            .iter()
            .map(|r| modified_levels(r).min_level())
            .collect();
        for w in mls.windows(2) {
            assert!(w[0] <= w[1], "staircase must be monotone: {mls:?}");
        }
        assert_eq!(mls[0], 0);
        assert!(*mls.last().unwrap() >= 1);
    }

    #[test]
    fn isolated_pair_is_causally_independent() {
        let g = Graph::complete(4).unwrap();
        let run = isolated_pair_run(&g, 3, p(1), p(2));
        let flow = FlowGraph::new(&run);
        assert!(flow.causally_independent(p(1), p(2)));
        // Control: on the good run they are NOT independent.
        let flow = FlowGraph::new(&Run::good(&g, 3));
        assert!(!flow.causally_independent(p(1), p(2)));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn isolated_pair_rejects_equal_ids() {
        let g = Graph::complete(3).unwrap();
        isolated_pair_run(&g, 2, p(1), p(1));
    }
}
