//! Exact outcome probabilities by **exhaustive tape enumeration**.
//!
//! The closed-form analyses in [`crate::exact`] integrate the idealized
//! uniform `rfire` analytically. This module takes the opposite, fully
//! concrete route: for protocols whose randomness is a known number of
//! leader tape bits (e.g. [`ca_protocols::GridS`] with `b` bits, or
//! [`ca_protocols::ProtocolA`] when `N − 1` is a power of two so rejection
//! sampling accepts immediately), it enumerates **all** `2^b` equally likely
//! tapes, runs the real execution for each, and tallies exact rational
//! probabilities. No analytic shortcut, no sampling error — the strongest
//! possible cross-check of the formulas.

use crate::exact::ExactOutcome;
use ca_core::error::CaError;
use ca_core::exec::{execute_outputs_into, ExecScratch};
use ca_core::graph::Graph;
use ca_core::outcome::Outcome;
use ca_core::protocol::Protocol;
use ca_core::rational::Rational;
use ca_core::run::Run;
use ca_core::tape::{BitTape, TapeSet};
use ca_sim::chaos::parallel_map;

/// Per-chunk outcome tally. Merging is pure integer addition, so the chunked
/// parallel enumeration below reduces chunk tallies in index order and gets
/// the exact same totals as the old serial loop.
struct Tally {
    ta: i128,
    na: i128,
    pa: i128,
    attacks: Vec<i128>,
}

impl Tally {
    fn new(m: usize) -> Self {
        Tally {
            ta: 0,
            na: 0,
            pa: 0,
            attacks: vec![0; m],
        }
    }

    fn merge(&mut self, other: &Tally) {
        self.ta += other.ta;
        self.na += other.na;
        self.pa += other.pa;
        for (a, b) in self.attacks.iter_mut().zip(&other.attacks) {
            *a += b;
        }
    }
}

/// Tape indices per parallel chunk: big enough to amortize thread handoff,
/// small enough that every core stays busy on 2^20+ enumerations.
const CHUNK: u64 = 4096;

/// Enumerates all `2^bits` equally likely tape assignments, building the
/// tape set for enumeration index `j ∈ [0, 2^bits)` with `build_tapes(j)`,
/// executing the protocol on each, and returns the exact outcome
/// distribution plus the per-process decision probabilities.
///
/// The builder decides how the `bits` enumerated bits map onto tapes — e.g.
/// low bits of the leader's first word ([`enumerate_leader_tapes`]), or a
/// repeated word feeding a 64-bit rejection sampler (the Protocol A tests).
/// It must be a pure function of `j` for the tally to be an exact
/// distribution.
///
/// The index space is enumerated in parallel chunks; since each tally is a
/// pure function of its index range and the merge is integer addition, the
/// result is identical to a serial enumeration whatever the thread count.
///
/// # Panics
///
/// Panics if `bits > 24` (≥ 16M executions — the guard against accidental
/// blow-ups), or if executions disagree with the graph/run dimensions.
/// [`try_enumerate_tapes`] reports the size guard as a typed error instead.
pub fn enumerate_tapes<P: Protocol + Sync>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    bits: u32,
    build_tapes: impl Fn(u64) -> TapeSet + Sync,
) -> (ExactOutcome, Vec<Rational>) {
    try_enumerate_tapes(protocol, graph, run, bits, build_tapes).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible variant of [`enumerate_tapes`]: returns a typed [`CaError`]
/// instead of panicking when `bits > 24`.
///
/// # Errors
///
/// Returns [`CaError::MalformedConfig`] when the instance is too large to
/// enumerate.
pub fn try_enumerate_tapes<P: Protocol + Sync>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    bits: u32,
    build_tapes: impl Fn(u64) -> TapeSet + Sync,
) -> Result<(ExactOutcome, Vec<Rational>), CaError> {
    ca_core::error::check_enumeration_bits(bits as usize, "tapes")?;
    let total = 1u64 << bits;
    let denom = total as i128;
    let m = graph.len();
    let chunks = total.div_ceil(CHUNK) as usize;
    let tallies = parallel_map(chunks, 0, |chunk| {
        let mut tally = Tally::new(m);
        let mut scratch = ExecScratch::new();
        let start = chunk as u64 * CHUNK;
        for j in start..(start + CHUNK).min(total) {
            let tapes = build_tapes(j);
            let outputs = execute_outputs_into(protocol, graph, run, &tapes, &mut scratch);
            match Outcome::classify(outputs) {
                Outcome::TotalAttack => tally.ta += 1,
                Outcome::NoAttack => tally.na += 1,
                Outcome::PartialAttack => tally.pa += 1,
            }
            for (count, &o) in tally.attacks.iter_mut().zip(outputs) {
                *count += i128::from(o);
            }
        }
        tally
    });
    let mut tally = Tally::new(m);
    for t in &tallies {
        tally.merge(t);
    }
    Ok((
        ExactOutcome {
            ta: Rational::new(tally.ta, denom),
            na: Rational::new(tally.na, denom),
            pa: Rational::new(tally.pa, denom),
        },
        tally
            .attacks
            .into_iter()
            .map(|c| Rational::new(c, denom))
            .collect(),
    ))
}

/// Enumerates all `2^bits` leader tapes (followers get zero tapes — correct
/// for protocols where only the leader draws), executing the protocol on
/// each, and returns the exact outcome distribution plus the per-process
/// decision probabilities.
///
/// # Panics
///
/// Panics if `bits > 24` (≥ 16M executions — the guard against accidental
/// blow-ups), or if executions disagree with the graph/run dimensions.
pub fn enumerate_leader_tapes<P: Protocol + Sync>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    bits: u32,
) -> (ExactOutcome, Vec<Rational>) {
    enumerate_tapes(protocol, graph, run, bits, |j| {
        TapeSet::from_tapes(
            (0..graph.len())
                .map(|i| BitTape::from_words(vec![if i == 0 { j } else { 0 }]))
                .collect(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::{protocol_a_outcomes, protocol_s_outcomes};
    use ca_core::ids::Round;
    use ca_protocols::{GridS, ProtocolA};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_run<R: Rng>(g: &Graph, n: u32, keep: f64, rng: &mut R) -> Run {
        let mut run = Run::good(g, n);
        let slots: Vec<_> = run.messages().collect();
        for s in slots {
            if !rng.gen_bool(keep) {
                run.remove_message(s.from, s.to, s.round);
            }
        }
        run
    }

    #[test]
    fn grid_s_enumeration_converges_to_the_analytic_formula() {
        // As the grid refines (b → ∞), enumerated probabilities approach the
        // continuous-rfire closed form, within one grid cell (ε/2^b·t = 1/2^b
        // of probability mass per threshold).
        let g = Graph::complete(2).unwrap();
        let t = 4u64;
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let run = random_run(&g, 4, 0.6, &mut rng);
            let analytic = protocol_s_outcomes(&g, &run, t);
            for bits in [4u32, 8, 12] {
                let proto = GridS::new(1.0 / t as f64, bits);
                let (enumerated, _) = enumerate_leader_tapes(&proto, &g, &run, bits);
                let cell = 1.0 / f64::from(1u32 << bits);
                // Each of the ≤ 2 thresholds moves by at most one cell.
                for (a, b) in [
                    (analytic.ta, enumerated.ta),
                    (analytic.na, enumerated.na),
                    (analytic.pa, enumerated.pa),
                ] {
                    assert!(
                        (a.to_f64() - b.to_f64()).abs() <= 2.0 * cell + 1e-12,
                        "bits={bits}: analytic {a} vs enumerated {b} in {run:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn grid_s_exact_at_integer_aligned_grids() {
        // When the grid contains every integer threshold (2^b a multiple of
        // t and thresholds ≤ t), the enumeration matches the closed form
        // EXACTLY as rationals.
        let g = Graph::complete(2).unwrap();
        let t = 4u64; // grid 2^4 = 16 points: {0.25, 0.5, ..., 4.0} ⊇ integers
        let bits = 4u32;
        let proto = GridS::new(1.0 / t as f64, bits);
        let mut rng = StdRng::seed_from_u64(32);
        for _ in 0..15 {
            let run = random_run(&g, 3, 0.6, &mut rng);
            let analytic = protocol_s_outcomes(&g, &run, t);
            let (enumerated, _) = enumerate_leader_tapes(&proto, &g, &run, bits);
            assert_eq!(analytic, enumerated, "exact match expected on {run:?}");
        }
    }

    #[test]
    fn protocol_a_enumeration_matches_closed_form() {
        // With N − 1 = 2^b, draw_below never rejects, so b bits determine
        // rfire uniformly: enumeration must equal the per-rfire closed form.
        let n = 9u32; // N − 1 = 8 = 2^3
        let bits = 3u32;
        let g = Graph::complete(2).unwrap();
        let proto = ProtocolA::new(n);
        for d in [2u32, 4, 7, 9] {
            let mut run = Run::good(&g, n);
            run.cut_from_round(Round::new(d));
            let closed = protocol_a_outcomes(&g, &run, n);
            // Enumerate 2^3 tapes... draw_below draws 64 bits; give the
            // leader a full word whose low 3 bits vary and the rest zero —
            // value < 8 < zone, accepted immediately, rfire = 2 + (v mod 8).
            let (enumerated, attacks) = enumerate_tapes(&proto, &g, &run, bits, |j| {
                TapeSet::from_tapes(vec![
                    BitTape::from_words(vec![j; 64]),
                    BitTape::from_words(vec![0; 64]),
                ])
            });
            assert_eq!(closed, enumerated, "cut at {d}");
            // Lemma 2.2 on the enumerated decision probabilities.
            let pa_bound = enumerated.pa;
            assert!(
                (attacks[0] - attacks[1]).abs() <= pa_bound,
                "Lemma 2.2 via enumeration"
            );
        }
    }

    #[test]
    fn enumerated_decision_probabilities_respect_lemma_2_3() {
        let g = Graph::complete(3).unwrap();
        let t = 4u64;
        let bits = 4u32;
        let proto = GridS::new(1.0 / t as f64, bits);
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..10 {
            let run = random_run(&g, 3, 0.5, &mut rng);
            let (out, probs) = enumerate_leader_tapes(&proto, &g, &run, bits);
            for (i, &pi) in probs.iter().enumerate() {
                assert!(out.ta <= pi, "Lemma 2.3 at P{i}: L = {} > {pi}", out.ta);
            }
        }
    }

    #[test]
    fn refuses_huge_enumerations() {
        let g = Graph::complete(2).unwrap();
        let proto = GridS::new(0.5, 2);
        let run = Run::good(&g, 2);
        let err = try_enumerate_tapes(&proto, &g, &run, 30, |_| TapeSet::empty(2)).unwrap_err();
        assert!(
            matches!(err, ca_core::error::CaError::MalformedConfig { .. }),
            "{err:?}"
        );
        assert!(err.to_string().contains("too large"), "{err}");
    }

    #[test]
    fn parallel_enumeration_matches_serial_tally() {
        // The chunked parallel reduce must reproduce the serial totals
        // exactly (integer tallies, associative merge): enumerate the same
        // instance through the public API and through a hand-rolled serial
        // loop and compare rationals.
        let g = Graph::complete(2).unwrap();
        let bits = 6u32;
        let proto = GridS::new(0.25, bits);
        let mut rng = StdRng::seed_from_u64(34);
        let run = random_run(&g, 3, 0.6, &mut rng);
        let (out, probs) = enumerate_leader_tapes(&proto, &g, &run, bits);
        let (mut ta, mut na, mut pa) = (0i128, 0, 0);
        let mut attacks = [0i128; 2];
        for j in 0..1u64 << bits {
            let tapes = TapeSet::from_tapes(vec![
                BitTape::from_words(vec![j]),
                BitTape::from_words(vec![0]),
            ]);
            let outputs = ca_core::exec::execute_outputs(&proto, &g, &run, &tapes);
            match Outcome::classify(&outputs) {
                Outcome::TotalAttack => ta += 1,
                Outcome::NoAttack => na += 1,
                Outcome::PartialAttack => pa += 1,
            }
            for (count, &o) in attacks.iter_mut().zip(&outputs) {
                *count += i128::from(o);
            }
        }
        let denom = 1i128 << bits;
        assert_eq!(out.ta, Rational::new(ta, denom));
        assert_eq!(out.na, Rational::new(na, denom));
        assert_eq!(out.pa, Rational::new(pa, denom));
        assert_eq!(probs[0], Rational::new(attacks[0], denom));
        assert_eq!(probs[1], Rational::new(attacks[1], denom));
    }
}
