//! E1 — Protocol A's unsafety is `1/(N-1) ≈ 1/N` (Section 3).
//!
//! For each horizon `N` we compute the **exact** worst-case disagreement of
//! Protocol A over the cut family (the adversary's best strategies) and
//! cross-check with a Monte Carlo estimate at the worst cut. The paper's
//! claim `U_s(A) ≈ 1/N` should appear as `U = 1/(N-1)` exactly.

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::protocol_a_worst_pa;
use crate::report::{fmt_estimate, fmt_f64, Table};
use ca_core::graph::Graph;
use ca_core::rational::Rational;
use ca_protocols::ProtocolA;
use ca_sim::{simulate, FixedRun, SimConfig};

/// E1: `U_s(A) = 1/(N-1)`.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolAUnsafety;

impl Experiment for ProtocolAUnsafety {
    fn id(&self) -> &'static str {
        "E1"
    }

    fn title(&self) -> &'static str {
        "Protocol A unsafety: U_s(A) = 1/(N-1) ≈ 1/N (§3)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let graph = Graph::complete(2).expect("2-clique");
        let mut table = Table::new(["N", "exact U_s(A)", "1/(N-1)", "Monte Carlo at worst cut"]);
        let mut passed = true;
        let mut findings = Vec::new();

        for n in [3u32, 4, 6, 8, 12, 16, 24, 32] {
            let family = ca_sim::cut_family(&graph, n);
            let (worst_pa, worst_idx) = protocol_a_worst_pa(&graph, &family, n);
            let expect = Rational::new(1, (n - 1) as i128);
            passed &= worst_pa == expect;

            let proto = ProtocolA::new(n);
            let sampler = FixedRun::new(family[worst_idx].clone());
            let report = simulate(
                &proto,
                &graph,
                &sampler,
                SimConfig::new(scale.trials, scale.seed ^ u64::from(n)),
            );
            let mc = report.disagreement();
            passed &= mc.consistent_with_z(expect.to_f64(), 4.0);

            table.push_row([
                n.to_string(),
                worst_pa.to_string(),
                fmt_f64(expect.to_f64()),
                fmt_estimate(&mc),
            ]);
        }

        findings.push(
            "paper: U_s(A) ≈ 1/N; measured: exactly 1/(N-1) at the worst cut, for every N"
                .to_owned(),
        );
        findings.push(
            "Monte Carlo at the worst cut agrees with the exact value within the 95% interval"
                .to_owned(),
        );

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_passes_at_quick_scale() {
        let result = ProtocolAUnsafety.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 8);
    }
}
