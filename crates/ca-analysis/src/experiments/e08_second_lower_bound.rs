//! E8 — the second lower bound's machinery (Section 7 / Appendix A).
//!
//! Theorem A.1 says no protocol beats `ε·ML(R)` on all runs (under the
//! usual-case assumption). Its proof pivots on three constructions that we
//! reproduce concretely:
//!
//! 1. **Lemma A.6**: a spanning-tree run with `ML(R) = ML_1(R) = 1` exists on
//!    every connected graph with diameter ≤ N — and Protocol S's liveness on
//!    it is exactly `ε`, pinning `Pr[D_1|R₁] = ε`.
//! 2. **Clipping to `R₁`**: `Clip₁` of the tree run is `R₁ = {(v₀,1,0)}`,
//!    indistinguishable to the leader, so its attack probability carries over
//!    (Lemma 2.1).
//! 3. **Optimality**: since `L(S,R) = ε·ML(R)` (E5) and no run has
//!    `L > ε·ML` (checked here across families), Protocol S sits exactly on
//!    the Theorem A.1 frontier: any protocol that beats it somewhere must
//!    lose somewhere else.

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::protocol_s_outcomes;
use crate::report::{fmt_estimate, Table};
use crate::runs::{leader_only_input_run, tree_run};
use ca_core::clip::clip;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::level::{levels, modified_levels};
use ca_core::rational::Rational;
use ca_protocols::ProtocolS;
use ca_sim::{simulate, FixedRun, SimConfig};

/// E8: tree runs, clipping to `R₁`, and the optimality frontier.
#[derive(Clone, Copy, Debug, Default)]
pub struct SecondLowerBound;

impl Experiment for SecondLowerBound {
    fn id(&self) -> &'static str {
        "E8"
    }

    fn title(&self) -> &'static str {
        "Second lower bound machinery: tree run, R₁, optimality (Thm A.1)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let t = 6u64;
        let eps = Rational::new(1, t as i128);
        let proto = ProtocolS::new(1.0 / t as f64);
        let mut table = Table::new(["check", "expected", "exact", "Monte Carlo"]);
        let mut passed = true;
        let mut findings = Vec::new();

        // Lemma A.6 on several graphs (usual-case: connected, diameter ≤ N).
        for (name, graph, n) in [
            ("K3", Graph::complete(3).expect("graph"), 4u32),
            ("star(5)", Graph::star(5).expect("graph"), 4),
            ("ring(5)", Graph::ring(5).expect("graph"), 4),
        ] {
            assert!(graph.diameter().expect("connected") <= n);
            let run = tree_run(&graph, n);
            let ml = modified_levels(&run).min_level();
            let l1 = levels(&run).level(ProcessId::LEADER);
            passed &= ml == 1 && l1 == 1;
            let exact = protocol_s_outcomes(&graph, &run, t);
            passed &= exact.ta == eps;
            let report = simulate(
                &proto,
                &graph,
                &FixedRun::new(run.clone()),
                SimConfig::new(scale.trials, scale.seed ^ 0xE8),
            );
            passed &= report.liveness().consistent_with_z(eps.to_f64(), 4.0);
            table.push_row([
                format!("tree run on {name}: ML(R)=1, L(S,R)=ε"),
                format!("ML=1, L={eps}"),
                format!("ML={ml}, L={}", exact.ta),
                fmt_estimate(&report.liveness()),
            ]);

            // Clipping the tree run to the leader yields R₁ = {(v₀,1,0)}.
            let clipped = clip(&run, ProcessId::LEADER);
            let r1 = leader_only_input_run(graph.len(), n);
            passed &= clipped == r1;
            // And on R₁ the leader's attack probability is still exactly ε.
            let r1_report = simulate(
                &proto,
                &graph,
                &FixedRun::new(r1.clone()),
                SimConfig::new(scale.trials, scale.seed ^ 0xE81),
            );
            let leader_rate = r1_report.attack_rate(ProcessId::LEADER);
            passed &= leader_rate.consistent_with_z(eps.to_f64(), 4.0);
            table.push_row([
                format!("Clip₁(tree run) = R₁ on {name}; Pr[D₁|R₁] = ε"),
                format!("equal; {eps}"),
                if clipped == r1 {
                    "equal".to_owned()
                } else {
                    "DIFFERENT".to_owned()
                },
                fmt_estimate(&leader_rate),
            ]);
        }

        // Optimality frontier: across a batch of structured runs, Protocol S
        // never exceeds ε·ML(R) and achieves it with equality below
        // saturation (Thm A.1 says no protocol can do better on all runs).
        let graph = Graph::complete(3).expect("graph");
        let n = 8u32;
        let mut equal = 0usize;
        let mut total = 0usize;
        for run in crate::runs::ml_staircase(&graph, n)
            .into_iter()
            .chain(ca_sim::cut_family(&graph, n))
        {
            let ml = modified_levels(&run).min_level();
            let target = (eps * Rational::from(ml)).min(Rational::ONE);
            let got = protocol_s_outcomes(&graph, &run, t).ta;
            passed &= got == target;
            if got == target {
                equal += 1;
            }
            total += 1;
        }
        table.push_row([
            format!("L(S,R) = min(1, ε·ML(R)) on {total} structured runs"),
            "all equal".to_owned(),
            format!("{equal}/{total} equal"),
            "-".to_owned(),
        ]);

        findings.push(
            "Lemma A.6 reproduced: every connected graph admits a run with ML(R) = 1, \
             on which Protocol S's liveness is exactly ε"
                .to_owned(),
        );
        findings.push(
            "Clip₁(tree run) = R₁ and Pr[D₁|R₁] = ε — the exact pivot of the Theorem A.1 proof"
                .to_owned(),
        );
        findings.push(
            "Protocol S sits on the ε·ML(R) frontier everywhere: together with Thm A.1 this is \
             the paper's optimality claim"
                .to_owned(),
        );

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_passes() {
        let result = SecondLowerBound.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 7);
    }
}
