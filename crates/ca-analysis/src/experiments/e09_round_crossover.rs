//! E9 — the round crossover: liveness 1 with unsafety `≤ 1/t` costs `t`
//! rounds (Section 8).
//!
//! The conclusions' headline: *"if we want to achieve liveness with
//! probability 1 on some run, and yet limit the probability of error to be
//! less than 0.001, then the protocol must run for at least 1000 rounds."*
//! We regenerate the crossover table: for each `ε`, the lower bound on `N`
//! from Theorem 5.4 and the `N` at which Protocol S actually reaches
//! liveness 1 (on the 2-clique: exactly `t`).

use super::{Experiment, ExperimentResult, Scale};
use crate::report::Table;
use crate::tradeoff::{min_rounds_for_certain_liveness, min_rounds_lower_bound};
use ca_core::graph::Graph;

/// E9: rounds needed for certain liveness as `ε` shrinks.
#[derive(Clone, Copy, Debug, Default)]
pub struct RoundCrossover;

impl Experiment for RoundCrossover {
    fn id(&self) -> &'static str {
        "E9"
    }

    fn title(&self) -> &'static str {
        "Crossover: liveness 1 with U ≤ 1/t needs N ≥ t rounds (§8)"
    }

    fn run(&self, _scale: Scale) -> ExperimentResult {
        let graph = Graph::complete(2).expect("graph");
        let mut table = Table::new([
            "ε = 1/t",
            "lower bound on N (Thm 5.4)",
            "N where S reaches L = 1",
            "match",
        ]);
        let mut passed = true;

        for t in [2u64, 4, 8, 16, 64, 256, 1000] {
            let cap = (t as u32) + 8;
            let lower = min_rounds_lower_bound(&graph, t, cap);
            let achieved = min_rounds_for_certain_liveness(&graph, t, cap);
            // Theorem 5.4's level-based bound allows t-1 (the good run's
            // L = N+1); Protocol S achieves at exactly t. The one-round gap
            // is Lemma 6.1's L-vs-ML slack, closed by Theorem A.1.
            let ok = lower == Some(t as u32 - 1) && achieved == Some(t as u32);
            passed &= ok;
            table.push_row([
                format!("1/{t}"),
                lower.map_or("-".to_owned(), |n| n.to_string()),
                achieved.map_or("-".to_owned(), |n| n.to_string()),
                if ok {
                    "t-1 / t (gap = Lemma 6.1)".to_owned()
                } else {
                    "MISMATCH".to_owned()
                },
            ]);
        }

        let findings = vec![
            "paper: ε = 0.001 forces ≈ 1000 rounds; measured: Protocol S reaches liveness 1 at \
             exactly N = 1000 for t = 1000"
                .to_owned(),
            "the Thm 5.4 lower bound sits one round earlier (t-1) because L(good) = N+1 counts \
             hearing the input itself; the ML-based second bound (Thm A.1) closes that gap — \
             the tradeoff L/U ≤ N is tight end to end"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_passes() {
        let result = RoundCrossover.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 7);
    }
}
