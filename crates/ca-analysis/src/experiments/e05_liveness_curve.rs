//! E5 — the liveness curve: `L(S, R) = min(1, ε·ML(R))` (Theorem 6.8).
//!
//! The paper's theorem is a `≥`; combined with the second lower bound it is
//! an equality on the runs where `ML` determines everything. We sweep the ML
//! staircase (runs with `ML(R) = 0, 1, …, N`) and report, per step: `ML(R)`,
//! the predicted liveness, the exact achieved liveness, and a Monte Carlo
//! cross-check — the figure a systems reader would want.

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::protocol_s_outcomes;
use crate::report::{fmt_estimate, fmt_f64, Table};
use crate::runs::ml_staircase;
use ca_core::graph::Graph;
use ca_core::level::modified_levels;
use ca_core::rational::Rational;
use ca_protocols::ProtocolS;
use ca_sim::{simulate, FixedRun, SimConfig};

/// E5: the liveness staircase of Protocol S.
#[derive(Clone, Copy, Debug, Default)]
pub struct LivenessCurve;

impl Experiment for LivenessCurve {
    fn id(&self) -> &'static str {
        "E5"
    }

    fn title(&self) -> &'static str {
        "Liveness curve: L(S,R) = min(1, ε·ML(R)) (Thm 6.8)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let graph = Graph::complete(2).expect("graph");
        let n = 10u32;
        let t = 8u64;
        let eps = Rational::new(1, t as i128);
        let proto = ProtocolS::new(1.0 / t as f64);

        let mut table = Table::new([
            "cut after round",
            "ML(R)",
            "predicted min(1, ε·ML)",
            "exact L(S,R)",
            "Monte Carlo L(S,R)",
        ]);
        let mut passed = true;

        for (k, run) in ml_staircase(&graph, n).into_iter().enumerate() {
            let ml = modified_levels(&run).min_level();
            let predicted = (eps * Rational::from(ml)).min(Rational::ONE);
            let exact = protocol_s_outcomes(&graph, &run, t).ta;
            passed &= exact == predicted;

            let report = simulate(
                &proto,
                &graph,
                &FixedRun::new(run),
                SimConfig::new(scale.trials, scale.seed ^ (k as u64 + 31)),
            );
            let mc = report.liveness();
            passed &= mc.consistent_with_z(predicted.to_f64(), 4.0);

            table.push_row([
                k.to_string(),
                ml.to_string(),
                fmt_f64(predicted.to_f64()),
                exact.to_string(),
                fmt_estimate(&mc),
            ]);
        }

        let findings = vec![
            "paper: L(S,R) ≥ min(1, ε·ML(R)); measured: equality at every staircase step"
                .to_owned(),
            "liveness saturates at exactly ML(R) = t = 1/ε, as the tradeoff predicts".to_owned(),
            "contrast with E2: Protocol A's liveness is a cliff, Protocol S's is this staircase"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_passes() {
        let result = LivenessCurve.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 11);
    }
}
