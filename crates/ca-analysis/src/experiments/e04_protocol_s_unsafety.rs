//! E4 — Protocol S satisfies agreement: `U_s(S) ≤ ε`, tightly (Theorem 6.7).
//!
//! Three arms:
//! 1. **Exact** worst-case disagreement over the structured cut family, for
//!    several `(N, ε, topology)` combinations — always `≤ ε`, and `= ε`
//!    whenever the adversary can align a cut with the count leapfrog.
//! 2. **Randomized search**: Monte Carlo disagreement estimates over random
//!    runs, looking (and failing) to beat `ε`.
//! 3. **Exhaustive** adversary over *all* runs on a tiny instance — the
//!    strongest possible adversary, no family assumption — computed by the
//!    level-vector DP ([`crate::level_dp`]) and cross-checked against full
//!    run enumeration (the ≤ 24-bit oracle).

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::protocol_s_worst_pa;
use crate::level_dp::{self, DpSpec};
use crate::report::{fmt_f64, Table};
use ca_core::graph::Graph;
use ca_core::rational::Rational;
use ca_protocols::ProtocolS;
use ca_sim::{simulate, RandomRun, SimConfig};

/// E4: `U_s(S) ≤ ε` exactly, with tightness.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolSUnsafety;

impl Experiment for ProtocolSUnsafety {
    fn id(&self) -> &'static str {
        "E4"
    }

    fn title(&self) -> &'static str {
        "Protocol S agreement: U_s(S) ≤ ε, tight (Thm 6.7)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let mut table = Table::new(["setting", "ε", "worst exact PA (cut family)", "tight?"]);
        let mut passed = true;
        let mut findings = Vec::new();

        let settings: Vec<(&str, Graph, u32, u64)> = vec![
            ("K2, N=6", Graph::complete(2).expect("graph"), 6, 4),
            ("K2, N=10", Graph::complete(2).expect("graph"), 10, 8),
            ("K3, N=6", Graph::complete(3).expect("graph"), 6, 4),
            ("star(4), N=8", Graph::star(4).expect("graph"), 8, 5),
            ("ring(4), N=8", Graph::ring(4).expect("graph"), 8, 5),
            ("line(3), N=8", Graph::line(3).expect("graph"), 8, 5),
        ];

        for (name, graph, n, t) in &settings {
            let eps = Rational::new(1, *t as i128);
            let family = ca_sim::cut_family(graph, *n);
            let (worst, _) = protocol_s_worst_pa(graph, &family, *t);
            passed &= worst <= eps;
            table.push_row([
                (*name).to_owned(),
                eps.to_string(),
                worst.to_string(),
                if worst == eps {
                    "yes".to_owned()
                } else {
                    "no".to_owned()
                },
            ]);
        }

        // Randomized adversary search on K2: sample runs and take the worst
        // Monte Carlo PA estimate. It must not significantly exceed ε.
        let graph = Graph::complete(2).expect("graph");
        let (n, t) = (8u32, 4u64);
        let proto = ProtocolS::new(1.0 / t as f64);
        let mut worst_mc: f64 = 0.0;
        for k in 0..12u64 {
            let sampler = RandomRun::new(graph.clone(), n, 0.8, 0.55 + 0.03 * k as f64);
            let report = simulate(
                &proto,
                &graph,
                &sampler,
                SimConfig::new(scale.trials / 4, scale.seed ^ (k + 101)),
            );
            worst_mc = worst_mc.max(report.disagreement().wilson_interval(4.0).0);
        }
        // Even the lower confidence bound of the worst search should stay ≤ ε
        // (z = 4: this is a pass/fail gate over 12 independent searches).
        passed &= worst_mc <= 1.0 / t as f64;
        findings.push(format!(
            "randomized run search (mixed random runs): worst PA lower-CI {} ≤ ε = {}",
            fmt_f64(worst_mc),
            fmt_f64(1.0 / t as f64)
        ));

        // Exhaustive adversary on the tiny instance: K2, N=2, every input
        // subset × delivery pattern. The level DP is the default exact path;
        // enumerating all 2^(2+4) runs stays on as the cross-check oracle.
        let tiny_n = 2u32;
        let tiny_t = 2u64;
        let eps = Rational::new(1, tiny_t as i128);
        let spec = DpSpec::protocol_s(tiny_t);
        let sweep = level_dp::sweep(&graph, tiny_n, &spec, &[tiny_n]).expect("DP-eligible");
        let worst_exact = sweep.u_s;
        let (_, oracle_pa) =
            level_dp::worst_case_by_enumeration(&graph, tiny_n, &spec).expect("tiny oracle");
        passed &= worst_exact == oracle_pa;
        passed &= worst_exact <= eps;
        table.push_row([
            format!("K2, N={tiny_n}, ALL 2^6 runs (level DP)"),
            eps.to_string(),
            worst_exact.to_string(),
            if worst_exact == eps {
                "yes".to_owned()
            } else {
                "no".to_owned()
            },
        ]);
        findings.push(format!(
            "exhaustive adversary over all runs of the tiny instance (level DP = enumeration \
             oracle): U_s(S) = {worst_exact} = ε exactly"
        ));
        findings.push("paper: U_s(S) ≤ ε (Thm 6.7) — reproduced, and tight".to_owned());

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_passes() {
        let result = ProtocolSUnsafety.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 7);
    }
}
