//! E2 — Protocol A's liveness: 1 on the good run, 0 after one dead packet
//! (Section 3).
//!
//! The section's motivating complaint about Protocol A: destroy the single
//! packet of round 2 (deliver *everything* else) and the probability that
//! both generals attack collapses from 1 to 0 — liveness does not degrade
//! gracefully with delivered messages. Protocol S fixes this (E5).

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::{protocol_a_outcomes, protocol_s_outcomes};
use crate::report::Table;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::rational::Rational;
use ca_core::run::Run;

/// E2: the liveness cliff of Protocol A, and Protocol S's graceful slope.
#[derive(Clone, Copy, Debug, Default)]
pub struct ProtocolALiveness;

impl Experiment for ProtocolALiveness {
    fn id(&self) -> &'static str {
        "E2"
    }

    fn title(&self) -> &'static str {
        "Protocol A liveness cliff vs Protocol S graceful degradation (§3)"
    }

    fn run(&self, _scale: Scale) -> ExperimentResult {
        let graph = Graph::complete(2).expect("2-clique");
        let n = 8u32;
        let t = u64::from(n); // ε = 1/N for a fair comparison
        let mut table = Table::new(["run", "L(A,R) exact", "L(S,R) exact", "messages delivered"]);
        let mut passed = true;

        // The good run.
        let good = Run::good(&graph, n);
        let a_good = protocol_a_outcomes(&graph, &good, n);
        let s_good = protocol_s_outcomes(&graph, &good, t);
        passed &= a_good.ta == Rational::ONE;
        table.push_row([
            "good (all delivered)".to_owned(),
            a_good.ta.to_string(),
            s_good.ta.to_string(),
            good.message_count().to_string(),
        ]);

        // The §3 killer run: everything except process 1's round-2 packet.
        let mut killer = Run::good(&graph, n);
        killer.remove_message(ProcessId::new(0), ProcessId::new(1), Round::new(2));
        let a_killer = protocol_a_outcomes(&graph, &killer, n);
        let s_killer = protocol_s_outcomes(&graph, &killer, t);
        passed &= a_killer.ta == Rational::ZERO;
        // Protocol S still attacks with substantial probability: on this run
        // every message except one is delivered, so ML(R) is nearly N.
        passed &= s_killer.ta >= Rational::new((n - 2) as i128, t as i128);
        table.push_row([
            "good minus (P0→P1, r2)".to_owned(),
            a_killer.ta.to_string(),
            s_killer.ta.to_string(),
            killer.message_count().to_string(),
        ]);

        // Single drops at each round: A's liveness collapses whenever the
        // dropped packet is on the chain; S barely notices.
        for r in [1u32, 3, n] {
            // Chain packet of round r: sender is P1 on odd rounds, P0 on even.
            let sender = if r % 2 == 1 { 1 } else { 0 };
            let mut run = Run::good(&graph, n);
            run.remove_message(
                ProcessId::new(sender),
                ProcessId::new(1 - sender),
                Round::new(r),
            );
            let a_out = protocol_a_outcomes(&graph, &run, n);
            let s_out = protocol_s_outcomes(&graph, &run, t);
            // A: TA iff the drop is past rfire-1... dropping the chain packet
            // of round r allows TA only for rfire ≤ r - 1.
            passed &= a_out.ta <= Rational::new((r as i128 - 2).max(0), (n - 1) as i128);
            passed &= s_out.ta >= Rational::new((n - 2) as i128, t as i128);
            table.push_row([
                format!("good minus chain packet r{r}"),
                a_out.ta.to_string(),
                s_out.ta.to_string(),
                run.message_count().to_string(),
            ]);
        }

        let findings = vec![
            "paper: L(A, R_good) = 1 — reproduced exactly".to_owned(),
            "paper: destroying only the round-2 packet gives L(A, R) = 0 — reproduced exactly"
                .to_owned(),
            format!(
                "Protocol S on the same near-complete runs keeps L ≥ (N-2)/N = {}",
                Rational::new((n - 2) as i128, t as i128)
            ),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_passes() {
        let result = ProtocolALiveness.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 5);
    }
}
