//! X5 — Theorem A.1's dichotomy, realized by a concrete protocol.
//!
//! Theorem A.1: *if any protocol has a run with liveness above `ε·ML(R)`,
//! some other run must fall below.* The "eager" variant of Protocol S
//! (attack iff `count ≥ 1` and `count + 1 ≥ rfire`) is the concrete witness:
//!
//! * on every run with `ML(R) ≥ 1` its liveness is `min(1, ε·(ML(R)+1))` —
//!   strictly **above** the `ε·ML(R)` frontier;
//! * but its true worst-case unsafety is `2ε`, attained on
//!   `R₁ = {(v₀,1,0)}`, where the leader attacks alone whenever
//!   `rfire ≤ 2`.
//!
//! Re-budgeting (`ε' = 2ε`) puts eager exactly back on the frontier:
//! `L = min(1, ε'·(ML+1)/2) ≤ ε'·ML` for `ML ≥ 1`. The "+1" is never free —
//! which is the theorem's content.

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::{protocol_s_outcomes_slack, protocol_s_worst_pa};
use crate::report::{fmt_estimate, Table};
use crate::runs::{leader_only_input_run, ml_staircase, tree_run};
use ca_core::graph::Graph;
use ca_core::level::modified_levels;
use ca_core::rational::Rational;
use ca_core::run::Run;
use ca_protocols::ProtocolS;
use ca_sim::{simulate, FixedRun, SimConfig};

/// X5: the eager variant demonstrates that beating `ε·ML` costs unsafety.
#[derive(Clone, Copy, Debug, Default)]
pub struct EagerDichotomy;

impl Experiment for EagerDichotomy {
    fn id(&self) -> &'static str {
        "X5"
    }

    fn title(&self) -> &'static str {
        "Extension: the Theorem A.1 dichotomy — beating ε·ML(R) costs unsafety"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let t = 6u64;
        let eps = Rational::new(1, t as i128);
        let graph = Graph::complete(3).expect("graph");
        let n = 6u32;
        let mut table = Table::new([
            "run",
            "ML(R)",
            "frontier ε·ML",
            "L(S,R)",
            "L(eager,R)",
            "above frontier?",
        ]);
        let mut passed = true;

        // Arm 1: eager's liveness beats the frontier on every ML ≥ 1 run.
        let mut runs: Vec<(String, Run)> =
            vec![("tree run (ML=1)".to_owned(), tree_run(&graph, n))];
        for (k, run) in ml_staircase(&graph, n).into_iter().enumerate() {
            runs.push((format!("staircase k={k}"), run));
        }
        for (name, run) in &runs {
            let ml = modified_levels(run).min_level();
            let frontier = (eps * Rational::from(ml)).min(Rational::ONE);
            let live_s = protocol_s_outcomes_slack(&graph, run, t, 0).ta;
            let live_e = protocol_s_outcomes_slack(&graph, run, t, 1).ta;
            let above = live_e > frontier;
            if ml >= 1 && frontier < Rational::ONE {
                passed &= above;
                passed &= live_e == (eps * Rational::from(ml + 1)).min(Rational::ONE);
            }
            if ml == 0 {
                // Validity is still sure: no process reaches count 1.
                passed &= live_e == Rational::ZERO;
            }
            table.push_row([
                name.clone(),
                ml.to_string(),
                frontier.to_string(),
                live_s.to_string(),
                live_e.to_string(),
                format!("{above}"),
            ]);
        }

        // Arm 2: the price. Worst-case unsafety over cut families *plus* the
        // R₁-style runs where the dichotomy bites.
        let mut family = ca_sim::cut_family(&graph, n);
        family.push(leader_only_input_run(graph.len(), n));
        family.push(tree_run(&graph, n));
        let (worst_s, _) = protocol_s_worst_pa(&graph, &family, t);
        let mut worst_e = Rational::ZERO;
        let mut worst_idx = 0;
        for (k, run) in family.iter().enumerate() {
            let pa = protocol_s_outcomes_slack(&graph, run, t, 1).pa;
            if pa > worst_e {
                worst_e = pa;
                worst_idx = k;
            }
        }
        passed &= worst_s == eps;
        passed &= worst_e == eps + eps; // 2ε, on R₁
        table.push_row([
            "WORST-CASE UNSAFETY".to_owned(),
            "-".to_owned(),
            format!("ε = {eps}"),
            worst_s.to_string(),
            worst_e.to_string(),
            format!("eager pays 2ε (run #{worst_idx})"),
        ]);

        // Monte Carlo confirmation of the 2ε failure on R₁.
        let r1 = leader_only_input_run(graph.len(), n);
        let eager = ProtocolS::eager(1.0 / t as f64);
        let report = simulate(
            &eager,
            &graph,
            &FixedRun::new(r1),
            SimConfig::new(scale.trials, scale.seed ^ 0x55),
        );
        passed &= report
            .disagreement()
            .consistent_with_z(2.0 * eps.to_f64(), 4.0);
        table.push_row([
            "R₁ disagreement (eager, MC)".to_owned(),
            "0".to_owned(),
            format!("2ε = {}", eps + eps),
            "-".to_owned(),
            fmt_estimate(&report.disagreement()),
            "confirms 2ε".to_owned(),
        ]);

        let findings = vec![
            "eager S lives strictly above the ε·ML(R) frontier on every run with ML ≥ 1 — \
             exactly the protocol Theorem A.1 says must pay somewhere"
                .to_owned(),
            "it pays on R₁: disagreement 2ε (exact and Monte Carlo) — re-budgeted to its true \
             ε' = 2ε, eager is back on (not above) the frontier, so Protocol S is optimal"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x5_passes() {
        let result = EagerDichotomy.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 10);
    }
}
