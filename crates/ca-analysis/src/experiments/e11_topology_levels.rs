//! E11 — information-level growth by topology.
//!
//! Theorem 5.4 prices liveness in units of `L(R)` — information *levels*,
//! not rounds. How fast levels accrue is a property of the graph: a complete
//! graph gains a level per round, a line pays its diameter repeatedly. This
//! experiment regenerates the level-growth series per topology and the
//! resulting cost (rounds) of certain liveness — the capacity curve behind
//! every other experiment.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::Table;
use crate::tradeoff::min_rounds_for_certain_liveness;
use ca_core::graph::Graph;
use ca_core::level::levels;
use ca_core::run::Run;

/// E11: level growth per topology and the resulting round costs.
#[derive(Clone, Copy, Debug, Default)]
pub struct TopologyLevels;

impl Experiment for TopologyLevels {
    fn id(&self) -> &'static str {
        "E11"
    }

    fn title(&self) -> &'static str {
        "Level growth by topology: the capacity L(R) that Thm 5.4 prices"
    }

    fn run(&self, _scale: Scale) -> ExperimentResult {
        let t = 5u64;
        let mut table = Table::new([
            "topology",
            "diameter",
            "L(good) at N=6",
            "L(good) at N=12",
            "L(good) at N=24",
            "rounds for L(S)=1 at ε=1/5",
        ]);
        let mut passed = true;
        let mut findings = Vec::new();

        let graphs: Vec<(&str, Graph)> = vec![
            ("K2", Graph::complete(2).expect("graph")),
            ("K4", Graph::complete(4).expect("graph")),
            ("K8", Graph::complete(8).expect("graph")),
            ("star(8)", Graph::star(8).expect("graph")),
            ("ring(8)", Graph::ring(8).expect("graph")),
            ("line(8)", Graph::line(8).expect("graph")),
            ("grid(2x4)", Graph::grid(2, 4).expect("graph")),
            ("tree(7,2)", Graph::balanced_tree(7, 2).expect("graph")),
            ("cube(3)", Graph::hypercube(3).expect("graph")),
            ("torus(3x3)", Graph::torus(3, 3).expect("graph")),
        ];

        let mut rows: Vec<(String, u32, [u32; 3], Option<u32>)> = Vec::new();
        for (name, graph) in &graphs {
            let diam = graph.diameter().expect("connected");
            let ls = [6u32, 12, 24].map(|n| levels(&Run::good(graph, n)).min_level());
            let rounds = min_rounds_for_certain_liveness(graph, t, 128);
            // Levels must be monotone in N and bounded by N+1.
            passed &= ls[0] <= ls[1] && ls[1] <= ls[2];
            passed &= ls[0] <= 7 && ls[2] <= 25;
            rows.push(((*name).to_owned(), diam, ls, rounds));
        }

        // Paper-shape check: complete graphs accrue levels fastest; the line
        // pays roughly diameter rounds per level.
        let level24 = |name: &str| {
            rows.iter()
                .find(|r| r.0 == name)
                .map(|r| r.2[2])
                .expect("row exists")
        };
        passed &= level24("K8") >= level24("ring(8)");
        passed &= level24("ring(8)") >= level24("line(8)");
        // One level per round on the 2-clique, plus the initial input level.
        passed &= level24("K2") == 25;

        let rounds_of = |name: &str| {
            rows.iter()
                .find(|r| r.0 == name)
                .and_then(|r| r.3)
                .expect("liveness reached")
        };
        passed &= rounds_of("line(8)") > rounds_of("K8");
        // The 8-vertex structured topologies order by diameter: the cube
        // (diameter 3) beats the ring (4) and the line (7).
        passed &= level24("cube(3)") >= level24("ring(8)");
        passed &= rounds_of("cube(3)") <= rounds_of("ring(8)");

        for (name, diam, ls, rounds) in rows {
            table.push_row([
                name,
                diam.to_string(),
                ls[0].to_string(),
                ls[1].to_string(),
                ls[2].to_string(),
                rounds.map_or("> 128".to_owned(), |r| r.to_string()),
            ]);
        }

        findings.push(
            "complete graphs gain one level per round; sparser graphs pay their diameter per \
             level — liveness 1 on line(8) costs several times the rounds of K8"
                .to_owned(),
        );
        findings.push(
            "this is why the paper's tradeoff is stated per level L(R): rounds only help \
             through the levels they buy"
                .to_owned(),
        );

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_passes() {
        let result = TopologyLevels.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 10);
    }
}
