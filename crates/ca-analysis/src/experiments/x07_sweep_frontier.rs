//! X7 — big-graph scenario frontiers: topology × weak adversary at m = 1000.
//!
//! Every other experiment fixes a small graph and varies the protocol or the
//! adversary. This one opens the workload axis that §8's weak-adversary
//! discussion implies but never measures: on *large* sparse graphs, how does
//! the topology's diameter shift the observed liveness/safety frontier? The
//! scenario sweep ([`crate::sweep`]) samples runs through the per-link loss
//! models, scores each with the sparse level frontier (exact `min/max ML` by
//! Lemma 6.4), and classifies TA/PA/NA against Protocol S's firing coin under
//! common random numbers.
//!
//! Paper-shape checks:
//!
//! * the three generated topologies at m = 1000 order by diameter exactly as
//!   designed — scale-free < small-world < grid — so the frontier's x-axis
//!   is real (satisfying the generators' seed-determinism contract);
//! * on every cell, observed TA is monotone nonincreasing in `t = 1/ε` (the
//!   §8 tradeoff shape; exact under CRN, not just in expectation);
//! * TA/PA/NA partition the trials at every curve point;
//! * run-wide modified levels stay within `0 ≤ ML ≤ N + 1` (a level gains at
//!   most one per round from its base).

use super::{Experiment, ExperimentResult, Scale};
use crate::sweep::{run_sweep, ScenarioSweepConfig};

/// X7: topology × weak-adversary tradeoff frontiers on generated big graphs.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepFrontier;

impl Experiment for SweepFrontier {
    fn id(&self) -> &'static str {
        "X7"
    }

    fn title(&self) -> &'static str {
        "Extension: big-graph topology × weak-adversary frontiers (scenario sweep)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        // Paper scale (m = 1000) from quick scale up; the smoke-test scales
        // used by the CLI goldens get a small-graph sweep with the same
        // checks. Trials are per cell (6 cells), so the budget is divided.
        let (m, trials) = if scale.trials >= 2_000 {
            (1_000, (scale.trials / 20).clamp(100, 500))
        } else {
            (64, scale.trials.max(8))
        };
        let config = ScenarioSweepConfig::default_at(m, trials, scale.seed);
        let report = run_sweep(&config).expect("default sweep config is well-formed");

        let mut passed = true;
        let mut findings = Vec::new();

        passed &= report.cells.len() == config.topologies.len() * config.adversaries.len();

        // The frontier's x-axis: generated diameters must order scale-free <
        // small-world < grid (same seeds → same graphs, any machine).
        let diameter_of = |prefix: &str| {
            report
                .cells
                .iter()
                .find(|c| c.topology_name.starts_with(prefix))
                .map(|c| c.graph.diameter)
        };
        let (grid, sw, sf) = (
            diameter_of("grid").or_else(|| diameter_of("ring")),
            diameter_of("small-world"),
            diameter_of("scale-free"),
        );
        match (grid, sw, sf) {
            (Some(grid), Some(sw), Some(sf)) => {
                passed &= sf < sw && sw < grid;
                findings.push(format!(
                    "diameters at m = {m}: scale-free {sf} < small-world {sw} < grid {grid} — \
                     the same loss process meets very different information horizons"
                ));
            }
            _ => passed = false,
        }

        for cell in &report.cells {
            // §8 tradeoff shape, exact under CRN: raising t = 1/ε can only
            // lose liveness.
            passed &= cell
                .points
                .windows(2)
                .all(|w| w[0].ta.successes >= w[1].ta.successes);
            // TA/PA/NA partition the trials at every curve point.
            passed &= cell
                .points
                .iter()
                .all(|p| p.ta.successes + p.pa.successes + p.na.successes == cell.trials);
            // A level gains at most one per round from its base.
            passed &= cell.ml_ceiling <= cell.horizon + 1 && cell.ml_floor <= cell.ml_ceiling;
        }

        let first = report.config.t_curve.first().copied().unwrap_or(0);
        let last = report.config.t_curve.last().copied().unwrap_or(0);
        if let (Some(sf), Some(grid)) = (
            report
                .cells
                .iter()
                .find(|c| c.topology_name.starts_with("scale-free")),
            report.cells.iter().find(|c| {
                c.topology_name.starts_with("grid") || c.topology_name.starts_with("ring")
            }),
        ) {
            findings.push(format!(
                "iid 5% loss, t = {first}..{last}: scale-free (N = {}) holds TA {:.2} → {:.2} \
                 while the grid (N = {}) falls {:.2} → {:.2} — low diameter buys liveness at \
                 the same ε, the capacity effect Thm 5.4 prices as L(R)",
                sf.horizon,
                sf.points.first().map_or(0.0, |p| p.ta.point()),
                sf.points.last().map_or(0.0, |p| p.ta.point()),
                grid.horizon,
                grid.points.first().map_or(0.0, |p| p.ta.point()),
                grid.points.last().map_or(0.0, |p| p.ta.point()),
            ));
        }
        findings.push(format!(
            "{} cells × {trials} trials, classified by the sparse level frontier \
             (count, seen-set) — the dense O(m²) gossip table never materializes at m = {m}",
            report.cells.len()
        ));

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table: report.table(),
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x7_passes_at_reduced_scale() {
        // trials < 2000 selects the m = 64 sweep: same checks, CI-fast.
        let result = SweepFrontier.run(Scale {
            trials: 24,
            seed: 0xCA11,
        });
        assert!(result.passed, "{result}");
    }

    #[test]
    fn x7_is_deterministic_in_scale() {
        let scale = Scale {
            trials: 16,
            seed: 7,
        };
        let a = SweepFrontier.run(scale);
        let b = SweepFrontier.run(scale);
        assert_eq!(a.table.rows(), b.table.rows());
        assert_eq!(a.findings, b.findings);
    }
}
