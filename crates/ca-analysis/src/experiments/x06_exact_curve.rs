//! X6 — the §8 tradeoff curve computed **exactly** at N = 1000 and m > 2.
//!
//! Section 8's headline — liveness 1 with `U ≤ 0.001` forces `N ≥ 1000`
//! rounds — was previously anchored by closed forms on the good run (E9)
//! and extrapolation. The exhaustive adversary (every input subset × every
//! delivery pattern) could only be checked up to the enumeration wall:
//! `Run::try_enumerate_all` is `2^(m + E·N)` runs and returns its typed
//! `bits > 24` error almost immediately (K3 at N = 1000 would be `2^6003`
//! runs).
//!
//! The level-vector DP ([`crate::level_dp`]) removes the wall: it computes
//! `max_R Pr[TA|R]` and `max_R Pr[PA|R]` over the *entire* run space
//! exactly, in rationals, in time polynomial in N. This experiment runs it
//! at the paper's scale (K3, `t = 1000`, N = 1000) and checks the curve is
//! exactly the paper's: best liveness `min(1, r/t)` at every horizon,
//! liveness 1 first at `r = t = 1000`, and worst-case disagreement
//! `U_s = ε = 1/1000` throughout — Theorems 6.7/6.8 as equalities against
//! the strongest possible adversary, at a scale enumeration cannot touch.
//! A tiny instance keeps the DP honest: its sweep must equal brute force
//! over every enumerated run.

use super::{Experiment, ExperimentResult, Scale};
use crate::level_dp::{self, DpSpec};
use crate::report::Table;
use ca_core::error::CaError;
use ca_core::graph::Graph;
use ca_core::rational::Rational;
use ca_core::run::Run;

/// X6: the exactly computed §8 curve at N = 1000, m = 3.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactCurve;

impl Experiment for ExactCurve {
    fn id(&self) -> &'static str {
        "X6"
    }

    fn title(&self) -> &'static str {
        "Extension: §8 curve computed exactly at N = 1000 via the level-vector DP"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        // Paper scale (t = N = 1000) from quick scale up; the smoke-test
        // scales used by the CLI goldens get a proportionally small curve.
        let n: u32 = if scale.trials >= 2_000 { 1_000 } else { 24 };
        let t = u64::from(n);
        let graph = Graph::complete(3).expect("graph");
        let spec = DpSpec::protocol_s(t);
        let checkpoints: Vec<u32> = [1, n / 100, n / 10, n / 4, n / 2, 3 * n / 4, n - 1, n]
            .into_iter()
            .filter(|&c| c >= 1)
            .collect();

        let mut table = Table::new(["N (rounds)", "max TA over all runs", "max PA (U_s)"]);
        let mut passed = true;
        let mut findings = Vec::new();

        // Arm 1: the exact curve over the full run space at paper scale.
        let report = level_dp::sweep(&graph, n, &spec, &checkpoints).expect("DP-eligible sweep");
        for row in report.curve.iter().filter(|row| row.round > 0) {
            let predicted = Rational::new(i128::from(row.round).min(t as i128), t as i128);
            passed &= row.max_ta == predicted;
            passed &= row.max_pa == Rational::new(1, t as i128);
            table.push_row([
                row.round.to_string(),
                row.max_ta.to_string(),
                row.max_pa.to_string(),
            ]);
        }
        passed &= report.first_certain_round == Some(n);
        passed &= report.u_s == Rational::new(1, t as i128);
        findings.push(format!(
            "exact over ALL runs (K3, ε = 1/{t}): best liveness min(1, N/{t}), liveness 1 first \
             at N = {:?} rounds, U_s = {} — §8's forced-{t}-rounds claim as an equality",
            report.first_certain_round, report.u_s
        ));
        findings.push(format!(
            "DP cost: {} structural classes, {} frontier expansions over {n} rounds, \
             kernel cache {} hits / {} misses, {} clip collapses",
            report.stats.structural_states,
            report.stats.states_visited,
            report.stats.kernel_hits,
            report.stats.kernel_misses,
            report.stats.collapses
        ));

        // Arm 2: the wall the DP removed. Enumeration at this scale must
        // refuse with the typed bits > 24 error, not attempt 2^(3 + 6N) runs.
        let wall = Run::try_enumerate_all(&graph, n);
        let walled = matches!(wall, Err(CaError::MalformedConfig { .. }));
        passed &= walled;
        let bits = 3 + 6 * u64::from(n);
        table.push_row([
            format!("enumeration at N={n}"),
            format!("typed error: 2^{bits} runs"),
            if walled {
                "refused".into()
            } else {
                "ran?!".into()
            },
        ]);
        findings.push(format!(
            "the enumeration oracle refuses this scale (2^{bits} runs > 2^24): the curve above \
             is only computable because the DP is polynomial in N"
        ));

        // Arm 3: honesty at a size enumeration *can* reach — the DP must
        // equal brute force over every run (2^15 of them on K3 at N = 2).
        let tiny_n = 2u32;
        let tiny = level_dp::sweep(&graph, tiny_n, &spec, &[tiny_n]).expect("tiny sweep");
        let (oracle_ta, oracle_pa) =
            level_dp::worst_case_by_enumeration(&graph, tiny_n, &spec).expect("tiny oracle");
        passed &= tiny.final_max_ta == oracle_ta && tiny.u_s == oracle_pa;
        table.push_row([
            format!("cross-check N={tiny_n} (all 2^15 runs)"),
            format!("DP {} = oracle {}", tiny.final_max_ta, oracle_ta),
            format!("DP {} = oracle {}", tiny.u_s, oracle_pa),
        ]);

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x6_passes_at_reduced_scale() {
        // trials < 2000 selects the N = 24 curve: same checks, CI-fast.
        let result = ExactCurve.run(Scale {
            trials: 20,
            seed: 0xCA11,
        });
        assert!(result.passed, "{result}");
    }

    #[test]
    fn x6_passes_at_paper_scale() {
        let result = ExactCurve.run(Scale::quick());
        assert!(result.passed, "{result}");
        // N = 1000: 8 curve checkpoints + the wall row + the cross-check row.
        assert_eq!(result.table.len(), 10);
    }
}
