//! X3 — the Figure 1 compression ablation: what `(count, seen)` buys.
//!
//! Protocol S compresses a process's knowledge into a counter plus a one-bit-
//! per-process seen-set; the naive alternative gossips the full per-process
//! level vector. The two are behaviorally identical (proved by equivalence
//! tests in `ca-protocols`), so the difference is pure overhead: X3 measures
//! wire bytes per message and per execution across system sizes.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::Table;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::protocol::{Ctx, Protocol};
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::{ProtocolS, VectorS};
use ca_sim::wire::wire_size;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// X3: bytes on the wire, compressed vs naive gossip.
#[derive(Clone, Copy, Debug, Default)]
pub struct BandwidthAblation;

/// Total wire bytes of all messages sent in one execution.
fn execution_bytes<P>(proto: &P, graph: &Graph, run: &Run, tapes: &TapeSet) -> u64
where
    P: Protocol,
    P::Msg: serde::Serialize,
{
    let ex = ca_core::exec::execute(proto, graph, run, tapes);
    let mut bytes = 0u64;
    for i in graph.vertices() {
        for round_sends in &ex.local(i).sent {
            for (_, msg) in round_sends {
                bytes += wire_size(msg).expect("serializable message") as u64;
            }
        }
    }
    bytes
}

impl Experiment for BandwidthAblation {
    fn id(&self) -> &'static str {
        "X3"
    }

    fn title(&self) -> &'static str {
        "Ablation: Figure 1's (count, seen) compression vs full-vector gossip"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let mut table = Table::new([
            "m (processes)",
            "S msg bytes",
            "vector msg bytes",
            "S exec total",
            "vector exec total",
            "compression ×",
        ]);
        let mut passed = true;
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x33);
        let n = 4u32;
        let s = ProtocolS::new(0.2);
        let v = VectorS::new(0.2);

        let mut last_ratio = 0.0f64;
        for m in [4usize, 8, 16, 32, 64, 128] {
            let graph = Graph::complete(m).expect("graph");
            let run = Run::good(&graph, n);
            let tapes = TapeSet::random(&mut rng, m, 64);

            // Single-message sizes from the leader's initial state.
            let ctx = Ctx::new(&graph, n, ProcessId::LEADER);
            let mut r1 = tapes.tape(ProcessId::LEADER).reader();
            let mut r2 = tapes.tape(ProcessId::LEADER).reader();
            let st_s = s.init(ctx, true, &mut r1);
            let st_v = v.init(ctx, true, &mut r2);
            let msg_s = wire_size(&s.message(ctx, &st_s, ProcessId::new(1))).expect("size");
            let msg_v = wire_size(&v.message(ctx, &st_v, ProcessId::new(1))).expect("size");

            let exec_s = execution_bytes(&s, &graph, &run, &tapes);
            let exec_v = execution_bytes(&v, &graph, &run, &tapes);

            let ratio = exec_v as f64 / exec_s as f64;
            // Below the break-even size the constant overheads dominate and
            // the vector can actually be smaller — the interesting claim is
            // the asymptotic one, from m = 8 up.
            if m >= 8 {
                passed &= msg_v >= msg_s;
                passed &= exec_v > exec_s;
            }
            if m >= 16 {
                passed &= ratio > last_ratio * 0.95; // ratio grows (roughly) with m
            }
            last_ratio = ratio;

            table.push_row([
                m.to_string(),
                msg_s.to_string(),
                msg_v.to_string(),
                exec_s.to_string(),
                exec_v.to_string(),
                format!("{ratio:.2}"),
            ]);
        }
        passed &= last_ratio > 3.0;

        let findings = vec![
            "the compressed (count, seen) message costs Θ(m) bits vs the vector's Θ(m) words: \
             the execution-level saving grows with m, exceeding 13× at m = 128"
                .to_owned(),
            "below m ≈ 8 the constant overheads dominate and the vector is actually smaller — \
             Figure 1's compression is an asymptotic win, not a universal one"
                .to_owned(),
            "the ablation protocols are decision-equivalent (proved by tests in ca-protocols), \
             so the entire difference is the encoding Figure 1 chose"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x3_passes() {
        let result = BandwidthAblation.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 6);
    }
}
