//! E6 — the level lemmas: `L_i − 1 ≤ ML_i ≤ L_i` (Lemma 6.1) and
//! `ML_j ≥ ML_i − 1` (Lemma 6.2), measured over a large random-run census.
//!
//! Beyond verifying zero violations, the census reports *where* in the
//! `(L − ML)` range the mass sits — the paper's "small but irritating gap of
//! ε" is exactly the runs where `L − ML = 1`.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::Table;
use ca_core::graph::Graph;
use ca_core::level::{levels, modified_levels};
use ca_core::run::Run;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E6: Lemmas 6.1 and 6.2 as a census over random runs.
#[derive(Clone, Copy, Debug, Default)]
pub struct LevelLemmas;

impl Experiment for LevelLemmas {
    fn id(&self) -> &'static str {
        "E6"
    }

    fn title(&self) -> &'static str {
        "Level lemmas: L-1 ≤ ML ≤ L and ML spread ≤ 1 (Lemmas 6.1/6.2)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let mut table = Table::new([
            "topology",
            "runs",
            "6.1 violations",
            "6.2 violations",
            "share L−ML = 0",
            "share L−ML = 1",
        ]);
        let mut passed = true;

        let graphs: Vec<(&str, Graph, u32)> = vec![
            ("K2", Graph::complete(2).expect("graph"), 6),
            ("K3", Graph::complete(3).expect("graph"), 5),
            ("star(4)", Graph::star(4).expect("graph"), 6),
            ("ring(5)", Graph::ring(5).expect("graph"), 6),
            ("line(4)", Graph::line(4).expect("graph"), 7),
        ];

        let runs_per_graph = (scale.trials / 10).clamp(100, 5_000);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xE6);

        for (name, graph, n) in &graphs {
            let mut v61 = 0u64;
            let mut v62 = 0u64;
            let mut gap0 = 0u64;
            let mut gap1 = 0u64;
            let mut samples = 0u64;
            for _ in 0..runs_per_graph {
                let keep = rng.gen_range(0.2..0.95);
                let mut run = Run::good(graph, *n);
                for i in graph.vertices() {
                    if !rng.gen_bool(0.8) {
                        run.remove_input(i);
                    }
                }
                let slots: Vec<_> = run.messages().collect();
                for s in slots {
                    if !rng.gen_bool(keep) {
                        run.remove_message(s.from, s.to, s.round);
                    }
                }
                let l = levels(&run);
                let ml = modified_levels(&run);
                let finals_ml = ml.final_levels();
                let max_ml = *finals_ml.iter().max().expect("nonempty");
                for i in graph.vertices() {
                    let (li, mli) = (l.level(i), ml.level(i));
                    if mli > li || li > mli + 1 {
                        v61 += 1;
                    }
                    if mli + 1 < max_ml {
                        v62 += 1;
                    }
                    match li - mli.min(li) {
                        0 => gap0 += 1,
                        _ => gap1 += 1,
                    }
                    samples += 1;
                }
            }
            passed &= v61 == 0 && v62 == 0;
            table.push_row([
                (*name).to_owned(),
                runs_per_graph.to_string(),
                v61.to_string(),
                v62.to_string(),
                format!("{:.3}", gap0 as f64 / samples as f64),
                format!("{:.3}", gap1 as f64 / samples as f64),
            ]);
        }

        let findings = vec![
            "0 violations of Lemma 6.1 and Lemma 6.2 across all topologies".to_owned(),
            "the L−ML = 1 mass is the price of requiring everyone to hear rfire — \
             the paper's 'small but irritating gap of ε' (§7)"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_passes() {
        let result = LevelLemmas.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 5);
    }
}
