//! E7 — Protocol S's counter equals the modified level (Lemma 6.4).
//!
//! `count_i^r = ML_i^r(R)` for every process, every round, every run. We
//! execute the real protocol on a large census of random runs across
//! topologies and compare against the independent gossip-DP level
//! computation (which is itself cross-validated against the literal recursive
//! definition in `ca-core`'s tests). Zero mismatches expected.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::Table;
use ca_core::exec::execute;
use ca_core::graph::Graph;
use ca_core::ids::Round;
use ca_core::level::modified_levels;
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::ProtocolS;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E7: Lemma 6.4 as a census.
#[derive(Clone, Copy, Debug, Default)]
pub struct CountTracksMl;

impl Experiment for CountTracksMl {
    fn id(&self) -> &'static str {
        "E7"
    }

    fn title(&self) -> &'static str {
        "count_i^r = ML_i^r(R): the protocol measures its own knowledge (Lemma 6.4)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let mut table = Table::new(["topology", "runs", "(i,r) pairs compared", "mismatches"]);
        let mut passed = true;
        let proto = ProtocolS::new(0.25);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xE7);
        let runs_per_graph = (scale.trials / 20).clamp(50, 2_000);

        let graphs: Vec<(&str, Graph, u32)> = vec![
            ("K2", Graph::complete(2).expect("graph"), 6),
            ("K4", Graph::complete(4).expect("graph"), 5),
            ("star(5)", Graph::star(5).expect("graph"), 6),
            ("ring(5)", Graph::ring(5).expect("graph"), 6),
            ("grid(2x3)", Graph::grid(2, 3).expect("graph"), 6),
            ("tree(7,2)", Graph::balanced_tree(7, 2).expect("graph"), 6),
        ];

        for (name, graph, n) in &graphs {
            let mut mismatches = 0u64;
            let mut pairs = 0u64;
            for _ in 0..runs_per_graph {
                let keep = rng.gen_range(0.25..0.95);
                let mut run = Run::good(graph, *n);
                for i in graph.vertices() {
                    if !rng.gen_bool(0.75) {
                        run.remove_input(i);
                    }
                }
                let slots: Vec<_> = run.messages().collect();
                for s in slots {
                    if !rng.gen_bool(keep) {
                        run.remove_message(s.from, s.to, s.round);
                    }
                }
                let ml = modified_levels(&run);
                let tapes = TapeSet::random(&mut rng, graph.len(), 64);
                let ex = execute(&proto, graph, &run, &tapes);
                for i in graph.vertices() {
                    for r in 0..=*n {
                        pairs += 1;
                        if ex.local(i).states[r as usize].count != ml.level_at(i, Round::new(r)) {
                            mismatches += 1;
                        }
                    }
                }
            }
            passed &= mismatches == 0;
            table.push_row([
                (*name).to_owned(),
                runs_per_graph.to_string(),
                pairs.to_string(),
                mismatches.to_string(),
            ]);
        }

        let findings = vec![
            "0 mismatches between the executed protocol's count and the independent ML computation"
                .to_owned(),
            "this is the paper's key protocol invariant (Lemma 6.4), verified at scale".to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_passes() {
        let result = CountTracksMl.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 6);
    }
}
