//! X2 — adaptive metadata-only adversaries don't beat the strong adversary.
//!
//! Footnote 3 of the paper dismisses adversaries that can read message bits
//! (encryption makes the assumption reasonable) — but what about adversaries
//! that *adapt* their destruction schedule round by round? Since message
//! contents are hidden and every process sends every round, an adaptive
//! adversary's only observable history is its own choices: it collapses to a
//! distribution over runs, and `U_s = max_R Pr[PA|R]` covers it.
//!
//! X2 demonstrates the collapse empirically: three adaptive strategies
//! (randomized cut, a history-driven "gambler", a per-round link chopper)
//! are measured against Protocol S; none pushes disagreement past `ε`.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::{fmt_estimate, Table};
use ca_core::graph::Graph;
use ca_core::rational::Rational;
use ca_protocols::ProtocolS;
use ca_sim::adaptive::{AdaptiveSampler, Gambler, LinkChopper, RandomizedCut};
use ca_sim::{simulate, SimConfig};

/// X2: adaptivity without bit access adds nothing.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveAdversaryExperiment;

impl Experiment for AdaptiveAdversaryExperiment {
    fn id(&self) -> &'static str {
        "X2"
    }

    fn title(&self) -> &'static str {
        "Extension: adaptive metadata-only adversaries stay below ε (footnote 3)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let n = 8u32;
        let t = 4u64;
        let eps = Rational::new(1, t as i128);
        let proto = ProtocolS::new(1.0 / t as f64);
        let mut table = Table::new(["adaptive strategy", "graph", "Pr[PA] (MC)", "ε", "≤ ε?"]);
        let mut passed = true;

        let graphs = [
            ("K2", Graph::complete(2).expect("graph")),
            ("K3", Graph::complete(3).expect("graph")),
        ];

        for (gname, graph) in &graphs {
            // Randomized cut.
            let sampler = AdaptiveSampler::new(graph.clone(), n, "randomized-cut", move |seed| {
                RandomizedCut::new(n, seed)
            });
            let report = simulate(
                &proto,
                graph,
                &sampler,
                SimConfig::new(scale.trials, scale.seed ^ 0x21),
            );
            let ok = report.disagreement().wilson_interval(4.0).0 <= eps.to_f64();
            passed &= ok;
            table.push_row([
                "randomized cut".to_owned(),
                (*gname).to_owned(),
                fmt_estimate(&report.disagreement()),
                eps.to_string(),
                format!("{ok}"),
            ]);

            // Gambler.
            let sampler =
                AdaptiveSampler::new(graph.clone(), n, "gambler", |seed| Gambler::new(2, seed));
            let report = simulate(
                &proto,
                graph,
                &sampler,
                SimConfig::new(scale.trials, scale.seed ^ 0x22),
            );
            let ok = report.disagreement().wilson_interval(4.0).0 <= eps.to_f64();
            passed &= ok;
            table.push_row([
                "gambler".to_owned(),
                (*gname).to_owned(),
                fmt_estimate(&report.disagreement()),
                eps.to_string(),
                format!("{ok}"),
            ]);

            // Link chopper.
            let sampler = AdaptiveSampler::new(graph.clone(), n, "link-chopper", |seed| {
                LinkChopper::new(2, seed)
            });
            let report = simulate(
                &proto,
                graph,
                &sampler,
                SimConfig::new(scale.trials, scale.seed ^ 0x23),
            );
            let ok = report.disagreement().wilson_interval(4.0).0 <= eps.to_f64();
            passed &= ok;
            table.push_row([
                "link chopper".to_owned(),
                (*gname).to_owned(),
                fmt_estimate(&report.disagreement()),
                eps.to_string(),
                format!("{ok}"),
            ]);
        }

        let findings = vec![
            "every adaptive strategy's disagreement stays at or below ε — adaptivity over \
             metadata collapses to a distribution over runs, which the worst-case bound covers"
                .to_owned(),
            "formally: Pr[PA] = Σ_R Pr[strategy picks R]·Pr[PA|R] ≤ max_R Pr[PA|R] = U_s(S) ≤ ε"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x2_passes() {
        let result = AdaptiveAdversaryExperiment.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 6);
    }
}
