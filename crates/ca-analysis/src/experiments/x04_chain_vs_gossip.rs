//! X4 — serial token-passing vs parallel gossip as `m` grows.
//!
//! The natural m-general generalization of Protocol A bounces a single token
//! along a path; the adversary then gets a **window** of `Θ(m)` firing
//! values that split the generals, instead of Protocol A's single value. The
//! worst-case disagreement of the chain grows linearly in `m`, while
//! Protocol S — gossiping in parallel — stays at `ε` regardless of `m`.
//! This quantifies *why* the paper's optimal protocol counts levels with
//! all-to-all gossip rather than serializing acknowledgements.

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::protocol_s_worst_pa;
use crate::report::{fmt_f64, Table};
use ca_core::exec::execute;
use ca_core::graph::Graph;
use ca_core::ids::Round;
use ca_core::outcome::Outcome;
use ca_core::run::Run;
use ca_core::tape::{BitTape, TapeSet};
use ca_protocols::ChainProtocol;

/// X4: the price of serial information spreading.
#[derive(Clone, Copy, Debug, Default)]
pub struct ChainVsGossip;

/// Exact worst-case PA of the chain protocol over prefix cuts, by
/// enumerating every `(cut, rfire)` pair.
fn chain_worst_pa(m: usize, n: u32) -> (f64, u32) {
    let graph = Graph::line(m).expect("graph");
    let proto = ChainProtocol::new(n);
    let hi = ChainProtocol::max_rfire(m, n);
    let denom = f64::from(hi - 1);
    let mut worst = 0u32;
    for d in 2..=n + 1 {
        let mut run = Run::good(&graph, n);
        if d <= n {
            run.cut_from_round(Round::new(d));
        }
        let mut pa = 0u32;
        for rfire in 2..=hi {
            let word = u64::from(rfire - 2);
            let tapes = TapeSet::from_tapes(
                (0..m)
                    .map(|i| BitTape::from_words(vec![if i == 0 { word } else { 0 }; 64]))
                    .collect(),
            );
            if execute(&proto, &graph, &run, &tapes).outcome() == Outcome::PartialAttack {
                pa += 1;
            }
        }
        worst = worst.max(pa);
    }
    (f64::from(worst) / denom, worst)
}

impl Experiment for ChainVsGossip {
    fn id(&self) -> &'static str {
        "X4"
    }

    fn title(&self) -> &'static str {
        "Ablation: serial token chain vs Protocol S's parallel gossip as m grows"
    }

    fn run(&self, _scale: Scale) -> ExperimentResult {
        let n = 20u32;
        let t = u64::from(n) - 1; // match Protocol A's ε ≈ 1/N budget
        let mut table = Table::new([
            "m",
            "chain worst U (exact)",
            "bad rfire values",
            "S worst U (exact, line graph)",
        ]);
        let mut passed = true;
        let mut last_bad = 0u32;

        for m in [2usize, 3, 4, 5, 6] {
            let (chain_u, bad) = chain_worst_pa(m, n);
            let graph = Graph::line(m).expect("graph");
            let family = ca_sim::cut_family(&graph, n);
            let (s_u, _) = protocol_s_worst_pa(&graph, &family, t);
            passed &= bad >= last_bad;
            passed &= s_u.to_f64() <= 1.0 / t as f64 + 1e-12;
            if m == 2 {
                passed &= bad == 1; // reduces to Protocol A
            }
            last_bad = bad;
            table.push_row([
                m.to_string(),
                fmt_f64(chain_u),
                bad.to_string(),
                s_u.to_string(),
            ]);
        }
        // The divergence: by m = 6 the chain's disagreement window is several
        // times Protocol A's single value, while S never moves.
        passed &= last_bad >= 5;

        let findings = vec![
            "the chain's worst-case disagreement window grows linearly in m (serializing \
             acknowledgements lets one cut strand a Θ(m)-round sweep mid-flight)"
                .to_owned(),
            "Protocol S's worst-case disagreement is ε on every topology and every m — \
             parallel level-counting is what makes the tradeoff m-independent"
                .to_owned(),
        ];

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x4_passes() {
        let result = ChainVsGossip.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 5);
    }
}
