//! E10 — the weak adversary: vastly better tradeoffs (Section 8).
//!
//! The paper closes with: against a *probabilistic* adversary that destroys
//! each message with unknown probability `p`, there are "preliminary results
//! that show vastly improved performance". We make that concrete: under
//! random drops, Protocol S's measured `L/U` ratio blows past the strong
//! adversary's ceiling `L/U ≤ N`, because unsafety is no longer the worst
//! case over runs but an average — and the average run's counts race far
//! above the firing threshold, where disagreement is impossible.
//!
//! The deterministic [`FixedThreshold`] baseline is also measured: good
//! against random drops (its only failure mode is the run's level landing
//! exactly on the threshold), but destroyed by a strong adversary (E4's
//! worst-case machinery shows `U_s = 1`), which is why randomization is
//! still the right tool when the adversary is adaptive.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::{fmt_estimate, fmt_f64, Table};
use ca_core::graph::Graph;
use ca_protocols::{FixedThreshold, ProtocolS};
use ca_sim::{simulate, RandomDrop, SimConfig};

/// E10: measured `L/U` against the weak adversary.
#[derive(Clone, Copy, Debug, Default)]
pub struct WeakAdversary;

impl Experiment for WeakAdversary {
    fn id(&self) -> &'static str {
        "E10"
    }

    fn title(&self) -> &'static str {
        "Weak (probabilistic) adversary: L/U ≫ N (§8)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let graph = Graph::complete(2).expect("graph");
        let n = 24u32;
        let t = 12u64; // ε = 1/12; under the strong adversary L/U ≤ N = 24.
        let proto = ProtocolS::new(1.0 / t as f64);
        let mut table = Table::new([
            "drop p",
            "protocol",
            "L = Pr[TA]",
            "U = Pr[PA]",
            "exact L (Markov)",
            "exact U (Markov)",
            "L/U (exact)",
        ]);
        let mut passed = true;
        let mut findings = Vec::new();

        let mut best_ratio: f64 = 0.0;
        for (k, p) in [0.05f64, 0.1, 0.2, 0.3].into_iter().enumerate() {
            let sampler = RandomDrop::new(&graph, n, p);
            let report = simulate(
                &proto,
                &graph,
                &sampler,
                SimConfig::new(scale.trials, scale.seed ^ (0xE10 + k as u64)),
            );
            let live = report.liveness();
            let dis = report.disagreement();
            // Exact cross-check from the Markov-chain analysis.
            let exact = crate::weak_exact::weak_adversary_exact(n, p, t);
            passed &= live.consistent_with_z(exact.liveness, 4.0);
            passed &= dis.consistent_with_z(exact.disagreement, 4.0);
            let ratio = if exact.disagreement > 0.0 {
                exact.liveness / exact.disagreement
            } else {
                f64::INFINITY
            };
            best_ratio = best_ratio.max(ratio);
            table.push_row([
                fmt_f64(p),
                "S".to_owned(),
                fmt_estimate(&live),
                fmt_estimate(&dis),
                fmt_f64(exact.liveness),
                fmt_f64(exact.disagreement),
                if ratio.is_finite() {
                    format!("{ratio:.0}")
                } else {
                    "∞".to_owned()
                },
            ]);
            // At mild drop rates liveness should be essentially 1 and
            // unsafety far below ε.
            if p <= 0.2 {
                passed &= live.point() > 0.9;
                passed &= exact.disagreement < 1.0 / t as f64;
            }
        }
        passed &= best_ratio > n as f64;

        // FixedThreshold baseline under the same weak adversary.
        let theta = n / 2;
        let thresh = FixedThreshold::new(theta);
        for (k, p) in [0.1f64, 0.3].into_iter().enumerate() {
            let sampler = RandomDrop::new(&graph, n, p);
            let report = simulate(
                &thresh,
                &graph,
                &sampler,
                SimConfig::new(scale.trials, scale.seed ^ (0xE10F + k as u64)),
            );
            table.push_row([
                fmt_f64(p),
                format!("threshold θ={theta}"),
                fmt_estimate(&report.liveness()),
                fmt_estimate(&report.disagreement()),
                "-".to_owned(),
                "-".to_owned(),
                "-".to_owned(),
            ]);
        }

        findings.push(format!(
            "Protocol S against random drops: exact L/U reaches {:.0}, far above the \
             strong-adversary ceiling L/U ≤ N = {n} — the paper's 'vastly improved performance' \
             (§8), now with a closed-form Markov-chain cross-check matching Monte Carlo",
            if best_ratio.is_finite() {
                best_ratio
            } else {
                f64::MAX
            }
        ));
        findings.push(
            "the deterministic threshold baseline is also strong here (disagreement only when the \
             run's level lands exactly on θ), but E4-style strong-adversary analysis gives it \
             U_s = 1 — randomization is what buys worst-case safety"
                .to_owned(),
        );

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_passes() {
        let result = WeakAdversary.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 6);
    }
}
