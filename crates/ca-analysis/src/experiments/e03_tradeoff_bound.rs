//! E3 — the first lower bound: `L(F, R) ≤ ε·L(R)` (Theorem 5.4).
//!
//! We instantiate `F` with Protocol S (the only protocol that can hope to be
//! tight) and sweep runs of very different shapes — the ML staircase, the
//! Lemma A.6 tree run, and random runs — verifying the exact liveness never
//! exceeds `min(1, ε·L(R))`, and measuring the gap (which Lemma 6.1 bounds
//! by one level's worth of `ε`).

use super::{Experiment, ExperimentResult, Scale};
use crate::exact::protocol_s_outcomes;
use crate::report::{fmt_f64, Table};
use crate::runs::{ml_staircase, tree_run};
use ca_core::graph::Graph;
use ca_core::level::levels;
use ca_core::rational::Rational;
use ca_core::run::Run;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// E3: Theorem 5.4's bound checked exactly across run families.
#[derive(Clone, Copy, Debug, Default)]
pub struct TradeoffBound;

fn random_run<R: Rng>(graph: &Graph, n: u32, keep: f64, rng: &mut R) -> Run {
    let mut run = Run::good(graph, n);
    let slots: Vec<_> = run.messages().collect();
    for s in slots {
        if !rng.gen_bool(keep) {
            run.remove_message(s.from, s.to, s.round);
        }
    }
    for i in graph.vertices() {
        if !rng.gen_bool(0.8) {
            run.remove_input(i);
        }
    }
    run
}

impl Experiment for TradeoffBound {
    fn id(&self) -> &'static str {
        "E3"
    }

    fn title(&self) -> &'static str {
        "First lower bound: L(S,R) ≤ min(1, ε·L(R)) on every run (Thm 5.4)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let t = 10u64;
        let eps = Rational::new(1, t as i128);
        let mut table = Table::new([
            "run family",
            "runs checked",
            "bound violations",
            "max gap bound−achieved",
            "gaps > ε",
        ]);
        let mut passed = true;
        let mut findings = Vec::new();

        let mut check_family = |name: &str, graph: &Graph, family: Vec<Run>| {
            let mut violations = 0usize;
            let mut max_gap = Rational::ZERO;
            let mut big_gaps = 0usize;
            for run in &family {
                let level = levels(run).min_level();
                let bound = (eps * Rational::from(level)).min(Rational::ONE);
                let achieved = protocol_s_outcomes(graph, run, t).ta;
                if achieved > bound {
                    violations += 1;
                }
                let gap = bound - achieved;
                if gap > max_gap {
                    max_gap = gap;
                }
                if gap > eps {
                    big_gaps += 1;
                }
            }
            passed &= violations == 0;
            table.push_row([
                name.to_owned(),
                family.len().to_string(),
                violations.to_string(),
                fmt_f64(max_gap.to_f64()),
                big_gaps.to_string(),
            ]);
            big_gaps
        };

        let clique2 = Graph::complete(2).expect("graph");
        let clique3 = Graph::complete(3).expect("graph");
        let star = Graph::star(4).expect("graph");

        check_family("ML staircase, K2, N=8", &clique2, ml_staircase(&clique2, 8));
        check_family("ML staircase, K3, N=8", &clique3, ml_staircase(&clique3, 8));
        check_family(
            "cut family, K2, N=8",
            &clique2,
            ca_sim::cut_family(&clique2, 8),
        );
        check_family("tree run, star(4), N=6", &star, vec![tree_run(&star, 6)]);

        let mut rng = StdRng::seed_from_u64(scale.seed);
        let sample = (scale.trials / 20).clamp(50, 2000) as usize;
        let random: Vec<Run> = (0..sample)
            .map(|_| random_run(&clique3, 6, rng.gen_range(0.3..0.9), &mut rng))
            .collect();
        let big_gaps_random = check_family("random runs, K3, N=6", &clique3, random);

        findings.push(format!(
            "0 violations of L(S,R) ≤ min(1, ε·L(R)) across every family (ε = {eps})"
        ));
        findings.push(format!(
            "the bound-vs-achieved gap exceeds ε on {big_gaps_random} random runs — \
             gaps up to ε are expected (Lemma 6.1: ML can lag L by one); larger gaps occur \
             only on runs where the level-1 condition differs structurally from the ML one"
        ));

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_passes() {
        let result = TradeoffBound.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 5);
    }
}
