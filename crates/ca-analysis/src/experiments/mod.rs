//! The experiment suite: every quantitative claim of the paper, executable.
//!
//! The paper is a theory paper with no empirical tables, so the "evaluation"
//! we reproduce is its theorem/claim list (see DESIGN.md §4). Each experiment
//! produces a [`Table`] (the figure/table analogue), a list of headline
//! findings comparing paper vs. measured, and a pass/fail verdict for the
//! paper-shape checks (who wins, what bounds hold, where crossovers fall).
//!
//! | id  | claim |
//! |-----|-------|
//! | E1  | `U_s(A) = 1/(N-1) ≈ 1/N` (§3) |
//! | E2  | `L(A, R_good) = 1`; one dead mid-chain packet ⟹ `L = 0` (§3) |
//! | E3  | `L(F,R) ≤ ε·L(R)` for F = S on structured + random runs (Thm 5.4) |
//! | E4  | `U_s(S) ≤ ε`, and the bound is tight (Thm 6.7) |
//! | E5  | `L(S,R) = min(1, ε·ML(R))` — the liveness curve (Thm 6.8) |
//! | E6  | `L−1 ≤ ML ≤ L`, cross-process ML spread ≤ 1 (Lemmas 6.1/6.2) |
//! | E7  | `count_i^r = ML_i^r(R)` (Lemma 6.4) |
//! | E8  | second lower bound machinery: tree run, `R₁`, optimality (§7/A) |
//! | E9  | liveness 1 with `U ≤ 1/t` needs `N ≥ t` rounds (§8's 1000-round claim) |
//! | E10 | weak adversary: `L/U ≫ N` (§8) |
//! | E11 | level growth by topology — the capacity `L(R)` that Thm 5.4 prices |
//! | E12 | causal independence ⟹ probabilistic independence (Lemma A.2) |

use crate::report::Table;
use serde::{Deserialize, Serialize};
use std::fmt;

mod e01_protocol_a_unsafety;
mod e02_protocol_a_liveness;
mod e03_tradeoff_bound;
mod e04_protocol_s_unsafety;
mod e05_liveness_curve;
mod e06_level_lemmas;
mod e07_count_tracks_ml;
mod e08_second_lower_bound;
mod e09_round_crossover;
mod e10_weak_adversary;
mod e11_topology_levels;
mod e12_causal_independence;
mod x02_adaptive_adversary;
mod x03_bandwidth;
mod x04_chain_vs_gossip;
mod x05_eager_dichotomy;
mod x06_exact_curve;
mod x07_sweep_frontier;

pub use e01_protocol_a_unsafety::ProtocolAUnsafety;
pub use e02_protocol_a_liveness::ProtocolALiveness;
pub use e03_tradeoff_bound::TradeoffBound;
pub use e04_protocol_s_unsafety::ProtocolSUnsafety;
pub use e05_liveness_curve::LivenessCurve;
pub use e06_level_lemmas::LevelLemmas;
pub use e07_count_tracks_ml::CountTracksMl;
pub use e08_second_lower_bound::SecondLowerBound;
pub use e09_round_crossover::RoundCrossover;
pub use e10_weak_adversary::WeakAdversary;
pub use e11_topology_levels::TopologyLevels;
pub use e12_causal_independence::CausalIndependence;
pub use x02_adaptive_adversary::AdaptiveAdversaryExperiment;
pub use x03_bandwidth::BandwidthAblation;
pub use x04_chain_vs_gossip::ChainVsGossip;
pub use x05_eager_dichotomy::EagerDichotomy;
pub use x06_exact_curve::ExactCurve;
pub use x07_sweep_frontier::SweepFrontier;

/// How big to run an experiment.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scale {
    /// Monte Carlo trials per estimated probability.
    pub trials: u64,
    /// Base seed (experiments are deterministic functions of it).
    pub seed: u64,
}

impl Scale {
    /// CI-friendly scale (seconds).
    pub fn quick() -> Self {
        Scale {
            trials: 2_000,
            seed: 0xCA11,
        }
    }

    /// Paper-grade scale (tens of seconds).
    pub fn full() -> Self {
        Scale {
            trials: 40_000,
            seed: 0xCA11,
        }
    }
}

/// The output of one experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Experiment id (`"E1"`, …).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// The regenerated table (the paper's figure/table analogue).
    pub table: Table,
    /// Headline paper-vs-measured findings.
    pub findings: Vec<String>,
    /// Whether every paper-shape check held.
    pub passed: bool,
}

impl fmt::Display for ExperimentResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {} — {}", self.id, self.title)?;
        writeln!(f)?;
        writeln!(f, "{}", self.table)?;
        for finding in &self.findings {
            writeln!(f, "* {finding}")?;
        }
        writeln!(f, "verdict: {}", if self.passed { "PASS" } else { "FAIL" })
    }
}

/// An executable experiment.
pub trait Experiment: Sync {
    /// Stable id (`"E1"` …).
    fn id(&self) -> &'static str;
    /// One-line title.
    fn title(&self) -> &'static str;
    /// Runs the experiment at the given scale.
    fn run(&self, scale: Scale) -> ExperimentResult;

    /// Runs the experiment inside an `expt.experiment` observability span,
    /// so profiles attribute engine counters (trials, transitions, sampled
    /// runs…) experiment by experiment. Identical results to
    /// [`Experiment::run`]; with observability compiled out it *is*
    /// [`Experiment::run`].
    fn run_observed(&self, scale: Scale) -> ExperimentResult {
        let obs = ca_obs::Metrics::new();
        let result = {
            let _span = obs.span(ca_obs::SpanId::ExptExperiment);
            self.run(scale)
        };
        obs.flush();
        result
    }
}

/// All experiments, in order: the paper suite E1–E12 plus the extension /
/// ablation experiments X2 (adaptive adversary), X3 (bandwidth), X4
/// (chain vs gossip), X5 (eager dichotomy), X6 (the exact §8 curve via
/// the level-vector DP), and X7 (big-graph topology × weak-adversary
/// frontiers). X1 (the asynchronous model) lives in the `ca-async` crate,
/// which this crate cannot depend on; the `expt` runner appends it.
pub fn all_experiments() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(ProtocolAUnsafety),
        Box::new(ProtocolALiveness),
        Box::new(TradeoffBound),
        Box::new(ProtocolSUnsafety),
        Box::new(LivenessCurve),
        Box::new(LevelLemmas),
        Box::new(CountTracksMl),
        Box::new(SecondLowerBound),
        Box::new(RoundCrossover),
        Box::new(WeakAdversary),
        Box::new(TopologyLevels),
        Box::new(CausalIndependence),
        Box::new(AdaptiveAdversaryExperiment),
        Box::new(BandwidthAblation),
        Box::new(ChainVsGossip),
        Box::new(EagerDichotomy),
        Box::new(ExactCurve),
        Box::new(SweepFrontier),
    ]
}

/// Runs every experiment in the registry across `workers` threads
/// (0 = available parallelism), returning results in registry order.
///
/// Each experiment is an independent, seed-deterministic function of
/// `scale`, so results are identical to running [`all_experiments`] serially
/// — [`ca_sim::chaos::parallel_map`] assigns the output slot by registry
/// index, whatever worker computes it. This is the entry point the
/// `paper_claims` suite and `ca bench` use to exploit all cores.
pub fn run_all(scale: Scale, workers: usize) -> Vec<ExperimentResult> {
    let experiments = all_experiments();
    ca_sim::chaos::parallel_map(experiments.len(), workers, |k| {
        experiments[k].run_observed(scale)
    })
}

/// Looks up an experiment by id (case-insensitive).
pub fn experiment_by_id(id: &str) -> Option<Box<dyn Experiment>> {
    all_experiments()
        .into_iter()
        .find(|e| e.id().eq_ignore_ascii_case(id))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let all = all_experiments();
        assert_eq!(all.len(), 18);
        let mut ids: Vec<_> = all.iter().map(|e| e.id()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 18, "duplicate experiment ids");
    }

    #[test]
    fn lookup_by_id() {
        assert!(experiment_by_id("e4").is_some());
        assert!(experiment_by_id("E12").is_some());
        assert!(experiment_by_id("E99").is_none());
    }

    #[test]
    fn scales() {
        assert!(Scale::quick().trials < Scale::full().trials);
        assert_eq!(Scale::quick().seed, Scale::full().seed);
    }
}
