//! E12 — causal independence implies probabilistic independence
//! (Lemma A.2), and its safety consequence (Lemma A.3).
//!
//! Two processes are *causally independent* in a run if no process's round-0
//! state flows to both. Because tapes are private and independent, the
//! decisions of causally independent processes are independent random
//! variables — the bridge between causality and probability that powers the
//! second lower bound. We measure joint attack rates on constructed runs and
//! compare with the product of marginals; a causally *dependent* control pair
//! shows the correlation reappearing.

use super::{Experiment, ExperimentResult, Scale};
use crate::report::{fmt_f64, Table};
use crate::runs::isolated_pair_run;
use ca_core::exec::execute;
use ca_core::flow::FlowGraph;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::protocol::Protocol;
use ca_core::run::Run;
use ca_core::tape::TapeSet;
use ca_protocols::{CombineRule, ProtocolS, Repeat};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// E12: Lemma A.2 measured.
#[derive(Clone, Copy, Debug, Default)]
pub struct CausalIndependence;

/// Samples joint/marginal attack rates for a pair on a fixed run.
fn pair_rates<P: Protocol>(
    proto: &P,
    graph: &Graph,
    run: &Run,
    a: ProcessId,
    b: ProcessId,
    trials: u64,
    seed: u64,
) -> (f64, f64, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (mut ca, mut cb, mut cab) = (0u64, 0u64, 0u64);
    for _ in 0..trials {
        let tapes = TapeSet::random(&mut rng, graph.len(), proto.tape_bits().max(1));
        let ex = execute(proto, graph, run, &tapes);
        let (da, db) = (ex.local(a).output, ex.local(b).output);
        ca += u64::from(da);
        cb += u64::from(db);
        cab += u64::from(da && db);
    }
    (
        ca as f64 / trials as f64,
        cb as f64 / trials as f64,
        cab as f64 / trials as f64,
    )
}

impl Experiment for CausalIndependence {
    fn id(&self) -> &'static str {
        "E12"
    }

    fn title(&self) -> &'static str {
        "Causal independence ⟹ probabilistic independence (Lemma A.2)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let mut table = Table::new([
            "run / pair",
            "causally independent?",
            "Pr[D_a]",
            "Pr[D_b]",
            "Pr[D_a ∧ D_b]",
            "Pr[D_a]·Pr[D_b]",
        ]);
        let mut passed = true;
        let mut findings = Vec::new();
        let trials = scale.trials.max(2_000);

        // To give *both* processes of the pair nonzero attack probability
        // under causal independence we need per-process randomness; Protocol
        // S concentrates all randomness at the leader, so use two independent
        // copies of it with leaders at either end via the Repeat combinator —
        // decisions still depend only on private tapes and received messages,
        // which is all Lemma A.2 needs. Simpler and faithful: compare the
        // *leader* (whose decision is random) against a cut-off process b on
        // a run where Pr[D_b] = 0 (Lemma A.3's regime), then a dependent
        // control pair where both probabilities are driven by the same rfire.
        // ε = 1/8 with N = 4 keeps ML(R) = 4..5 below saturation, so the
        // control pairs' decisions stay genuinely random (marginals ≈ 1/2).
        let graph = Graph::complete(4).expect("graph");
        let n = 4u32;
        let proto = ProtocolS::new(0.125);

        // Independent pair: nothing is delivered to P1 or P2.
        let run = isolated_pair_run(&graph, n, ProcessId::new(1), ProcessId::new(2));
        let flow = FlowGraph::new(&run);
        let indep = flow.causally_independent(ProcessId::new(1), ProcessId::new(2));
        passed &= indep;
        let (pa, pb, pab) = pair_rates(
            &proto,
            &graph,
            &run,
            ProcessId::new(1),
            ProcessId::new(2),
            trials,
            scale.seed ^ 0xE12,
        );
        // Lemma A.3's regime: both are cut off from the leader, so neither
        // can attack — joint = product = 0.
        passed &= pa == 0.0 && pb == 0.0 && pab == 0.0;
        table.push_row([
            "isolated pair (P1,P2), K4".to_owned(),
            format!("{indep}"),
            fmt_f64(pa),
            fmt_f64(pb),
            fmt_f64(pab),
            fmt_f64(pa * pb),
        ]);

        // Independent pair with genuinely random decisions: two copies of S
        // (independent rfires) with the ANY rule; pair = (leader, leader) of
        // the two copies is the same process... so instead make the pair's
        // randomness private: each copy's rfire lives on P0's tape, but the
        // *decisions of P1 and P2* after hearing nothing are deterministic 0.
        // The informative independent case is leader-vs-isolated on R with
        // only the leader's own input: Pr[D_leader] = ε·ML_leader, the
        // isolated process never attacks.
        let mut solo = Run::good(&graph, n);
        let slots: Vec<_> = solo.messages().collect();
        for s in slots {
            if s.to == ProcessId::new(3) || s.from == ProcessId::new(3) {
                solo.remove_message(s.from, s.to, s.round);
            }
        }
        let flow = FlowGraph::new(&solo);
        let indep03 = flow.causally_independent(ProcessId::new(0), ProcessId::new(3));
        passed &= indep03;
        let (pa, pb, pab) = pair_rates(
            &proto,
            &graph,
            &solo,
            ProcessId::new(0),
            ProcessId::new(3),
            trials,
            scale.seed ^ 0xE121,
        );
        passed &= pb == 0.0 && pab == 0.0 && pa > 0.0;
        passed &= (pab - pa * pb).abs() < 0.02;
        table.push_row([
            "P3 fully isolated, K4".to_owned(),
            format!("{indep03}"),
            fmt_f64(pa),
            fmt_f64(pb),
            fmt_f64(pab),
            fmt_f64(pa * pb),
        ]);

        // Dependent control: on the good run, P1 and P2 decisions are both
        // driven by the same rfire — strongly correlated, joint ≫ product
        // would fail only if independent; here joint ≈ min of marginals.
        let good = Run::good(&graph, n);
        let flow = FlowGraph::new(&good);
        let dep = flow.causally_independent(ProcessId::new(1), ProcessId::new(2));
        passed &= !dep;
        let (pa, pb, pab) = pair_rates(
            &proto,
            &graph,
            &good,
            ProcessId::new(1),
            ProcessId::new(2),
            trials,
            scale.seed ^ 0xE122,
        );
        // Correlation check: joint should exceed product by a clear margin.
        passed &= pab > pa * pb + 0.05;
        table.push_row([
            "good run (control), K4".to_owned(),
            format!("{dep}"),
            fmt_f64(pa),
            fmt_f64(pb),
            fmt_f64(pab),
            fmt_f64(pa * pb),
        ]);

        // A Repeat-based dependent example exercising multi-copy decisions.
        let rep = Repeat::new(ProtocolS::new(0.125), 2, CombineRule::Any);
        let (pa, pb, pab) = pair_rates(
            &rep,
            &graph,
            &good,
            ProcessId::new(1),
            ProcessId::new(2),
            trials,
            scale.seed ^ 0xE123,
        );
        passed &= pab > pa * pb + 0.05;
        table.push_row([
            "good run, 2×S ANY rule (control)".to_owned(),
            "false".to_owned(),
            fmt_f64(pa),
            fmt_f64(pb),
            fmt_f64(pab),
            fmt_f64(pa * pb),
        ]);

        findings.push(
            "causally independent pairs show exactly independent decisions (here: the isolated \
             process can never attack, so joint = product = 0 — Lemma A.3's safety consequence)"
                .to_owned(),
        );
        findings.push(
            "causally connected control pairs are strongly correlated (joint ≫ product): the \
             correlation is carried entirely by information flow, as Lemma A.2 asserts"
                .to_owned(),
        );

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_passes() {
        let result = CausalIndependence.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 4);
    }
}
