//! Observability for the coordinated-attack engine: spans, counters, and
//! log2-bucketed histograms.
//!
//! The engine crates (`ca-core`, `ca-sim`, `ca-async`, `ca-analysis`) are
//! instrumented against this crate's [`Metrics`] handle. The design rules,
//! in order of importance:
//!
//! 1. **The disabled path compiles to nothing.** Without the `enabled`
//!    cargo feature (each engine crate forwards it as its own `obs`
//!    feature), `Metrics` is a zero-sized type and every instrumentation
//!    call is an empty `#[inline(always)]` function — no clocks, no
//!    atomics, no branches survive optimization.
//! 2. **No locks, no `dyn` on the fast path.** A `Metrics` value is a
//!    per-worker struct of `Cell`s, mirroring the one-RNG-per-worker scheme
//!    of the Monte Carlo engine: each worker owns one and merges it into
//!    the process-wide [`Snapshot`] sink exactly once, at join
//!    ([`Metrics::flush`]). The only lock in the crate guards that merge.
//! 3. **Static registry.** Every metric is a compile-time enum variant
//!    ([`CounterId`], [`HistId`], [`SpanId`]) so recording is an array
//!    index and reports have a fixed, byte-stable order.
//!
//! # Stability contract
//!
//! Reports built from a [`Snapshot`] distinguish two kinds of values:
//!
//! * **stable** — counters, histogram contents of value histograms, and
//!   span/histogram *counts*: deterministic functions of the workload's
//!   `(scale, seed)`, identical whatever the thread count, because every
//!   recorded event is a per-trial (or per-schedule) fact and merging is
//!   commutative. `ca profile` pins these byte-for-byte.
//! * **timing** — span `total_ns` and the contents of time histograms
//!   ([`HistId::is_time_ns`]): machine- and run-dependent, suppressed
//!   unless explicitly requested (`ca profile --timed`), exactly like
//!   `ca bench --stable` zeroes its clock readings.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use std::sync::Mutex;

/// Whether the instrumentation layer was compiled in.
///
/// `false` means every [`Metrics`] operation is a no-op and snapshots are
/// permanently zero; front ends use this to refuse to emit empty profiles.
pub const ENABLED: bool = cfg!(feature = "enabled");

// ---------------------------------------------------------------------------
// Metric registry
// ---------------------------------------------------------------------------

/// Monotonic counters. All counters are **stable**: exact across thread
/// counts for a fixed workload seed (see the crate docs).
///
/// Units are events unless the name says otherwise (`bits`, `slots`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum CounterId {
    /// Protocol state transitions executed (`δ_i` applications), one per
    /// process per round per execution.
    ExecTransitions,
    /// Messages delivered into inboxes by the execution engine.
    ExecMessagesDelivered,
    /// Messages destroyed by the adversary: potential slots
    /// (directed edges × rounds) minus delivered, summed per execution.
    ExecMessagesDestroyed,
    /// Random-tape bits consumed across all processes of an execution.
    ExecTapeBitsConsumed,
    /// Adversary runs sampled (`RunSampler::sample_into` calls observed by
    /// the Monte Carlo engine).
    RunSamples,
    /// Delivery slots flipped (messages destroyed) by adversary samplers
    /// while producing a run.
    RunSlotsFlipped,
    /// Slots that landed in the run's sorted overflow vector instead of the
    /// bit matrix, summed over sampled runs (0 on the fast path).
    RunOverflowSlots,
    /// Monte Carlo trials completed.
    SimTrials,
    /// Trials that took the fixed-run fast path (no sampling, hoisted
    /// `ML(R)`).
    SimFixedRunTrials,
    /// In-place tape refills (`TapeSet::fill_random`), one per trial.
    SimTapeRefills,
    /// 64-trial lane groups executed by the bit-sliced Monte Carlo path
    /// (`simulate_sliced`), one per `SlicedEngine::run_group` pass.
    SimSlicedGroups,
    /// Chaos schedules evaluated against the oracle suite (campaign
    /// sampling plus every shrink re-evaluation).
    ChaosSchedules,
    /// Chaos schedules the engine rejected with a typed error instead of
    /// running (graceful degradation, not violations).
    ChaosSchedulesRejected,
    /// `DropLink` fault primitives injected.
    ChaosFaultsDropLink,
    /// `DropProb` fault primitives injected.
    ChaosFaultsDropProb,
    /// `DelayJitter` fault primitives injected.
    ChaosFaultsDelayJitter,
    /// `Duplicate` fault primitives injected.
    ChaosFaultsDuplicate,
    /// `Reorder` fault primitives injected.
    ChaosFaultsReorder,
    /// `BurstLoss` fault primitives injected.
    ChaosFaultsBurstLoss,
    /// `CrashWindow` fault primitives injected.
    ChaosFaultsCrashWindow,
    /// `Partition` fault primitives injected.
    ChaosFaultsPartition,
    /// `ReplayRun` fault primitives injected.
    ChaosFaultsReplayRun,
    /// Individual oracle failures across evaluated schedules (0 while the
    /// paper's theorems hold).
    ChaosOracleFailures,
    /// Candidate fault lists evaluated by `ddmin` while shrinking the worst
    /// schedule.
    ChaosShrinkEvals,
    /// Chaos schedules whose evaluation panicked and was converted into a
    /// typed `failed` entry by the campaign's panic boundary.
    ChaosSchedulesFailed,
    /// Hunt candidates evaluated (every generation, every rung).
    HuntCandidates,
    /// Hunt candidates whose induced run was a vacuous adversary
    /// (`ML(R) = 0`): ranked last, never elite.
    HuntCandidatesInfeasible,
    /// Hunt candidates whose evaluation panicked and became a typed
    /// `Failed` entry.
    HuntCandidatesFailed,
    /// Monte Carlo trials spent across all hunt candidates (the bandit
    /// allocator's actual spend).
    HuntMcTrials,
    /// Service instances that arrived at a shard (admitted or shed).
    ServeInstances,
    /// Instances shed by per-shard back-pressure (admission queue over its
    /// bound) — never executed, always counted.
    ServeShed,
    /// Admitted instances whose sojourn (queue wait + service) exceeded the
    /// per-instance deadline budget.
    ServeTimedOut,
    /// Admitted instances whose gossip never completed within the retry
    /// allowance (degraded verdict: some process never heard `rfire`).
    ServeUndecided,
    /// Instances that ended in a typed engine error, plus instances drained
    /// from a shard the supervisor gave up on.
    ServeFailed,
    /// Extra execution attempts beyond each instance's first.
    ServeRetries,
    /// Shard restarts performed by the supervisor after a panic.
    ServeShardRestarts,
    /// Level-DP states first reached: new `(structural class, base)` pairs
    /// discovered by the exact sweep, plus canonical states visited by the
    /// per-run path.
    ExactDpStates,
    /// Level-DP transition-kernel cache hits (a structural class whose
    /// per-pattern successors were already memoized).
    ExactDpKernelHits,
    /// Level-DP transition-kernel cache misses (kernels built by running the
    /// real counting automaton over every delivery pattern).
    ExactDpKernelMisses,
    /// Level-DP clip-equivalence collapses: successor states folded into an
    /// already-represented equivalence class (kernel dedup plus base-count
    /// clipping at the probability-saturation ceiling).
    ExactDpCollapses,
    /// Exact evaluations that fell back from the level-DP to the scalar
    /// oracle (ineligible instance, or a cross-check divergence).
    ExactDpFallbacks,
}

impl CounterId {
    /// Number of counters in the registry.
    pub const COUNT: usize = 41;

    /// Every counter, in canonical registry (report) order.
    pub const ALL: [CounterId; Self::COUNT] = [
        CounterId::ExecTransitions,
        CounterId::ExecMessagesDelivered,
        CounterId::ExecMessagesDestroyed,
        CounterId::ExecTapeBitsConsumed,
        CounterId::RunSamples,
        CounterId::RunSlotsFlipped,
        CounterId::RunOverflowSlots,
        CounterId::SimTrials,
        CounterId::SimFixedRunTrials,
        CounterId::SimTapeRefills,
        CounterId::SimSlicedGroups,
        CounterId::ChaosSchedules,
        CounterId::ChaosSchedulesRejected,
        CounterId::ChaosFaultsDropLink,
        CounterId::ChaosFaultsDropProb,
        CounterId::ChaosFaultsDelayJitter,
        CounterId::ChaosFaultsDuplicate,
        CounterId::ChaosFaultsReorder,
        CounterId::ChaosFaultsBurstLoss,
        CounterId::ChaosFaultsCrashWindow,
        CounterId::ChaosFaultsPartition,
        CounterId::ChaosFaultsReplayRun,
        CounterId::ChaosOracleFailures,
        CounterId::ChaosShrinkEvals,
        CounterId::ChaosSchedulesFailed,
        CounterId::HuntCandidates,
        CounterId::HuntCandidatesInfeasible,
        CounterId::HuntCandidatesFailed,
        CounterId::HuntMcTrials,
        CounterId::ServeInstances,
        CounterId::ServeShed,
        CounterId::ServeTimedOut,
        CounterId::ServeUndecided,
        CounterId::ServeFailed,
        CounterId::ServeRetries,
        CounterId::ServeShardRestarts,
        CounterId::ExactDpStates,
        CounterId::ExactDpKernelHits,
        CounterId::ExactDpKernelMisses,
        CounterId::ExactDpCollapses,
        CounterId::ExactDpFallbacks,
    ];

    /// The counter's stable report name (`layer.metric`).
    pub fn name(self) -> &'static str {
        match self {
            CounterId::ExecTransitions => "exec.transitions",
            CounterId::ExecMessagesDelivered => "exec.messages_delivered",
            CounterId::ExecMessagesDestroyed => "exec.messages_destroyed",
            CounterId::ExecTapeBitsConsumed => "exec.tape_bits_consumed",
            CounterId::RunSamples => "run.samples",
            CounterId::RunSlotsFlipped => "run.slots_flipped",
            CounterId::RunOverflowSlots => "run.overflow_slots",
            CounterId::SimTrials => "sim.trials",
            CounterId::SimFixedRunTrials => "sim.fixed_run_trials",
            CounterId::SimTapeRefills => "sim.tape_refills",
            CounterId::SimSlicedGroups => "sim.sliced_groups",
            CounterId::ChaosSchedules => "chaos.schedules",
            CounterId::ChaosSchedulesRejected => "chaos.schedules_rejected",
            CounterId::ChaosFaultsDropLink => "chaos.faults.drop_link",
            CounterId::ChaosFaultsDropProb => "chaos.faults.drop_prob",
            CounterId::ChaosFaultsDelayJitter => "chaos.faults.delay_jitter",
            CounterId::ChaosFaultsDuplicate => "chaos.faults.duplicate",
            CounterId::ChaosFaultsReorder => "chaos.faults.reorder",
            CounterId::ChaosFaultsBurstLoss => "chaos.faults.burst_loss",
            CounterId::ChaosFaultsCrashWindow => "chaos.faults.crash_window",
            CounterId::ChaosFaultsPartition => "chaos.faults.partition",
            CounterId::ChaosFaultsReplayRun => "chaos.faults.replay_run",
            CounterId::ChaosOracleFailures => "chaos.oracle_failures",
            CounterId::ChaosShrinkEvals => "chaos.shrink_evals",
            CounterId::ChaosSchedulesFailed => "chaos.schedules_failed",
            CounterId::HuntCandidates => "hunt.candidates",
            CounterId::HuntCandidatesInfeasible => "hunt.candidates_infeasible",
            CounterId::HuntCandidatesFailed => "hunt.candidates_failed",
            CounterId::HuntMcTrials => "hunt.mc_trials",
            CounterId::ServeInstances => "serve.instances",
            CounterId::ServeShed => "serve.shed",
            CounterId::ServeTimedOut => "serve.timed_out",
            CounterId::ServeUndecided => "serve.undecided",
            CounterId::ServeFailed => "serve.failed",
            CounterId::ServeRetries => "serve.retries",
            CounterId::ServeShardRestarts => "serve.shard_restarts",
            CounterId::ExactDpStates => "exact.dp.states",
            CounterId::ExactDpKernelHits => "exact.dp.kernel_hits",
            CounterId::ExactDpKernelMisses => "exact.dp.kernel_misses",
            CounterId::ExactDpCollapses => "exact.dp.collapses",
            CounterId::ExactDpFallbacks => "exact.dp.fallbacks",
        }
    }
}

/// Log2-bucketed histograms. Value histograms are **stable**; time
/// histograms ([`HistId::is_time_ns`]) carry machine-dependent nanosecond
/// values and only their sample `count` is stable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum HistId {
    /// Wall time of one Monte Carlo trial, nanoseconds.
    SimTrialNs,
    /// Modified level `ML(R)` of the run each trial executed.
    SimTrialMl,
    /// Messages delivered per execution.
    ExecDeliveredPerTrial,
    /// Wall time of one schedule's oracle checks, nanoseconds.
    ChaosOracleNs,
    /// Fault primitives per evaluated chaos schedule.
    ChaosFaultsPerSchedule,
    /// Decision latency (virtual ticks to quiesce) of on-time decided
    /// service instances.
    ServeDecisionTicks,
    /// Virtual ticks an admitted service instance waited in its shard's
    /// queue before execution started.
    ServeQueueWaitTicks,
    /// Monte Carlo trials allocated to one hunt candidate across all of a
    /// generation's rungs (the successive-halving allocation profile).
    HuntTrialsPerCandidate,
}

impl HistId {
    /// Number of histograms in the registry.
    pub const COUNT: usize = 8;

    /// Every histogram, in canonical registry order.
    pub const ALL: [HistId; Self::COUNT] = [
        HistId::SimTrialNs,
        HistId::SimTrialMl,
        HistId::ExecDeliveredPerTrial,
        HistId::ChaosOracleNs,
        HistId::ChaosFaultsPerSchedule,
        HistId::ServeDecisionTicks,
        HistId::ServeQueueWaitTicks,
        HistId::HuntTrialsPerCandidate,
    ];

    /// The histogram's stable report name.
    pub fn name(self) -> &'static str {
        match self {
            HistId::SimTrialNs => "sim.trial_ns",
            HistId::SimTrialMl => "sim.trial_ml",
            HistId::ExecDeliveredPerTrial => "exec.delivered_per_trial",
            HistId::ChaosOracleNs => "chaos.oracle_check_ns",
            HistId::ChaosFaultsPerSchedule => "chaos.faults_per_schedule",
            HistId::ServeDecisionTicks => "serve.decision_ticks",
            HistId::ServeQueueWaitTicks => "serve.queue_wait_ticks",
            HistId::HuntTrialsPerCandidate => "hunt.trials_per_candidate",
        }
    }

    /// Whether the recorded values are wall-clock nanoseconds (suppressed
    /// in stable reports; only the sample count is deterministic).
    pub fn is_time_ns(self) -> bool {
        matches!(self, HistId::SimTrialNs | HistId::ChaosOracleNs)
    }
}

/// Span timers. Spans nest at fixed positions ([`SpanId::parent`]) so the
/// merged tree is byte-stable; a span's `count` is stable, its `total_ns`
/// is timing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(usize)]
pub enum SpanId {
    /// One experiment run (`Experiment::run_observed`).
    ExptExperiment,
    /// One `simulate` call (all trials, all workers).
    SimSimulate,
    /// One Monte Carlo trial.
    SimTrial,
    /// Adversary run sampling within a trial.
    RunSample,
    /// Protocol execution (`execute_outputs_observed`) within a trial.
    ExecExecute,
    /// Outcome classification + `ML(R)` bookkeeping within a trial.
    SimVerdict,
    /// One chaos campaign (`run_campaign`).
    ChaosCampaign,
    /// One schedule evaluation against the oracle suite.
    ChaosEvaluate,
    /// The exact/structural oracle block of a schedule evaluation.
    ChaosOracles,
    /// The Monte Carlo cross-check of a schedule evaluation.
    ChaosMcCrossCheck,
    /// Delta-debug shrinking of the worst schedule.
    ChaosShrink,
    /// One service run (`run_serve`): load generation to aggregate roll-up.
    ServeRun,
    /// One shard execution attempt within a service run.
    ServeShard,
    /// One instance execution attempt within a shard.
    ServeInstance,
    /// One adversary hunt (`run_hunt`): every generation, plus the final
    /// shrink and the online-adversary probe.
    HuntRun,
    /// One hunt generation: sampling, all evaluation rungs, elite refit.
    HuntGeneration,
    /// One candidate evaluation rung (induced run, oracles, Monte Carlo).
    HuntEvaluate,
    /// Delta-debug shrinking of the hunt's best schedule.
    HuntShrink,
    /// One exact level-DP worst-case sweep (`level_dp::worst_case`): every
    /// round's frontier advance over all delivery patterns and input sets.
    ExactDpSweep,
    /// Transition-kernel builds within a sweep (cache misses only).
    ExactDpKernel,
    /// Frontier extremes evaluation (curve checkpoints + final report).
    ExactDpExtremes,
}

impl SpanId {
    /// Number of spans in the registry.
    pub const COUNT: usize = 21;

    /// Every span, in canonical registry order (parents before children).
    pub const ALL: [SpanId; Self::COUNT] = [
        SpanId::ExptExperiment,
        SpanId::SimSimulate,
        SpanId::SimTrial,
        SpanId::RunSample,
        SpanId::ExecExecute,
        SpanId::SimVerdict,
        SpanId::ChaosCampaign,
        SpanId::ChaosEvaluate,
        SpanId::ChaosOracles,
        SpanId::ChaosMcCrossCheck,
        SpanId::ChaosShrink,
        SpanId::ServeRun,
        SpanId::ServeShard,
        SpanId::ServeInstance,
        SpanId::HuntRun,
        SpanId::HuntGeneration,
        SpanId::HuntEvaluate,
        SpanId::HuntShrink,
        SpanId::ExactDpSweep,
        SpanId::ExactDpKernel,
        SpanId::ExactDpExtremes,
    ];

    /// The span's stable report name.
    pub fn name(self) -> &'static str {
        match self {
            SpanId::ExptExperiment => "expt.experiment",
            SpanId::SimSimulate => "sim.simulate",
            SpanId::SimTrial => "sim.trial",
            SpanId::RunSample => "run.sample",
            SpanId::ExecExecute => "exec.execute",
            SpanId::SimVerdict => "sim.verdict",
            SpanId::ChaosCampaign => "chaos.campaign",
            SpanId::ChaosEvaluate => "chaos.evaluate",
            SpanId::ChaosOracles => "chaos.oracles",
            SpanId::ChaosMcCrossCheck => "chaos.mc_cross_check",
            SpanId::ChaosShrink => "chaos.shrink",
            SpanId::ServeRun => "serve.run",
            SpanId::ServeShard => "serve.shard",
            SpanId::ServeInstance => "serve.instance",
            SpanId::HuntRun => "hunt.run",
            SpanId::HuntGeneration => "hunt.generation",
            SpanId::HuntEvaluate => "hunt.evaluate",
            SpanId::HuntShrink => "hunt.shrink",
            SpanId::ExactDpSweep => "exact.dp.sweep",
            SpanId::ExactDpKernel => "exact.dp.kernel",
            SpanId::ExactDpExtremes => "exact.dp.extremes",
        }
    }

    /// The span's static parent in the rendered tree, if any.
    pub fn parent(self) -> Option<SpanId> {
        match self {
            SpanId::ExptExperiment
            | SpanId::SimSimulate
            | SpanId::ChaosCampaign
            | SpanId::ServeRun
            | SpanId::HuntRun
            | SpanId::ExactDpSweep => None,
            SpanId::SimTrial => Some(SpanId::SimSimulate),
            SpanId::RunSample | SpanId::ExecExecute | SpanId::SimVerdict => Some(SpanId::SimTrial),
            SpanId::ChaosEvaluate | SpanId::ChaosShrink => Some(SpanId::ChaosCampaign),
            SpanId::ChaosOracles | SpanId::ChaosMcCrossCheck => Some(SpanId::ChaosEvaluate),
            SpanId::ServeShard => Some(SpanId::ServeRun),
            SpanId::ServeInstance => Some(SpanId::ServeShard),
            SpanId::HuntGeneration | SpanId::HuntShrink => Some(SpanId::HuntRun),
            SpanId::HuntEvaluate => Some(SpanId::HuntGeneration),
            SpanId::ExactDpKernel | SpanId::ExactDpExtremes => Some(SpanId::ExactDpSweep),
        }
    }

    /// A histogram fed with this span's per-entry durations, if any.
    pub fn linked_hist(self) -> Option<HistId> {
        match self {
            SpanId::SimTrial => Some(HistId::SimTrialNs),
            SpanId::ChaosOracles => Some(HistId::ChaosOracleNs),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot (always compiled)
// ---------------------------------------------------------------------------

/// Number of log2 buckets: bucket `b` holds values with bit length `b`
/// (bucket 0 is the exact value 0, bucket 64 covers `≥ 2^63`).
pub const BUCKETS: usize = 65;

/// The log2 bucket index of a value: its bit length.
#[inline]
pub fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Aggregated data of one histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistData {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Minimum recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Maximum recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket sample counts (see [`bucket_of`]).
    pub buckets: [u64; BUCKETS],
}

impl HistData {
    const ZERO: HistData = HistData {
        count: 0,
        sum: 0,
        min: u64::MAX,
        max: 0,
        buckets: [0; BUCKETS],
    };

    fn merge(&mut self, other: &HistData) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }
}

/// Aggregated data of one span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanData {
    /// Number of completed span entries (stable).
    pub count: u64,
    /// Total wall time inside the span, nanoseconds (timing).
    pub total_ns: u64,
}

impl SpanData {
    const ZERO: SpanData = SpanData {
        count: 0,
        total_ns: 0,
    };
}

/// A merged, read-only view of everything recorded: what per-worker
/// [`Metrics`] flush into and reports are built from.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    counters: [u64; CounterId::COUNT],
    hists: [HistData; HistId::COUNT],
    spans: [SpanData; SpanId::COUNT],
}

impl Snapshot {
    /// The all-zero snapshot.
    pub const ZERO: Snapshot = Snapshot {
        counters: [0; CounterId::COUNT],
        hists: [HistData::ZERO; HistId::COUNT],
        spans: [SpanData::ZERO; SpanId::COUNT],
    };

    /// An empty snapshot.
    pub fn new() -> Self {
        Snapshot::ZERO
    }

    /// The value of a counter.
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    /// The aggregated data of a histogram.
    pub fn hist(&self, id: HistId) -> &HistData {
        &self.hists[id as usize]
    }

    /// The aggregated data of a span.
    pub fn span(&self, id: SpanId) -> &SpanData {
        &self.spans[id as usize]
    }

    /// Merges another snapshot into this one (commutative, associative —
    /// worker merge order never shows in the result).
    pub fn merge(&mut self, other: &Snapshot) {
        for (a, b) in self.counters.iter_mut().zip(&other.counters) {
            *a += b;
        }
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
        for (a, b) in self.spans.iter_mut().zip(&other.spans) {
            a.count += b.count;
            a.total_ns += b.total_ns;
        }
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.hists.iter().all(|h| h.count == 0)
            && self.spans.iter().all(|s| s.count == 0)
    }
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot::new()
    }
}

// ---------------------------------------------------------------------------
// Global sink (always compiled; never on the fast path)
// ---------------------------------------------------------------------------

static GLOBAL: Mutex<Snapshot> = Mutex::new(Snapshot::ZERO);

/// Zeroes the process-wide sink. Profilers call this before a workload
/// section, then read the section's totals with [`global_snapshot`].
pub fn reset_global() {
    *GLOBAL.lock().expect("observability sink poisoned") = Snapshot::ZERO;
}

/// A copy of the process-wide sink: everything flushed since the last
/// [`reset_global`].
pub fn global_snapshot() -> Snapshot {
    GLOBAL.lock().expect("observability sink poisoned").clone()
}

// ---------------------------------------------------------------------------
// Metrics handle — enabled implementation
// ---------------------------------------------------------------------------

#[cfg(feature = "enabled")]
mod handle {
    use super::*;
    use std::cell::Cell;
    use std::time::Instant;

    struct HistCells {
        count: Cell<u64>,
        sum: Cell<u64>,
        min: Cell<u64>,
        max: Cell<u64>,
        buckets: [Cell<u64>; BUCKETS],
    }

    struct SpanCells {
        count: Cell<u64>,
        total_ns: Cell<u64>,
    }

    /// A per-worker metrics sink: plain `Cell`s, `&self` everywhere, no
    /// locks. Create one per worker, record freely, [`Metrics::flush`] at
    /// join.
    pub struct Metrics {
        counters: [Cell<u64>; CounterId::COUNT],
        hists: [HistCells; HistId::COUNT],
        spans: [SpanCells; SpanId::COUNT],
    }

    impl std::fmt::Debug for Metrics {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Metrics").field("enabled", &true).finish()
        }
    }

    impl Metrics {
        /// A fresh all-zero sink.
        pub fn new() -> Self {
            Metrics {
                counters: std::array::from_fn(|_| Cell::new(0)),
                hists: std::array::from_fn(|_| HistCells {
                    count: Cell::new(0),
                    sum: Cell::new(0),
                    min: Cell::new(u64::MAX),
                    max: Cell::new(0),
                    buckets: std::array::from_fn(|_| Cell::new(0)),
                }),
                spans: std::array::from_fn(|_| SpanCells {
                    count: Cell::new(0),
                    total_ns: Cell::new(0),
                }),
            }
        }

        /// Adds 1 to a counter.
        #[inline]
        pub fn inc(&self, id: CounterId) {
            self.add(id, 1);
        }

        /// Adds `v` to a counter.
        #[inline]
        pub fn add(&self, id: CounterId, v: u64) {
            let c = &self.counters[id as usize];
            c.set(c.get().wrapping_add(v));
        }

        /// Records one histogram sample.
        #[inline]
        pub fn record(&self, id: HistId, v: u64) {
            let h = &self.hists[id as usize];
            h.count.set(h.count.get() + 1);
            h.sum.set(h.sum.get().wrapping_add(v));
            h.min.set(h.min.get().min(v));
            h.max.set(h.max.get().max(v));
            let b = &h.buckets[bucket_of(v)];
            b.set(b.get() + 1);
        }

        /// Opens a span; the guard records the elapsed time (and a sample
        /// in the span's linked histogram, if any) when dropped.
        #[inline]
        pub fn span(&self, id: SpanId) -> SpanGuard<'_> {
            SpanGuard {
                metrics: self,
                id,
                start: Instant::now(),
            }
        }

        /// Merges this sink into the process-wide snapshot and zeroes it,
        /// so a worker can flush exactly once at join without double
        /// counting on reuse.
        pub fn flush(&self) {
            let mut delta = Snapshot::ZERO;
            for (a, b) in delta.counters.iter_mut().zip(&self.counters) {
                *a = b.replace(0);
            }
            for (a, b) in delta.hists.iter_mut().zip(&self.hists) {
                a.count = b.count.replace(0);
                a.sum = b.sum.replace(0);
                a.min = b.min.replace(u64::MAX);
                a.max = b.max.replace(0);
                for (x, y) in a.buckets.iter_mut().zip(&b.buckets) {
                    *x = y.replace(0);
                }
            }
            for (a, b) in delta.spans.iter_mut().zip(&self.spans) {
                a.count = b.count.replace(0);
                a.total_ns = b.total_ns.replace(0);
            }
            GLOBAL
                .lock()
                .expect("observability sink poisoned")
                .merge(&delta);
        }
    }

    impl Default for Metrics {
        fn default() -> Self {
            Metrics::new()
        }
    }

    /// Open-span guard: records on drop.
    pub struct SpanGuard<'a> {
        metrics: &'a Metrics,
        id: SpanId,
        start: Instant,
    }

    impl std::fmt::Debug for SpanGuard<'_> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("SpanGuard").field("id", &self.id).finish()
        }
    }

    impl Drop for SpanGuard<'_> {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            let s = &self.metrics.spans[self.id as usize];
            s.count.set(s.count.get() + 1);
            s.total_ns.set(s.total_ns.get() + ns);
            if let Some(hist) = self.id.linked_hist() {
                self.metrics.record(hist, ns);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics handle — disabled implementation (all no-ops)
// ---------------------------------------------------------------------------

#[cfg(not(feature = "enabled"))]
mod handle {
    use super::*;

    /// Disabled metrics sink: zero-sized, every method an empty inline.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Metrics;

    impl Metrics {
        /// A fresh (zero-sized) sink.
        #[inline(always)]
        pub fn new() -> Self {
            Metrics
        }

        /// No-op.
        #[inline(always)]
        pub fn inc(&self, _id: CounterId) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _id: CounterId, _v: u64) {}

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _id: HistId, _v: u64) {}

        /// No-op; the guard is zero-sized and records nothing.
        #[inline(always)]
        pub fn span(&self, _id: SpanId) -> SpanGuard<'_> {
            SpanGuard {
                _life: std::marker::PhantomData,
            }
        }

        /// No-op.
        #[inline(always)]
        pub fn flush(&self) {}
    }

    /// Disabled span guard: zero-sized, drops silently.
    #[derive(Debug)]
    pub struct SpanGuard<'a> {
        _life: std::marker::PhantomData<&'a ()>,
    }

    // An explicit (empty) Drop keeps callers' `drop(span)` scope ends
    // meaningful to the compiler and lints in both feature configurations.
    impl Drop for SpanGuard<'_> {
        #[inline(always)]
        fn drop(&mut self) {}
    }
}

pub use handle::{Metrics, SpanGuard};

// ---------------------------------------------------------------------------
// Human-readable rendering
// ---------------------------------------------------------------------------

/// Renders a snapshot as a human-readable report: nonzero counters,
/// histogram summaries, and the span tree. With `timed` false, durations
/// and time-histogram values are omitted (they are suppressed in stable
/// reports anyway).
pub fn render(snapshot: &Snapshot, timed: bool) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "counters:");
    for id in CounterId::ALL {
        let v = snapshot.counter(id);
        if v != 0 {
            let _ = writeln!(out, "  {:<26} {v}", id.name());
        }
    }
    let _ = writeln!(out, "histograms:");
    for id in HistId::ALL {
        let h = snapshot.hist(id);
        if h.count == 0 {
            continue;
        }
        if id.is_time_ns() && !timed {
            let _ = writeln!(out, "  {:<26} count={}", id.name(), h.count);
        } else {
            let mean = h.sum as f64 / h.count as f64;
            let _ = writeln!(
                out,
                "  {:<26} count={} mean={mean:.1} min={} max={}",
                id.name(),
                h.count,
                if h.count == 0 { 0 } else { h.min },
                h.max,
            );
        }
    }
    let _ = writeln!(out, "spans:");
    for id in SpanId::ALL {
        if snapshot.span(id).count == 0 {
            continue;
        }
        let mut depth = 0;
        let mut p = id.parent();
        while let Some(parent) = p {
            depth += 1;
            p = parent.parent();
        }
        let s = snapshot.span(id);
        let label = format!("{}{}", "  ".repeat(depth), id.name());
        if timed {
            let _ = writeln!(
                out,
                "  {label:<26} count={:<9} total={:.3} ms",
                s.count,
                s.total_ns as f64 / 1e6
            );
        } else {
            let _ = writeln!(out, "  {label:<26} count={}", s.count);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_is_bit_length() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn registry_names_are_unique_and_ordered() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|c| c.name()).collect();
        names.extend(HistId::ALL.iter().map(|h| h.name()));
        names.extend(SpanId::ALL.iter().map(|s| s.name()));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric names");
        // Registry index matches enum discriminant (reports rely on it).
        for (k, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, k);
        }
        for (k, id) in HistId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, k);
        }
        for (k, id) in SpanId::ALL.iter().enumerate() {
            assert_eq!(*id as usize, k);
        }
    }

    #[test]
    fn span_parents_precede_children_in_registry_order() {
        for id in SpanId::ALL {
            if let Some(parent) = id.parent() {
                assert!(
                    (parent as usize) < (id as usize),
                    "{} must come after its parent {}",
                    id.name(),
                    parent.name()
                );
            }
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn record_flush_and_merge_roundtrip() {
        // One test exercises the whole global path to avoid cross-test
        // interference on the process-wide sink.
        reset_global();
        let m = Metrics::new();
        m.inc(CounterId::SimTrials);
        m.add(CounterId::ExecTransitions, 41);
        m.inc(CounterId::ExecTransitions);
        m.record(HistId::SimTrialMl, 3);
        m.record(HistId::SimTrialMl, 5);
        {
            let _g = m.span(SpanId::SimTrial);
        }
        m.flush();
        // Flushing zeroes the local sink: a second flush adds nothing.
        m.flush();
        let snap = global_snapshot();
        assert_eq!(snap.counter(CounterId::SimTrials), 1);
        assert_eq!(snap.counter(CounterId::ExecTransitions), 42);
        let ml = snap.hist(HistId::SimTrialMl);
        assert_eq!((ml.count, ml.sum, ml.min, ml.max), (2, 8, 3, 5));
        assert_eq!(ml.buckets[bucket_of(3)], 1);
        assert_eq!(ml.buckets[bucket_of(5)], 1);
        let trial = snap.span(SpanId::SimTrial);
        assert_eq!(trial.count, 1);
        // The linked histogram got the span's duration sample.
        assert_eq!(snap.hist(HistId::SimTrialNs).count, 1);

        // Merge is additive.
        let mut doubled = snap.clone();
        doubled.merge(&snap);
        assert_eq!(doubled.counter(CounterId::ExecTransitions), 84);
        assert_eq!(doubled.hist(HistId::SimTrialMl).count, 4);
        assert_eq!(doubled.hist(HistId::SimTrialMl).min, 3);

        reset_global();
        assert!(global_snapshot().is_empty());
    }

    #[cfg(not(feature = "enabled"))]
    #[test]
    fn disabled_handle_is_zero_sized_and_inert() {
        assert_eq!(std::mem::size_of::<Metrics>(), 0);
        let m = Metrics::new();
        m.inc(CounterId::SimTrials);
        m.record(HistId::SimTrialMl, 3);
        {
            let _g = m.span(SpanId::SimTrial);
        }
        m.flush();
        assert!(global_snapshot().is_empty());
        assert!(!ENABLED);
    }

    #[test]
    fn render_shows_nonzero_entries() {
        let mut snap = Snapshot::new();
        snap.counters[CounterId::SimTrials as usize] = 7;
        snap.spans[SpanId::SimTrial as usize] = SpanData {
            count: 7,
            total_ns: 7_000_000,
        };
        let text = render(&snap, true);
        assert!(text.contains("sim.trials"), "{text}");
        assert!(text.contains("sim.trial "), "{text}");
        assert!(text.contains("7.000 ms"), "{text}");
        let stable = render(&snap, false);
        assert!(!stable.contains("total="), "{stable}");
    }
}
