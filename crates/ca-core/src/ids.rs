//! Identifiers for processes, rounds, and nodes.
//!
//! The paper numbers the generals `1..m` and the rounds `-1, 0, 1..N`; the
//! input is modeled as a message from a fictitious environment node `v₀` sent
//! at the end of round `-1` and delivered at the end of round `0`.
//!
//! In code the generals are `ProcessId(0) .. ProcessId(m-1)` (so the paper's
//! "process 1" — the one that chooses `rfire` — is [`ProcessId::LEADER`],
//! i.e. `ProcessId(0)`), and rounds are kept non-negative: round `r` in code
//! is round `r` in the paper, with the environment's send at round `-1`
//! represented implicitly by [`Node::Env`] and its arrival by
//! [`Round::INPUT`].

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a general (a process at a vertex of the communication graph).
///
/// Process ids are dense: a graph over `m` generals uses ids `0..m`.
///
/// # Examples
///
/// ```
/// use ca_core::ids::ProcessId;
/// let p = ProcessId::new(3);
/// assert_eq!(p.index(), 3);
/// assert_eq!(ProcessId::LEADER.index(), 0);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(u32);

impl ProcessId {
    /// The distinguished process that chooses `rfire` in Protocol S
    /// (the paper's "process 1").
    pub const LEADER: ProcessId = ProcessId(0);

    /// Creates a process id from a dense index.
    #[inline]
    pub const fn new(index: u32) -> Self {
        ProcessId(index)
    }

    /// Returns the dense index of this process.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    #[inline]
    pub const fn as_u32(self) -> u32 {
        self.0
    }

    /// Iterates over all process ids `0..m`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ca_core::ids::ProcessId;
    /// let ids: Vec<_> = ProcessId::all(3).map(|p| p.index()).collect();
    /// assert_eq!(ids, vec![0, 1, 2]);
    /// ```
    pub fn all(m: usize) -> impl Iterator<Item = ProcessId> + Clone {
        (0..m as u32).map(ProcessId)
    }
}

impl fmt::Debug for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u32> for ProcessId {
    fn from(v: u32) -> Self {
        ProcessId(v)
    }
}

/// A round number.
///
/// Protocol rounds are `1..=N`; round `0` is the input round (inputs sent by
/// the environment at the paper's round `-1` arrive at the end of round `0`).
///
/// # Examples
///
/// ```
/// use ca_core::ids::Round;
/// let r = Round::new(4);
/// assert_eq!(r.get(), 4);
/// assert_eq!(r.next().get(), 5);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Round(u32);

impl Round {
    /// The input round: inputs from the environment arrive at its end.
    pub const INPUT: Round = Round(0);

    /// Creates a round from its number (`0` = input round, `1..=N` protocol rounds).
    #[inline]
    pub const fn new(r: u32) -> Self {
        Round(r)
    }

    /// Returns the round number.
    #[inline]
    pub const fn get(self) -> u32 {
        self.0
    }

    /// Returns the round number as a `usize` (for indexing).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The next round.
    #[inline]
    pub const fn next(self) -> Round {
        Round(self.0 + 1)
    }

    /// The previous round.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if called on round 0.
    #[inline]
    pub const fn prev(self) -> Round {
        debug_assert!(self.0 > 0, "round 0 has no predecessor");
        Round(self.0 - 1)
    }

    /// Iterates over the protocol rounds `1..=n`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ca_core::ids::Round;
    /// let rs: Vec<u32> = Round::protocol_rounds(3).map(|r| r.get()).collect();
    /// assert_eq!(rs, vec![1, 2, 3]);
    /// ```
    pub fn protocol_rounds(n: u32) -> impl Iterator<Item = Round> + Clone {
        (1..=n).map(Round)
    }
}

impl fmt::Debug for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Round {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "round {}", self.0)
    }
}

impl From<u32> for Round {
    fn from(v: u32) -> Self {
        Round(v)
    }
}

/// A node in the information-flow graph: either a general or the environment `v₀`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Node {
    /// The fictitious environment node `v₀` that sends input signals.
    Env,
    /// A general.
    Process(ProcessId),
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Node::Env => write!(f, "v0"),
            Node::Process(p) => write!(f, "{p}"),
        }
    }
}

impl From<ProcessId> for Node {
    fn from(p: ProcessId) -> Self {
        Node::Process(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_id_roundtrip() {
        let p = ProcessId::new(7);
        assert_eq!(p.index(), 7);
        assert_eq!(p.as_u32(), 7);
        assert_eq!(ProcessId::from(7u32), p);
        assert_eq!(format!("{p}"), "P7");
        assert_eq!(format!("{p:?}"), "P7");
    }

    #[test]
    fn leader_is_process_zero() {
        assert_eq!(ProcessId::LEADER, ProcessId::new(0));
    }

    #[test]
    fn all_yields_dense_ids() {
        assert_eq!(ProcessId::all(0).count(), 0);
        assert_eq!(
            ProcessId::all(4).collect::<Vec<_>>(),
            vec![
                ProcessId::new(0),
                ProcessId::new(1),
                ProcessId::new(2),
                ProcessId::new(3)
            ]
        );
    }

    #[test]
    fn round_arithmetic() {
        let r = Round::new(3);
        assert_eq!(r.next(), Round::new(4));
        assert_eq!(r.prev(), Round::new(2));
        assert_eq!(Round::INPUT.get(), 0);
    }

    #[test]
    fn protocol_rounds_range() {
        assert_eq!(Round::protocol_rounds(0).count(), 0);
        let rs: Vec<_> = Round::protocol_rounds(2).collect();
        assert_eq!(rs, vec![Round::new(1), Round::new(2)]);
    }

    #[test]
    fn node_ordering_and_display() {
        assert!(Node::Env < Node::Process(ProcessId::new(0)));
        assert_eq!(format!("{}", Node::Env), "v0");
        assert_eq!(format!("{}", Node::Process(ProcessId::new(2))), "P2");
    }
}
