//! Epistemic knowledge: the [Halpern–Moses] view of information levels.
//!
//! The paper's *height/level* measure (Section 4) is iterated knowledge in
//! disguise: a process reaches height 1 when it **knows** the input arrived,
//! and height `h` when it knows everyone reached `h − 1` — i.e. level `h`
//! is `h`-fold nested "everyone knows". Common knowledge (the `h → ∞`
//! limit) is exactly what coordinated attack needs and what unreliable links
//! make unattainable.
//!
//! This module makes the correspondence executable:
//!
//! * [`View`] — the *full-information view* of a process at a round: its
//!   input bit plus, for each received message, the sender's view when it
//!   sent. Two runs give `i` the same view iff they are indistinguishable to
//!   `i` under **any** protocol (the view is the maximum anyone can know).
//! * [`knows_input`] — true epistemic knowledge by definition: `i` knows the
//!   input arrived at `(i, r)` in run `R`, w.r.t. an adversary (set of runs),
//!   iff the input arrived in **every** run of the adversary that gives `i`
//!   the same view. Computed by enumeration; intended for small instances.
//! * [`everyone_knows_depth`] — the nested-`E` depth computed from views.
//!
//! The tests verify, by exhaustive enumeration over all runs of small
//! instances, that the cheap [`crate::level`] computation coincides with
//! true epistemic knowledge — and that common knowledge is never attained in
//! any finite run (levels are bounded by `r + 1`), the classic impossibility
//! behind the paper.

use crate::flow::FlowGraph;
use crate::ids::{ProcessId, Round};
use crate::run::Run;

/// The full-information view of a process at the end of a round.
///
/// Structurally: the process id, whether its own input arrived, and for each
/// protocol round `1..=r`, the (sorted) list of `(sender, sender's view at
/// send time)` for the messages delivered to it.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct View {
    /// Whose view this is.
    pub owner: ProcessId,
    /// Whether the owner received the input signal.
    pub input: bool,
    /// `received[s]` lists round-`(s+1)` deliveries as (sender, view-at-send).
    pub received: Vec<Vec<(ProcessId, View)>>,
}

/// Computes the full-information view of `i` at the end of round `r` in `run`.
///
/// Exponential in principle but heavily shared in practice; intended for the
/// small instances the knowledge tests enumerate.
pub fn view(run: &Run, i: ProcessId, r: Round) -> View {
    let mut received = Vec::with_capacity(r.index());
    for s in 1..=r.get() {
        let mut round_msgs: Vec<(ProcessId, View)> = run
            .messages_in_round(Round::new(s))
            .filter(|slot| slot.to == i)
            .map(|slot| (slot.from, view(run, slot.from, Round::new(s - 1))))
            .collect();
        round_msgs.sort_by_key(|(from, _)| *from);
        received.push(round_msgs);
    }
    View {
        owner: i,
        input: run.has_input(i),
        received,
    }
}

/// True epistemic knowledge of the input: does `i` **know**, at the end of
/// round `r` of run `run`, that some input signal arrived — with respect to
/// the given adversary (a set of runs containing `run`)?
///
/// By definition: the input arrived in every run of `adversary` that gives
/// `i` the same full-information view.
///
/// # Panics
///
/// Panics if `run` is not a member of `adversary` (knowledge is only defined
/// relative to a run the adversary could have produced).
pub fn knows_input(adversary: &[Run], run: &Run, i: ProcessId, r: Round) -> bool {
    assert!(
        adversary.iter().any(|x| x == run),
        "run must belong to the adversary's run set"
    );
    let my_view = view(run, i, r);
    adversary
        .iter()
        .filter(|other| view(other, i, r) == my_view)
        .all(|other| other.has_any_input())
}

/// The nested-"everyone knows" depth of `i` at `(i, r)`: the largest `k`
/// such that `i` knows `E^{k-1}(input arrived)` — computed structurally from
/// information flow, exactly as the paper's height/level definition.
///
/// This equals [`crate::level::levels`]`.level_at(i, r)`; the equality (and
/// its agreement with true epistemic knowledge via [`knows_input`]) is
/// asserted by this module's tests.
pub fn everyone_knows_depth(run: &Run, i: ProcessId, r: Round) -> u32 {
    crate::level::levels(run).level_at(i, r)
}

/// Whether the group attains **common knowledge** of the input by round `r`:
/// every finite nesting depth is exceeded. In this model this is impossible
/// whenever messages can be lost; concretely, depths are bounded by `r + 1`,
/// so this returns `false` for every run — provided here so the impossibility
/// is stated (and tested) in code rather than prose.
pub fn common_knowledge_attained(run: &Run, r: Round) -> bool {
    let m = run.process_count();
    // Depth is bounded by r + 1 (one level per round after hearing the
    // input), so common knowledge would require unbounded depth: never.
    let _ = (m, r);
    false
}

/// Convenience: does the input flow to `(i, r)`? This is the *potential* for
/// knowledge (what a full-information protocol learns); [`knows_input`] is
/// the semantic fact. The two coincide — asserted in tests.
pub fn input_flows(run: &Run, i: ProcessId, r: Round) -> bool {
    FlowGraph::new(run).input_flows_to(i, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::level::levels;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn view_captures_received_structure() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::empty(2, 2);
        run.add_input(p(0));
        run.add_message(p(0), p(1), Round::new(1));
        let _ = g;
        let v = view(&run, p(1), Round::new(2));
        assert!(!v.input);
        assert_eq!(v.received.len(), 2);
        assert_eq!(v.received[0].len(), 1, "one delivery in round 1");
        assert!(v.received[0][0].1.input, "sender's view carries the input");
        assert!(v.received[1].is_empty());
    }

    #[test]
    fn identical_views_on_indistinguishable_runs() {
        // Adding a message INTO the other process does not change my view.
        let g = Graph::complete(2).unwrap();
        let mut a = Run::empty(2, 2);
        a.add_input(p(0));
        a.add_message(p(0), p(1), Round::new(1));
        let mut b = a.clone();
        b.add_message(p(0), p(1), Round::new(2));
        let _ = g;
        assert_eq!(view(&a, p(0), Round::new(2)), view(&b, p(0), Round::new(2)));
        assert_ne!(view(&a, p(1), Round::new(2)), view(&b, p(1), Round::new(2)));
    }

    #[test]
    fn true_knowledge_equals_input_flow_exhaustively() {
        // Over ALL runs of the K2, N=2 instance: i knows the input arrived
        // iff the input flows to (i, r). (The "only if" is the interesting
        // half: flow is exactly the limit of what can be known.)
        let g = Graph::complete(2).unwrap();
        let all = Run::enumerate_all(&g, 2);
        for run in &all {
            for i in g.vertices() {
                for r in [Round::new(0), Round::new(1), Round::new(2)] {
                    assert_eq!(
                        knows_input(&all, run, i, r),
                        input_flows(run, i, r),
                        "knowledge/flow mismatch at {i}, {r:?} in {run:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn depth_one_is_exactly_knowing_the_input() {
        let g = Graph::complete(2).unwrap();
        let all = Run::enumerate_all(&g, 2);
        for run in &all {
            for i in g.vertices() {
                let depth = everyone_knows_depth(run, i, Round::new(2));
                let knows = knows_input(&all, run, i, Round::new(2));
                assert_eq!(depth >= 1, knows, "depth-1 ⟺ K_i(input) in {run:?}");
            }
        }
    }

    #[test]
    fn depth_two_means_knowing_the_other_knows() {
        // L_i ≥ 2 iff i's view contains, for the other process j, evidence
        // that j knew the input at some received point. Check against a
        // semantic formulation: in every run with the same view for i, the
        // input flowed to j at a point that flows on to i.
        let g = Graph::complete(2).unwrap();
        let all = Run::enumerate_all(&g, 2);
        for run in &all {
            for i in g.vertices() {
                let j = p(1 - i.as_u32());
                let depth = levels(run).level(i);
                let my_view = view(run, i, Round::new(2));
                // Semantic: in all indistinguishable runs, ∃ s: input flows
                // to (j, s) and (j, s) flows to (i, 2).
                let semantic = all
                    .iter()
                    .filter(|other| view(other, i, Round::new(2)) == my_view)
                    .all(|other| {
                        let flow = FlowGraph::new(other);
                        (0..=2u32).any(|s| {
                            flow.input_flows_to(j, Round::new(s))
                                && flow.flows_to(j, Round::new(s), i, Round::new(2))
                        })
                    });
                assert_eq!(depth >= 2, semantic, "depth-2 semantics in {run:?}");
            }
        }
    }

    #[test]
    fn common_knowledge_is_never_attained() {
        let g = Graph::complete(2).unwrap();
        for run in Run::enumerate_all(&g, 2) {
            assert!(!common_knowledge_attained(&run, Round::new(2)));
            // And the structural reason: depth ≤ r + 1.
            for i in g.vertices() {
                for r in 0..=2u32 {
                    assert!(
                        levels(&run).level_at(i, Round::new(r)) <= r + 1,
                        "level exceeds r+1"
                    );
                }
            }
        }
    }

    #[test]
    fn levels_bounded_by_round_plus_one_large() {
        // The depth bound that makes common knowledge unattainable, on a
        // larger instance (not exhaustive).
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = Graph::complete(4).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let mut run = Run::good(&g, 5);
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.4) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            for i in g.vertices() {
                for r in 0..=5u32 {
                    assert!(levels(&run).level_at(i, Round::new(r)) <= r + 1);
                }
            }
        }
    }
}
