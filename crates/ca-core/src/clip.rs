//! The clipping construction `Clip_i(R)` (Section 4).
//!
//! `Clip_i(R) = {(j, k, r) ∈ R : (k, r) flows to (i, N)}` — the sub-run that
//! keeps exactly the tuples whose *receipt* is causally visible to `i` by the
//! end of the run. Clipping preserves everything `i` can observe
//! (Lemma 4.2: `L_i(R) = L_i(Clip_i(R))` and `R ≡ᵢ Clip_i(R)`), while
//! discarding information flow invisible to `i` — the key step in both lower
//! bounds.

use crate::flow::FlowGraph;
use crate::ids::{ProcessId, Round};
use crate::run::Run;

/// Computes `Clip_i(R)`: the run keeping only tuples whose receiving endpoint
/// flows to `(i, N)`.
///
/// Input tuples `(v₀, j, 0)` are kept iff `(j, 0)` flows to `(i, N)`;
/// message tuples `(j, k, r)` are kept iff `(k, r)` flows to `(i, N)`.
///
/// # Examples
///
/// ```
/// use ca_core::{graph::Graph, run::Run, clip::clip, ids::ProcessId};
/// let g = Graph::complete(2)?;
/// let run = Run::good(&g, 3);
/// let clipped = clip(&run, ProcessId::new(0));
/// // Messages delivered *to* the other process in the last round never flow
/// // back to process 0, so clipping drops them.
/// assert!(clipped.message_count() < run.message_count());
/// assert!(clipped.is_subset(&run));
/// # Ok::<(), ca_core::error::ModelError>(())
/// ```
pub fn clip(run: &Run, i: ProcessId) -> Run {
    let n = run.horizon();
    let flow = FlowGraph::new(run);
    let back = flow.reach_to(i, Round::new(n));

    let mut out = Run::empty(run.process_count(), n);
    for j in run.inputs() {
        if back.contains(j, Round::INPUT) {
            out.add_input(j);
        }
    }
    for r in Round::protocol_rounds(n) {
        for slot in run.messages_in_round(r) {
            if back.contains(slot.to, r) {
                out.add_message(slot.from, slot.to, r);
            }
        }
    }
    out
}

/// Returns whether `run` is already clipped with respect to `i`
/// (i.e. `Clip_i(run) == run`).
pub fn is_clipped(run: &Run, i: ProcessId) -> bool {
    clip(run, i) == *run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::level::{levels, modified_levels};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn r(i: u32) -> Round {
        Round::new(i)
    }

    fn random_run<RG: Rng>(g: &Graph, n: u32, keep: f64, rng: &mut RG) -> Run {
        let mut run = Run::good(g, n);
        for i in g.vertices() {
            if !rng.gen_bool(keep) {
                run.remove_input(i);
            }
        }
        let slots: Vec<_> = run.messages().collect();
        for s in slots {
            if !rng.gen_bool(keep) {
                run.remove_message(s.from, s.to, s.round);
            }
        }
        run
    }

    #[test]
    fn clip_drops_invisible_last_round_messages() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 3);
        let clipped = clip(&run, p(0));
        // The message 0→1 in round 3 is received by 1 at the end; (1,3) does
        // not flow back to (0,3). It must be dropped.
        assert!(!clipped.delivers(p(0), p(1), r(3)));
        // The message 1→0 in round 3 is received by 0: kept.
        assert!(clipped.delivers(p(1), p(0), r(3)));
        assert!(clipped.is_subset(&run));
    }

    #[test]
    fn clip_is_idempotent() {
        let g = Graph::ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let run = random_run(&g, 4, 0.6, &mut rng);
            for i in g.vertices() {
                let once = clip(&run, i);
                let twice = clip(&once, i);
                assert_eq!(once, twice, "clipping must be idempotent");
                assert!(is_clipped(&once, i));
            }
        }
    }

    #[test]
    fn lemma_4_2_levels_preserved() {
        // L_i(R) = L_i(Clip_i(R)), and the same for ML.
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..40 {
            let run = random_run(&g, 4, 0.55, &mut rng);
            for i in g.vertices() {
                let clipped = clip(&run, i);
                assert_eq!(
                    levels(&run).level(i),
                    levels(&clipped).level(i),
                    "L_i changed by clipping: {run:?}"
                );
                assert_eq!(
                    modified_levels(&run).level(i),
                    modified_levels(&clipped).level(i),
                    "ML_i changed by clipping: {run:?}"
                );
            }
        }
    }

    #[test]
    fn lemma_5_2_some_process_lags_in_clipped_run() {
        // If L_i(R) = l > 0 then some k has L_k(Clip_i(R)) ≤ l - 1.
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let mut checked = 0;
        for _ in 0..60 {
            let run = random_run(&g, 4, 0.6, &mut rng);
            for i in g.vertices() {
                let l = levels(&run).level(i);
                if l == 0 {
                    continue;
                }
                checked += 1;
                let clipped = clip(&run, i);
                let lc = levels(&clipped);
                let min_other = g.vertices().map(|k| lc.level(k)).min().unwrap();
                assert!(
                    min_other < l,
                    "Lemma 5.2 violated: L_i={l}, clipped levels {:?}",
                    lc.final_levels()
                );
            }
        }
        assert!(checked > 20, "test exercised enough nonzero-level cases");
    }

    #[test]
    fn clip_of_empty_is_empty() {
        let run = Run::empty(3, 3);
        assert_eq!(clip(&run, p(1)), run);
    }

    #[test]
    fn clip_keeps_input_only_if_visible() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::empty(2, 2);
        run.add_input(p(0));
        run.add_input(p(1));
        // No messages: process 0 sees only its own input.
        let clipped = clip(&run, p(0));
        assert!(clipped.has_input(p(0)));
        assert!(!clipped.has_input(p(1)));
        let _ = g;
    }

    #[test]
    fn base_case_of_lemma_5_3_clipped_run_has_no_input() {
        // If L_i(R) = 0 then Clip_i(R) has empty input set.
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(41);
        let mut checked = 0;
        for _ in 0..80 {
            let run = random_run(&g, 3, 0.4, &mut rng);
            for i in g.vertices() {
                if levels(&run).level(i) == 0 {
                    checked += 1;
                    let clipped = clip(&run, i);
                    assert!(!clipped.has_any_input(), "I(Clip_i(R)) must be empty");
                }
            }
        }
        assert!(checked > 5);
    }
}
