//! A small fixed-capacity bitset used for process sets and reachability masks.
//!
//! The model deals in sets of processes (e.g. Protocol S's `seen_i`, the set
//! of processes an information level has reached) and sets of `(process,
//! round)` pairs. A compact bitset keeps those operations allocation-free in
//! the inner simulation loops.

use serde::ser::{Serialize, SerializeStruct, Serializer};
use std::fmt;

/// Small sets (up to `INLINE_WORDS * 64` elements) live entirely on the
/// stack; only the large `(process, round)` reachability masks spill to the
/// heap. Two words cover 128 bits, exactly `MAX_PROCESSES`, so every process
/// set in the simulator clones without touching the allocator.
const INLINE_WORDS: usize = 2;

/// Number of `u64` words needed for `capacity` bits.
#[inline]
fn word_count(capacity: usize) -> usize {
    capacity.div_ceil(64)
}

/// Storage for the bit words. The variant is a pure function of the
/// capacity (inline iff `word_count(capacity) <= INLINE_WORDS`), and words
/// past the logical count are kept at zero, so the derived equality and hash
/// are consistent across sets of equal capacity.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Blocks {
    Inline([u64; INLINE_WORDS]),
    Heap(Vec<u64>),
}

/// A fixed-capacity set of small integers backed by `u64` blocks.
///
/// # Examples
///
/// ```
/// use ca_core::bitset::BitSet;
/// let mut s = BitSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct BitSet {
    blocks: Blocks,
    capacity: usize,
}

impl Clone for BitSet {
    #[inline]
    fn clone(&self) -> Self {
        BitSet {
            blocks: self.blocks.clone(),
            capacity: self.capacity,
        }
    }

    /// Clones without reallocating when the destination's block buffer is
    /// already large enough (the scratch-run pattern in the Monte Carlo
    /// engine clones into the same destination every trial).
    #[inline]
    fn clone_from(&mut self, source: &Self) {
        match (&mut self.blocks, &source.blocks) {
            (Blocks::Heap(dst), Blocks::Heap(src)) => dst.clone_from(src),
            (dst, src) => *dst = src.clone(),
        }
        self.capacity = source.capacity;
    }
}

impl BitSet {
    /// Creates an empty set with room for elements `0..capacity`.
    #[inline]
    pub fn new(capacity: usize) -> Self {
        let words = word_count(capacity);
        let blocks = if words <= INLINE_WORDS {
            Blocks::Inline([0; INLINE_WORDS])
        } else {
            Blocks::Heap(vec![0; words])
        };
        BitSet { blocks, capacity }
    }

    /// The logical words, exactly `word_count(capacity)` of them.
    #[inline]
    fn words(&self) -> &[u64] {
        match &self.blocks {
            Blocks::Inline(a) => &a[..word_count(self.capacity)],
            Blocks::Heap(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        let count = word_count(self.capacity);
        match &mut self.blocks {
            Blocks::Inline(a) => &mut a[..count],
            Blocks::Heap(v) => v,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ca_core::bitset::BitSet;
    /// let s = BitSet::full(5);
    /// assert_eq!(s.len(), 5);
    /// assert!(s.is_full());
    /// ```
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for b in s.words_mut() {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= capacity`.
    pub fn from_iter_with_capacity(capacity: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(capacity);
        for x in iter {
            s.insert(x);
        }
        s
    }

    /// The capacity (one past the largest storable element).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `x`, returning whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `x >= capacity`.
    #[inline]
    pub fn insert(&mut self, x: usize) -> bool {
        assert!(
            x < self.capacity,
            "element {x} out of range 0..{}",
            self.capacity
        );
        let (b, bit) = (x / 64, 1u64 << (x % 64));
        let word = &mut self.words_mut()[b];
        let fresh = *word & bit == 0;
        *word |= bit;
        fresh
    }

    /// Removes `x`, returning whether it was present.
    #[inline]
    pub fn remove(&mut self, x: usize) -> bool {
        if x >= self.capacity {
            return false;
        }
        let (b, bit) = (x / 64, 1u64 << (x % 64));
        let word = &mut self.words_mut()[b];
        let present = *word & bit != 0;
        *word &= !bit;
        present
    }

    /// Returns whether `x` is in the set.
    #[inline]
    pub fn contains(&self, x: usize) -> bool {
        x < self.capacity && self.words()[x / 64] & (1u64 << (x % 64)) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words().iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words().iter().all(|&b| b == 0)
    }

    /// Returns whether the set contains all of `0..capacity`.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Removes all elements.
    #[inline]
    pub fn clear(&mut self) {
        for b in self.words_mut() {
            *b = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[inline]
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    #[inline]
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a &= b;
        }
    }

    /// Returns whether `self` is a subset of `other`.
    #[inline]
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    #[inline]
    pub fn iter(&self) -> Iter<'_> {
        let words = self.words();
        Iter {
            words,
            block: 0,
            bits: words.first().copied().unwrap_or(0),
        }
    }

    #[inline]
    fn trim(&mut self) {
        let extra = word_count(self.capacity) * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.words_mut().last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl Serialize for BitSet {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Keep the wire format of the old derived impl, when the words were a
        // plain `Vec<u64>` field: `{"blocks":[...],"capacity":N}`.
        let mut st = serializer.serialize_struct("BitSet", 2)?;
        st.serialize_field("blocks", &self.words())?;
        st.serialize_field("capacity", &self.capacity)?;
        st.end()
    }
}

impl serde::de::Deserialize for BitSet {
    fn deserialize(value: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let obj = value.as_object().ok_or_else(|| {
            serde::json::Error::custom(format!("expected object for BitSet, got {}", value.kind()))
        })?;
        let capacity: usize = serde::de::field(obj, "capacity")?;
        let words: Vec<u64> = serde::de::field(obj, "blocks")?;
        if words.len() != word_count(capacity) {
            return Err(serde::json::Error::custom(format!(
                "bitset with capacity {capacity} needs {} block(s), got {}",
                word_count(capacity),
                words.len()
            )));
        }
        let mut s = BitSet::new(capacity);
        s.words_mut().copy_from_slice(&words);
        // Clearing bits beyond the capacity keeps the derived equality and
        // hash honest even for hostile input.
        s.trim();
        Ok(s)
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for x in iter {
            self.insert(x);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    words: &'a [u64],
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * 64 + tz);
            }
            self.block += 1;
            if self.block >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(99), "re-insert reports not fresh");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn full_and_trim() {
        let s = BitSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.is_full());
        assert!(s.contains(64));
        let s = BitSet::full(64);
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn union_intersect_subset() {
        let a = BitSet::from_iter_with_capacity(10, [1, 3, 5]);
        let b = BitSet::from_iter_with_capacity(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_crosses_block_boundaries() {
        let s = BitSet::from_iter_with_capacity(200, [0, 63, 64, 127, 128, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn debug_formatting_nonempty() {
        let s = BitSet::from_iter_with_capacity(8, [2, 5]);
        assert_eq!(format!("{s:?}"), "{2, 5}");
        let empty = BitSet::new(8);
        assert_eq!(format!("{empty:?}"), "{}");
    }

    #[test]
    fn extend_trait() {
        let mut s = BitSet::new(8);
        s.extend([1usize, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(8);
        a.union_with(&BitSet::new(9));
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = BitSet::new(4);
        assert!(!s.remove(100));
        assert!(!s.contains(100));
    }
}
