//! A small fixed-capacity bitset used for process sets and reachability masks.
//!
//! The model deals in sets of processes (e.g. Protocol S's `seen_i`, the set
//! of processes an information level has reached) and sets of `(process,
//! round)` pairs. A compact bitset keeps those operations allocation-free in
//! the inner simulation loops.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-capacity set of small integers backed by `u64` blocks.
///
/// # Examples
///
/// ```
/// use ca_core::bitset::BitSet;
/// let mut s = BitSet::new(10);
/// s.insert(3);
/// s.insert(7);
/// assert!(s.contains(3));
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 7]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitSet {
    blocks: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty set with room for elements `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(64)],
            capacity,
        }
    }

    /// Creates a set containing all of `0..capacity`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ca_core::bitset::BitSet;
    /// let s = BitSet::full(5);
    /// assert_eq!(s.len(), 5);
    /// assert!(s.is_full());
    /// ```
    pub fn full(capacity: usize) -> Self {
        let mut s = BitSet::new(capacity);
        for b in s.blocks.iter_mut() {
            *b = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of elements.
    ///
    /// # Panics
    ///
    /// Panics if any element is `>= capacity`.
    pub fn from_iter_with_capacity(capacity: usize, iter: impl IntoIterator<Item = usize>) -> Self {
        let mut s = BitSet::new(capacity);
        for x in iter {
            s.insert(x);
        }
        s
    }

    /// The capacity (one past the largest storable element).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `x`, returning whether it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `x >= capacity`.
    pub fn insert(&mut self, x: usize) -> bool {
        assert!(
            x < self.capacity,
            "element {x} out of range 0..{}",
            self.capacity
        );
        let (b, bit) = (x / 64, 1u64 << (x % 64));
        let fresh = self.blocks[b] & bit == 0;
        self.blocks[b] |= bit;
        fresh
    }

    /// Removes `x`, returning whether it was present.
    pub fn remove(&mut self, x: usize) -> bool {
        if x >= self.capacity {
            return false;
        }
        let (b, bit) = (x / 64, 1u64 << (x % 64));
        let present = self.blocks[b] & bit != 0;
        self.blocks[b] &= !bit;
        present
    }

    /// Returns whether `x` is in the set.
    pub fn contains(&self, x: usize) -> bool {
        x < self.capacity && self.blocks[x / 64] & (1u64 << (x % 64)) != 0
    }

    /// Number of elements in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Returns whether the set contains all of `0..capacity`.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for b in self.blocks.iter_mut() {
            *b = 0;
        }
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn union_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if capacities differ.
    pub fn intersect_with(&mut self, other: &BitSet) {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// Returns whether `self` is a subset of `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        assert_eq!(self.capacity, other.capacity, "bitset capacity mismatch");
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over the elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    fn trim(&mut self) {
        let extra = self.blocks.len() * 64 - self.capacity;
        if extra > 0 {
            if let Some(last) = self.blocks.last_mut() {
                *last &= u64::MAX >> extra;
            }
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl Extend<usize> for BitSet {
    fn extend<T: IntoIterator<Item = usize>>(&mut self, iter: T) {
        for x in iter {
            self.insert(x);
        }
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * 64 + tz);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new(100);
        assert!(s.is_empty());
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(99));
        assert!(!s.insert(99), "re-insert reports not fresh");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(99));
        assert!(!s.contains(1));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        BitSet::new(4).insert(4);
    }

    #[test]
    fn full_and_trim() {
        let s = BitSet::full(65);
        assert_eq!(s.len(), 65);
        assert!(s.is_full());
        assert!(s.contains(64));
        let s = BitSet::full(64);
        assert_eq!(s.len(), 64);
    }

    #[test]
    fn union_intersect_subset() {
        let a = BitSet::from_iter_with_capacity(10, [1, 3, 5]);
        let b = BitSet::from_iter_with_capacity(10, [3, 4]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 3, 4, 5]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3]);
        assert!(i.is_subset(&a));
        assert!(i.is_subset(&b));
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn iter_crosses_block_boundaries() {
        let s = BitSet::from_iter_with_capacity(200, [0, 63, 64, 127, 128, 199]);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 127, 128, 199]);
    }

    #[test]
    fn zero_capacity() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full());
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn debug_formatting_nonempty() {
        let s = BitSet::from_iter_with_capacity(8, [2, 5]);
        assert_eq!(format!("{s:?}"), "{2, 5}");
        let empty = BitSet::new(8);
        assert_eq!(format!("{empty:?}"), "{}");
    }

    #[test]
    fn extend_trait() {
        let mut s = BitSet::new(8);
        s.extend([1usize, 2, 3]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic(expected = "capacity mismatch")]
    fn union_capacity_mismatch_panics() {
        let mut a = BitSet::new(8);
        a.union_with(&BitSet::new(9));
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut s = BitSet::new(4);
        assert!(!s.remove(100));
        assert!(!s.contains(100));
    }
}
