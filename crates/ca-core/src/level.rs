//! Information levels: the knowledge measure behind both bounds.
//!
//! A process reaches **height** 1 when the input flows to it; it reaches
//! height `h > 1` when, for every other process `i`, it has heard (in the
//! flows-to sense) that `i` reached height `h - 1`. The **level**
//! `L_i^r(R)` is the maximum height `i` reaches by round `r`; `L_i(R)` is
//! `L_i^N(R)` and `L(R) = min_i L_i(R)`.
//!
//! The **modified level** `ML_i^r(R)` differs only at height 1: it requires
//! both the input *and* the leader's round-0 state `(1, 0)` to flow to the
//! process (because Protocol S needs every attacker to know `rfire`).
//!
//! Three implementations are provided:
//!
//! * [`min_level_into`] / [`min_modified_level_into`] — a sparse
//!   counting-automaton frontier, `O(|messages| · m/64)` per round, generic
//!   over any [`DeliverySource`] (dense [`Run`] or edge-keyed
//!   [`crate::run::EdgeRun`]); this is the hot path every Monte Carlo trial
//!   rides. See DESIGN.md §11 for the frontier invariant.
//! * [`levels`] / [`modified_levels`] — an `O(m²·N)` "gossip" dynamic program
//!   that mirrors how the levels actually propagate, building the full
//!   per-round table; the dense min-level variant survives as the
//!   differential oracle behind [`dense_min_level_into`].
//! * [`level_by_definition`] / [`modified_level_by_definition`] — a direct
//!   memoized transcription of the recursive definition, used as a test
//!   oracle.
//!
//! # Why the sparse frontier is exact
//!
//! The gossip DP carries a full vector `heard[j][i]` per process. But those
//! vectors obey a spread invariant (the engine-level face of Lemma 6.2): once
//! `j` has heard that anyone reached height `v ≥ 2`, it must have heard —
//! transitively, through the same message — that *everyone* reached `v - 1`,
//! because the only source of "`i` is at `v`" is `i`'s own vector, which held
//! `≥ v - 1` for every process when `i` got there. So `max - min ≤ 1` within
//! each vector, and the whole vector compresses losslessly to a pair: the own
//! level `count_j = heard[j][j]` plus the set
//! `seen_j = {k : heard[j][k] = count_j}`. That pair is exactly the paper's
//! Figure-1 counting automaton (Lemma 6.4: `count_i^r = ML_i^r`), and the
//! frontier propagates it in `O(m/64)` per message instead of `O(m)` —
//! touching only processes that actually receive messages. The unmodified
//! level `L` is the same automaton with the leader-state requirement dropped
//! from the base case. `tests/sparse_level_differential.rs` pins the frontier
//! against the dense DP over sampled graphs and runs.
//!
//! The paper's Lemmas 6.1 and 6.2 (`L_i - 1 ≤ ML_i ≤ L_i`,
//! `|ML_i - ML_j| ≤ 1`) are asserted in this module's tests and again as
//! property tests.

use crate::bitset::BitSet;
use crate::error::CaError;
use crate::flow::FlowGraph;
use crate::ids::{ProcessId, Round};
use crate::run::{DeliverySource, Run};
use serde::{Deserialize, Serialize};

/// Per-process, per-round level table for one run.
///
/// # Examples
///
/// ```
/// use ca_core::{graph::Graph, run::Run, level::levels, ids::ProcessId};
/// let g = Graph::complete(2)?;
/// let run = Run::good(&g, 4);
/// let table = levels(&run);
/// // With all messages delivered, levels climb one unit per round.
/// assert_eq!(table.level(ProcessId::new(0)), 5);
/// assert_eq!(table.min_level(), 5);
/// # Ok::<(), ca_core::error::ModelError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelTable {
    /// `table[i][r]` = level of process `i` at end of round `r`.
    table: Vec<Vec<u32>>,
    n: u32,
}

impl LevelTable {
    /// The level of `i` at the end of round `r` (`L_i^r(R)` or `ML_i^r(R)`).
    ///
    /// # Panics
    ///
    /// Panics if `i` or `r` is out of range.
    pub fn level_at(&self, i: ProcessId, r: Round) -> u32 {
        self.table[i.index()][r.index()]
    }

    /// The final level of `i` (`L_i(R) = L_i^N(R)`).
    pub fn level(&self, i: ProcessId) -> u32 {
        self.table[i.index()][self.n as usize]
    }

    /// The run-wide level `L(R) = min_i L_i(R)`.
    pub fn min_level(&self) -> u32 {
        self.table
            .iter()
            .map(|row| row[self.n as usize])
            .min()
            .expect("at least one process")
    }

    /// The maximum final level across processes.
    pub fn max_level(&self) -> u32 {
        self.table
            .iter()
            .map(|row| row[self.n as usize])
            .max()
            .expect("at least one process")
    }

    /// All final levels, indexed by process.
    pub fn final_levels(&self) -> Vec<u32> {
        self.table.iter().map(|row| row[self.n as usize]).collect()
    }

    /// The horizon `N`.
    pub fn horizon(&self) -> u32 {
        self.n
    }
}

/// Computes the level table `L_i^r(R)` for all `i, r`.
///
/// # Panics
///
/// Panics if the run has fewer than 2 processes (the definition degenerates
/// for `m = 1`: the `h > 1` clause is vacuous and levels diverge).
pub fn levels(run: &Run) -> LevelTable {
    gossip_levels(run, false)
}

/// Computes the modified level table `ML_i^r(R)` for all `i, r`.
///
/// Identical to [`levels`] except that height 1 additionally requires the
/// leader's round-0 state `(1, 0)` (code: `(ProcessId::LEADER, 0)`) to flow
/// to the process.
///
/// # Panics
///
/// Panics if the run has fewer than 2 processes.
pub fn modified_levels(run: &Run) -> LevelTable {
    gossip_levels(run, true)
}

/// Fallible variant of [`levels`]: returns a typed error instead of
/// panicking when the run has fewer than 2 processes.
pub fn try_levels(run: &Run) -> Result<LevelTable, CaError> {
    ensure_two_processes(run)?;
    Ok(gossip_levels(run, false))
}

/// Fallible variant of [`modified_levels`].
pub fn try_modified_levels(run: &Run) -> Result<LevelTable, CaError> {
    ensure_two_processes(run)?;
    Ok(gossip_levels(run, true))
}

fn ensure_two_processes(run: &Run) -> Result<(), CaError> {
    if run.process_count() < 2 {
        return Err(CaError::malformed(format!(
            "levels are defined for m >= 2 (paper's model), got m = {}",
            run.process_count()
        )));
    }
    Ok(())
}

/// Reusable buffers for [`min_level_into`] / [`min_modified_level_into`].
///
/// The Monte Carlo engine asks for one number per trial — `min_i L_i(R)` —
/// millions of times; a scratch threaded through the loop keeps the gossip
/// working vectors alive across trials instead of reallocating them.
#[derive(Debug, Default)]
pub struct LevelScratch {
    // --- dense-oracle buffers (the legacy `O(m²)` DP behind
    // `dense_min_level_into`, kept as the differential oracle) ---
    valid: Vec<bool>,
    heard_leader: Vec<bool>,
    /// `heard[j * m + i]`: best level of `i` known (via flow) to `j`.
    heard: Vec<u32>,
    snap_heard: Vec<u32>,
    snap_valid: Vec<bool>,
    snap_leader: Vec<bool>,
    // --- sparse frontier buffers (the counting-automaton hot path) ---
    /// `count[j]`: `j`'s current level (`heard[j][j]` in the dense view).
    count: Vec<u32>,
    /// `seen[j]`: processes `j` knows to be at `count[j]` (capacity `m`).
    seen: Vec<BitSet>,
    /// Has the input flowed to `j`?
    fvalid: Vec<bool>,
    /// Has the leader's round-0 state flowed to `j`?
    ftoken: Vec<bool>,
    /// Per-receiver round accumulators: highest sender count received …
    rx_high: Vec<u32>,
    /// … union of the seen-sets of senders at that highest count …
    rx_seen: Vec<BitSet>,
    /// … and the validity / leader-state bits that flowed in.
    rx_valid: Vec<bool>,
    rx_token: Vec<bool>,
    /// Round stamp per receiver: `stamp[j] == stamp_cur` means `j`'s
    /// accumulators are live this round (lazy reset, no per-round clear).
    stamp: Vec<u32>,
    stamp_cur: u32,
    /// Receivers touched this round, in first-message order.
    touch: Vec<u32>,
    /// `m` the frontier buffers are currently sized for.
    cap: usize,
}

impl LevelScratch {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        Self::default()
    }
}

/// `L(R) = min_i L_i(R)` without building the full [`LevelTable`] —
/// allocation-free once the scratch has warmed up, and identical to
/// `levels(run).min_level()`.
///
/// Generic over the delivery representation: dense [`Run`] or sparse
/// [`crate::run::EdgeRun`].
///
/// # Panics
///
/// Panics if the run has fewer than 2 processes.
pub fn min_level_into<D: DeliverySource + ?Sized>(run: &D, scratch: &mut LevelScratch) -> u32 {
    frontier_extremes(run, false, scratch).0
}

/// `ML(R) = min_i ML_i(R)` without building the full [`LevelTable`] —
/// allocation-free once the scratch has warmed up, and identical to
/// `modified_levels(run).min_level()`.
///
/// Generic over the delivery representation: dense [`Run`] or sparse
/// [`crate::run::EdgeRun`].
///
/// # Panics
///
/// Panics if the run has fewer than 2 processes.
pub fn min_modified_level_into<D: DeliverySource + ?Sized>(
    run: &D,
    scratch: &mut LevelScratch,
) -> u32 {
    frontier_extremes(run, true, scratch).0
}

/// Final-level extremes `(min_i L_i(R), max_i L_i(R))` in one frontier pass.
///
/// # Panics
///
/// Panics if the run has fewer than 2 processes.
pub fn level_extremes_into<D: DeliverySource + ?Sized>(
    run: &D,
    scratch: &mut LevelScratch,
) -> (u32, u32) {
    frontier_extremes(run, false, scratch)
}

/// Final modified-level extremes `(min_i ML_i(R), max_i ML_i(R))` in one
/// frontier pass — what the `ca sweep` classifier consumes: with Protocol S's
/// firing threshold `rfire`, TA ⟺ `min ≥ rfire` and NA ⟺ `max < rfire`
/// (Lemma 6.4 equates `ML` with the attack counts).
///
/// # Panics
///
/// Panics if the run has fewer than 2 processes.
pub fn modified_level_extremes_into<D: DeliverySource + ?Sized>(
    run: &D,
    scratch: &mut LevelScratch,
) -> (u32, u32) {
    frontier_extremes(run, true, scratch)
}

/// The sparse counting-automaton frontier (see the module docs for why it is
/// exactly the gossip DP): each process carries `(count, seen)`; a round
/// sweeps delivered messages into per-receiver accumulators reading only
/// previous-round sender state, then finalizes the touched receivers —
/// adopt a higher count outright, union seen-sets at an equal count, and bump
/// `count` (at most once) when `seen` covers all `m` processes.
fn frontier_extremes<D: DeliverySource + ?Sized>(
    run: &D,
    modified: bool,
    s: &mut LevelScratch,
) -> (u32, u32) {
    let m = run.process_count();
    let n = run.horizon();
    assert!(m >= 2, "levels are defined for m >= 2 (paper's model)");

    if s.cap != m {
        s.cap = m;
        s.count = vec![0; m];
        s.seen = (0..m).map(|_| BitSet::new(m)).collect();
        s.rx_seen = (0..m).map(|_| BitSet::new(m)).collect();
        s.fvalid = vec![false; m];
        s.ftoken = vec![false; m];
        s.rx_high = vec![0; m];
        s.rx_valid = vec![false; m];
        s.rx_token = vec![false; m];
        s.stamp = vec![0; m];
        s.stamp_cur = 0;
        s.touch = Vec::with_capacity(m);
    }

    let base_holds = |valid: bool, token: bool| -> bool {
        if modified {
            valid && token
        } else {
            valid
        }
    };

    // Round 0: inputs arrive; the leader holds its own round-0 state.
    for j in 0..m {
        s.fvalid[j] = run.has_input(ProcessId::new(j as u32));
        s.ftoken[j] = j == ProcessId::LEADER.index();
        s.seen[j].clear();
        if base_holds(s.fvalid[j], s.ftoken[j]) {
            s.count[j] = 1;
            s.seen[j].insert(j);
        } else {
            s.count[j] = 0;
        }
    }

    for r in Round::protocol_rounds(n) {
        // Lazy accumulator reset: a fresh stamp invalidates every receiver's
        // accumulators at once. On wrap, hard-reset the stamps.
        s.stamp_cur = s.stamp_cur.wrapping_add(1);
        if s.stamp_cur == 0 {
            s.stamp.iter_mut().for_each(|t| *t = 0);
            s.stamp_cur = 1;
        }
        let cur = s.stamp_cur;
        s.touch.clear();
        // Sweep: senders' states are still end-of-previous-round values
        // (writes happen only in the finalize pass), so no snapshot copies
        // are needed.
        run.for_each_delivery_in_round(r, |from, to| {
            let (i, j) = (from.index(), to.index());
            if s.stamp[j] != cur {
                s.stamp[j] = cur;
                s.touch.push(j as u32);
                s.rx_valid[j] = false;
                s.rx_token[j] = false;
                s.rx_high[j] = 0;
            }
            s.rx_valid[j] |= s.fvalid[i];
            s.rx_token[j] |= s.ftoken[i];
            let ci = s.count[i];
            if ci > s.rx_high[j] {
                s.rx_high[j] = ci;
                s.rx_seen[j].clear();
                s.rx_seen[j].union_with(&s.seen[i]);
            } else if ci == s.rx_high[j] && ci > 0 {
                s.rx_seen[j].union_with(&s.seen[i]);
            }
        });
        // Finalize the touched receivers (untouched state cannot change:
        // levels only move when a message arrives — Lemma 5.1).
        for idx in 0..s.touch.len() {
            let j = s.touch[idx] as usize;
            s.fvalid[j] |= s.rx_valid[j];
            s.ftoken[j] |= s.rx_token[j];
            if s.count[j] == 0 && base_holds(s.fvalid[j], s.ftoken[j]) {
                s.count[j] = 1;
                s.seen[j].clear();
                s.seen[j].insert(j);
            }
            if s.count[j] >= 1 && s.rx_high[j] >= s.count[j] {
                if s.rx_high[j] > s.count[j] {
                    s.count[j] = s.rx_high[j];
                    s.seen[j].clear();
                    s.seen[j].union_with(&s.rx_seen[j]);
                    s.seen[j].insert(j);
                } else {
                    s.seen[j].union_with(&s.rx_seen[j]);
                }
                if s.seen[j].is_full() {
                    s.count[j] += 1;
                    s.seen[j].clear();
                    s.seen[j].insert(j);
                }
            }
        }
    }

    let mut lo = u32::MAX;
    let mut hi = 0;
    for &c in &s.count[..m] {
        lo = lo.min(c);
        hi = hi.max(c);
    }
    (lo, hi)
}

/// The dense `O(m²)` gossip DP on flat scratch buffers, kept as the
/// differential oracle for the sparse frontier (see
/// `tests/sparse_level_differential.rs`). Not part of the supported API.
#[doc(hidden)]
pub fn dense_min_level_into(run: &Run, modified: bool, scratch: &mut LevelScratch) -> u32 {
    gossip_min_level(run, modified, scratch)
}

/// The same gossip dynamic program as [`gossip_levels`], but on flat scratch
/// buffers and keeping only the final per-process levels.
fn gossip_min_level(run: &Run, modified: bool, s: &mut LevelScratch) -> u32 {
    let m = run.process_count();
    let n = run.horizon();
    assert!(m >= 2, "levels are defined for m >= 2 (paper's model)");

    s.valid.clear();
    s.valid
        .extend((0..m).map(|j| run.has_input(ProcessId::new(j as u32))));
    s.heard_leader.clear();
    s.heard_leader.resize(m, false);
    s.heard_leader[ProcessId::LEADER.index()] = true;
    s.heard.clear();
    s.heard.resize(m * m, 0);

    let base_holds = |valid_j: bool, heard_leader_j: bool| -> bool {
        if modified {
            valid_j && heard_leader_j
        } else {
            valid_j
        }
    };

    for j in 0..m {
        if base_holds(s.valid[j], s.heard_leader[j]) {
            s.heard[j * m + j] = 1;
        }
    }

    for r in Round::protocol_rounds(n) {
        s.snap_heard.clear();
        s.snap_heard.extend_from_slice(&s.heard);
        s.snap_valid.clear();
        s.snap_valid.extend_from_slice(&s.valid);
        s.snap_leader.clear();
        s.snap_leader.extend_from_slice(&s.heard_leader);
        run.for_each_message_in_round(r, |slot| {
            let (i, j) = (slot.from.index(), slot.to.index());
            for k in 0..m {
                if s.snap_heard[i * m + k] > s.heard[j * m + k] {
                    s.heard[j * m + k] = s.snap_heard[i * m + k];
                }
            }
            s.valid[j] |= s.snap_valid[i];
            s.heard_leader[j] |= s.snap_leader[i];
        });
        for j in 0..m {
            if base_holds(s.valid[j], s.heard_leader[j]) && s.heard[j * m + j] == 0 {
                s.heard[j * m + j] = 1;
            }
            let min_other = (0..m)
                .filter(|&i| i != j)
                .map(|i| s.heard[j * m + i])
                .min()
                .expect("m >= 2");
            if min_other >= 1 && min_other + 1 > s.heard[j * m + j] {
                s.heard[j * m + j] = min_other + 1;
            }
        }
    }

    (0..m)
        .map(|j| s.heard[j * m + j])
        .min()
        .expect("at least one process")
}

/// The gossip dynamic program shared by [`levels`] and [`modified_levels`].
///
/// Each process `j` carries a vector `heard[j][i]` = the highest level of `i`
/// whose attainment has flowed to `j` so far, along with its own current
/// level. A delivered message `(i, j, r)` merges `i`'s end-of-round-`(r-1)`
/// vector into `j`'s. After merging a round's messages, `j`'s level rises to
/// `1 + min_{i≠j} heard[j][i]` whenever that minimum is positive (the `h > 1`
/// clause), and to 1 when the base condition holds.
fn gossip_levels(run: &Run, modified: bool) -> LevelTable {
    let m = run.process_count();
    let n = run.horizon();
    assert!(m >= 2, "levels are defined for m >= 2 (paper's model)");

    // valid[j]: has the input flowed to j?  heard_leader[j]: has (leader, 0)
    // flowed to j? (Only used for the modified measure.)
    let mut valid: Vec<bool> = (0..m)
        .map(|j| run.has_input(ProcessId::new(j as u32)))
        .collect();
    let mut heard_leader: Vec<bool> = (0..m).map(|j| j == ProcessId::LEADER.index()).collect();

    // heard[j][i] = best level of i known (via flow) to j. heard[j][j] is j's own level.
    let mut heard: Vec<Vec<u32>> = vec![vec![0; m]; m];
    let mut table: Vec<Vec<u32>> = vec![vec![0; n as usize + 1]; m];

    let base_holds = |valid_j: bool, heard_leader_j: bool| -> bool {
        if modified {
            valid_j && heard_leader_j
        } else {
            valid_j
        }
    };

    // Round 0: inputs arrive; the leader's own round-0 state is at the leader.
    for j in 0..m {
        if base_holds(valid[j], heard_leader[j]) {
            heard[j][j] = 1;
        }
        table[j][0] = heard[j][j];
    }

    // Rounds 1..=N: deliver messages, merge vectors, raise levels.
    let mut snapshot = heard.clone();
    let mut valid_snap = valid.clone();
    let mut leader_snap = heard_leader.clone();
    for r in Round::protocol_rounds(n) {
        snapshot.clone_from(&heard);
        valid_snap.clone_from(&valid);
        leader_snap.clone_from(&heard_leader);
        for slot in run.messages_in_round(r) {
            let (i, j) = (slot.from.index(), slot.to.index());
            for k in 0..m {
                if snapshot[i][k] > heard[j][k] {
                    heard[j][k] = snapshot[i][k];
                }
            }
            valid[j] |= valid_snap[i];
            heard_leader[j] |= leader_snap[i];
        }
        for j in 0..m {
            // Base height 1.
            if base_holds(valid[j], heard_leader[j]) && heard[j][j] == 0 {
                heard[j][j] = 1;
            }
            // h > 1 clause: 1 + min over other processes of their known level.
            let min_other = (0..m)
                .filter(|&i| i != j)
                .map(|i| heard[j][i])
                .min()
                .expect("m >= 2");
            if min_other >= 1 && min_other + 1 > heard[j][j] {
                heard[j][j] = min_other + 1;
            }
            table[j][r.index()] = heard[j][j];
        }
    }

    LevelTable { table, n }
}

/// Computes `L_j^r(R)` straight from the recursive definition, memoized.
///
/// Exponentially slower than [`levels`] in the worst case but a faithful
/// transcription; used as an oracle in tests.
pub fn level_by_definition(run: &Run, j: ProcessId, r: Round) -> u32 {
    definition_level(run, j, r, false)
}

/// Computes `ML_j^r(R)` straight from the recursive definition, memoized.
pub fn modified_level_by_definition(run: &Run, j: ProcessId, r: Round) -> u32 {
    definition_level(run, j, r, true)
}

fn definition_level(run: &Run, j: ProcessId, r: Round, modified: bool) -> u32 {
    let m = run.process_count();
    let n = run.horizon();
    assert!(m >= 2, "levels are defined for m >= 2");
    let flow = FlowGraph::new(run);

    // Precompute forward cones from every (i, s) and from the environment.
    let env = flow.env_reach();
    let leader0 = flow.reach_from(ProcessId::LEADER, Round::INPUT);

    // can_reach[h][i][s] = can i reach height h by round s? Computed level by level.
    // Height 1:
    let reach1 = |i: ProcessId, s: Round| -> bool {
        let base = env.contains(i, s);
        if modified {
            base && leader0.contains(i, s)
        } else {
            base
        }
    };

    let max_h = (n + 2) as usize;
    // reach[h] for h >= 1; index 0 unused (height 0 always true).
    let mut reach: Vec<Vec<Vec<bool>>> = Vec::with_capacity(max_h + 1);
    reach.push(vec![vec![true; n as usize + 1]; m]); // height 0
    let mut h1 = vec![vec![false; n as usize + 1]; m];
    for (i, row) in h1.iter_mut().enumerate() {
        for s in 0..=n {
            row[s as usize] = reach1(ProcessId::new(i as u32), Round::new(s));
        }
    }
    reach.push(h1);

    for h in 2..=max_h {
        let prev = &reach[h - 1];
        let mut cur = vec![vec![false; n as usize + 1]; m];
        let mut any = false;
        #[allow(clippy::needless_range_loop)] // `jj` also parameterizes the flow query
        for jj in 0..m {
            // For each i ≠ jj, find whether some (i, r_i) flows to (jj, s) with
            // i reaching h-1 by r_i.
            for s in 0..=n {
                let ok = (0..m).filter(|&i| i != jj).all(|i| {
                    (0..=s).any(|ri| {
                        prev[i][ri as usize]
                            && flow.flows_to(
                                ProcessId::new(i as u32),
                                Round::new(ri),
                                ProcessId::new(jj as u32),
                                Round::new(s),
                            )
                    })
                });
                if ok {
                    cur[jj][s as usize] = true;
                    any = true;
                }
            }
        }
        reach.push(cur);
        if !any {
            break;
        }
    }

    let mut best = 0;
    for (h, table) in reach.iter().enumerate() {
        if table[j.index()][r.index()] {
            best = h as u32;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn r(i: u32) -> Round {
        Round::new(i)
    }

    /// A random run over the graph: each input/message kept with probability `keep`.
    fn random_run<R: Rng>(g: &Graph, n: u32, keep: f64, rng: &mut R) -> Run {
        let mut run = Run::good(g, n);
        for i in g.vertices() {
            if !rng.gen_bool(keep) {
                run.remove_input(i);
            }
        }
        let slots: Vec<_> = run.messages().collect();
        for s in slots {
            if !rng.gen_bool(keep) {
                run.remove_message(s.from, s.to, s.round);
            }
        }
        run
    }

    #[test]
    fn empty_run_has_level_zero() {
        let table = levels(&Run::empty(3, 4));
        assert_eq!(table.min_level(), 0);
        assert_eq!(table.max_level(), 0);
    }

    #[test]
    fn input_without_messages_gives_level_one() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::empty(2, 3);
        run.add_input(p(0));
        let _ = g;
        let table = levels(&run);
        assert_eq!(table.level(p(0)), 1);
        assert_eq!(table.level(p(1)), 0);
        assert_eq!(table.min_level(), 0);
    }

    #[test]
    fn good_run_levels_climb_one_per_round() {
        // Two processes, all messages delivered: at end of round r the level
        // is r+1 (hear input at round 0, then one exchange per round).
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 5);
        let table = levels(&run);
        for i in [p(0), p(1)] {
            for rr in 0..=5u32 {
                assert_eq!(table.level_at(i, r(rr)), rr + 1, "process {i} round {rr}");
            }
        }
    }

    #[test]
    fn level_monotone_in_round() {
        let g = Graph::ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let run = random_run(&g, 4, 0.6, &mut rng);
            let table = levels(&run);
            for i in g.vertices() {
                for rr in 1..=4u32 {
                    assert!(table.level_at(i, r(rr)) >= table.level_at(i, r(rr - 1)));
                }
            }
        }
    }

    #[test]
    fn gossip_matches_definition_small_random() {
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..30 {
            let run = random_run(&g, 3, 0.5, &mut rng);
            let fast = levels(&run);
            let fast_m = modified_levels(&run);
            for i in g.vertices() {
                for rr in 0..=3u32 {
                    assert_eq!(
                        fast.level_at(i, r(rr)),
                        level_by_definition(&run, i, r(rr)),
                        "L mismatch at {i}, {rr} in {run:?}"
                    );
                    assert_eq!(
                        fast_m.level_at(i, r(rr)),
                        modified_level_by_definition(&run, i, r(rr)),
                        "ML mismatch at {i}, {rr} in {run:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn gossip_matches_definition_line_graph() {
        let g = Graph::line(3).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..20 {
            let run = random_run(&g, 4, 0.7, &mut rng);
            let fast = levels(&run);
            for i in g.vertices() {
                assert_eq!(fast.level(i), level_by_definition(&run, i, r(4)));
            }
        }
    }

    #[test]
    fn lemma_6_1_ml_within_one_of_l() {
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..50 {
            let run = random_run(&g, 4, 0.6, &mut rng);
            let l = levels(&run);
            let ml = modified_levels(&run);
            for i in g.vertices() {
                assert!(ml.level(i) <= l.level(i), "ML ≤ L");
                assert!(l.level(i) <= ml.level(i) + 1, "L - 1 ≤ ML");
            }
        }
    }

    #[test]
    fn lemma_6_2_ml_spread_at_most_one() {
        let g = Graph::ring(4).unwrap();
        let mut rng = StdRng::seed_from_u64(33);
        for _ in 0..50 {
            let run = random_run(&g, 5, 0.6, &mut rng);
            let ml = modified_levels(&run);
            // |ML_i - ML_j| ≤ 1 — but only when both are positive: processes
            // that never hear rfire stay at 0... The paper's Lemma 6.2 states
            // ML_j ≥ ML_i - 1 unconditionally; verify exactly that.
            let finals = ml.final_levels();
            let max = *finals.iter().max().unwrap();
            for &v in finals.iter() {
                assert!(
                    v + 1 >= max,
                    "Lemma 6.2 violated: finals={finals:?} in {run:?}"
                );
            }
        }
    }

    #[test]
    fn leader_cut_off_keeps_ml_low() {
        // If nobody hears from the leader's round-0 state, ML stays 0 for
        // everyone except possibly the leader itself.
        let g = Graph::complete(3).unwrap();
        let mut run = Run::good(&g, 3);
        // Destroy everything the leader ever sends.
        for rr in 1..=3u32 {
            for j in [p(1), p(2)] {
                run.remove_message(p(0), j, r(rr));
            }
        }
        let ml = modified_levels(&run);
        assert!(ml.level(p(0)) >= 1, "leader knows rfire and input");
        assert_eq!(ml.level(p(1)), 0);
        assert_eq!(ml.level(p(2)), 0);
        // Lemma 6.2 still holds: max - min <= 1 requires leader level <= 1.
        assert_eq!(ml.level(p(0)), 1);
    }

    #[test]
    fn star_graph_levels_slower() {
        // On a star, leaves only talk through the center: levels grow at
        // roughly half the complete-graph rate.
        let g = Graph::star(4).unwrap();
        let run = Run::good(&g, 6);
        let table = levels(&run);
        let complete = levels(&Run::good(&Graph::complete(4).unwrap(), 6));
        assert!(table.min_level() < complete.min_level());
        assert!(table.min_level() >= 1);
    }

    #[test]
    fn level_monotone_in_run_subset() {
        // Adding messages can only increase levels.
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(55);
        for _ in 0..20 {
            let small = random_run(&g, 3, 0.4, &mut rng);
            let mut big = small.clone();
            // Add a few random extra deliveries.
            for _ in 0..4 {
                let a = rng.gen_range(0..3u32);
                let b = (a + 1 + rng.gen_range(0..2u32)) % 3;
                let rr = rng.gen_range(1..=3u32);
                big.add_message(p(a), p(b), r(rr));
            }
            let ls = levels(&small);
            let lb = levels(&big);
            for i in g.vertices() {
                assert!(lb.level(i) >= ls.level(i));
            }
        }
    }

    #[test]
    fn lemma_5_1_level_changes_have_message_witnesses() {
        // If L_k(R) = l > 0, some delivered tuple (j, k, r) has L_k^r(R) = l:
        // levels only move when a message arrives.
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(77);
        let mut checked = 0;
        for _ in 0..40 {
            let run = random_run(&g, 4, 0.6, &mut rng);
            let table = levels(&run);
            for k in g.vertices() {
                let l = table.level(k);
                if l <= 1 {
                    // l = 1 can arise from the input (round 0), which is not
                    // a message tuple; the lemma's backward walk then ends at
                    // the input round. Only check l > 1 here.
                    continue;
                }
                checked += 1;
                let witness = run
                    .messages()
                    .filter(|s| s.to == k)
                    .any(|s| table.level_at(k, s.round) == l);
                assert!(witness, "no message witness for L_{k} = {l} in {run:?}");
            }
        }
        assert!(checked > 10, "exercised enough nontrivial cases");
    }

    #[test]
    #[should_panic(expected = "m >= 2")]
    fn single_process_panics() {
        // Construct a degenerate 1-process run directly.
        let run = Run::empty(1, 2);
        let _ = levels(&run);
    }

    #[test]
    fn scratch_min_level_matches_table_min_level() {
        // One scratch reused across runs of different graphs and horizons —
        // exactly the Monte Carlo engine's usage pattern.
        let mut scratch = LevelScratch::new();
        let mut rng = StdRng::seed_from_u64(404);
        for g in [
            Graph::complete(2).unwrap(),
            Graph::complete(3).unwrap(),
            Graph::ring(4).unwrap(),
        ] {
            for _ in 0..25 {
                let run = random_run(&g, 4, 0.55, &mut rng);
                assert_eq!(
                    min_level_into(&run, &mut scratch),
                    levels(&run).min_level(),
                    "L mismatch in {run:?}"
                );
                assert_eq!(
                    min_modified_level_into(&run, &mut scratch),
                    modified_levels(&run).min_level(),
                    "ML mismatch in {run:?}"
                );
            }
        }
    }

    #[test]
    fn frontier_matches_dense_oracle_and_extremes() {
        let mut scratch = LevelScratch::new();
        let mut rng = StdRng::seed_from_u64(909);
        for g in [
            Graph::complete(3).unwrap(),
            Graph::grid(2, 3).unwrap(),
            Graph::star(5).unwrap(),
        ] {
            for _ in 0..25 {
                let run = random_run(&g, 5, 0.5, &mut rng);
                for modified in [false, true] {
                    let table = if modified {
                        modified_levels(&run)
                    } else {
                        levels(&run)
                    };
                    let extremes = if modified {
                        modified_level_extremes_into(&run, &mut scratch)
                    } else {
                        level_extremes_into(&run, &mut scratch)
                    };
                    assert_eq!(
                        extremes,
                        (table.min_level(), table.max_level()),
                        "extremes mismatch (modified={modified}) in {run:?}"
                    );
                    assert_eq!(
                        extremes.0,
                        dense_min_level_into(&run, modified, &mut scratch),
                        "dense oracle mismatch (modified={modified}) in {run:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn frontier_accepts_edge_runs() {
        // The same schedule through both delivery representations must give
        // identical levels — this is the contract that lets the sweep engine
        // run on EdgeRun while goldens stay pinned to Run.
        use crate::run::EdgeRun;
        let g = Graph::ring(6).unwrap();
        let mut er = EdgeRun::good(&g, 5);
        let mut rng = StdRng::seed_from_u64(1234);
        let mut scratch = LevelScratch::new();
        for _ in 0..10 {
            er.reset_good();
            for e in 0..er.directed_edge_count() {
                for rr in 1..=5u32 {
                    if rng.gen_bool(0.4) {
                        er.destroy(e, r(rr));
                    }
                }
            }
            if rng.gen_bool(0.3) {
                er.remove_input(p(rng.gen_range(0..6u32)));
            }
            let dense = er.to_run();
            assert_eq!(
                modified_level_extremes_into(&er, &mut scratch),
                modified_level_extremes_into(&dense, &mut scratch),
                "EdgeRun vs Run ML mismatch in {dense:?}"
            );
            assert_eq!(
                level_extremes_into(&er, &mut scratch),
                level_extremes_into(&dense, &mut scratch),
                "EdgeRun vs Run L mismatch in {dense:?}"
            );
        }
    }

    #[test]
    fn try_levels_returns_typed_error_for_single_process() {
        let run = Run::empty(1, 2);
        let err = try_levels(&run).unwrap_err();
        assert!(err.to_string().contains("m = 1"), "{err}");
        assert!(try_modified_levels(&run).is_err());

        let g = Graph::complete(2).unwrap();
        let good = Run::good(&g, 3);
        assert_eq!(
            try_levels(&good).unwrap().final_levels(),
            levels(&good).final_levels()
        );
    }
}
