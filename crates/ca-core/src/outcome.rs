//! Execution outcomes: total attack, no attack, partial attack.
//!
//! `TA` is the event that every process outputs 1, `NA` that every process
//! outputs 0, and `PA` (the disagreement event whose probability the paper
//! bounds) is everything else.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Classification of one execution's output vector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Outcome {
    /// All processes attack (`TA`).
    TotalAttack,
    /// No process attacks (`NA`).
    NoAttack,
    /// Some pair of processes disagree (`PA`).
    PartialAttack,
}

impl Outcome {
    /// Classifies an output vector.
    ///
    /// # Panics
    ///
    /// Panics if `outputs` is empty.
    pub fn classify(outputs: &[bool]) -> Outcome {
        assert!(!outputs.is_empty(), "outcome of an empty output vector");
        let attackers = outputs.iter().filter(|&&o| o).count();
        if attackers == outputs.len() {
            Outcome::TotalAttack
        } else if attackers == 0 {
            Outcome::NoAttack
        } else {
            Outcome::PartialAttack
        }
    }

    /// Returns whether this is the disagreement event `PA`.
    pub fn is_partial(self) -> bool {
        self == Outcome::PartialAttack
    }

    /// Returns whether this is the all-attack event `TA`.
    pub fn is_total(self) -> bool {
        self == Outcome::TotalAttack
    }

    /// Returns whether this is the no-attack event `NA`.
    pub fn is_none_attack(self) -> bool {
        self == Outcome::NoAttack
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Outcome::TotalAttack => "TA",
            Outcome::NoAttack => "NA",
            Outcome::PartialAttack => "PA",
        };
        f.write_str(s)
    }
}

/// Tally of outcomes across many sampled executions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutcomeCounts {
    /// Number of total-attack executions.
    pub total_attack: u64,
    /// Number of no-attack executions.
    pub no_attack: u64,
    /// Number of partial-attack executions.
    pub partial_attack: u64,
}

impl OutcomeCounts {
    /// An empty tally.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one outcome.
    pub fn record(&mut self, o: Outcome) {
        match o {
            Outcome::TotalAttack => self.total_attack += 1,
            Outcome::NoAttack => self.no_attack += 1,
            Outcome::PartialAttack => self.partial_attack += 1,
        }
    }

    /// Total number of recorded executions.
    pub fn total(&self) -> u64 {
        self.total_attack + self.no_attack + self.partial_attack
    }

    /// Empirical `Pr[TA]`.
    pub fn ta_rate(&self) -> f64 {
        self.rate(self.total_attack)
    }

    /// Empirical `Pr[NA]`.
    pub fn na_rate(&self) -> f64 {
        self.rate(self.no_attack)
    }

    /// Empirical `Pr[PA]`.
    pub fn pa_rate(&self) -> f64 {
        self.rate(self.partial_attack)
    }

    fn rate(&self, count: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            count as f64 / t as f64
        }
    }

    /// Merges another tally into this one.
    pub fn merge(&mut self, other: &OutcomeCounts) {
        self.total_attack += other.total_attack;
        self.no_attack += other.no_attack;
        self.partial_attack += other.partial_attack;
    }
}

impl fmt::Display for OutcomeCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TA={} NA={} PA={} (n={})",
            self.total_attack,
            self.no_attack,
            self.partial_attack,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_vectors() {
        assert_eq!(Outcome::classify(&[true, true]), Outcome::TotalAttack);
        assert_eq!(Outcome::classify(&[false, false, false]), Outcome::NoAttack);
        assert_eq!(Outcome::classify(&[true, false]), Outcome::PartialAttack);
        assert_eq!(
            Outcome::classify(&[false, true, true]),
            Outcome::PartialAttack
        );
        assert_eq!(Outcome::classify(&[true]), Outcome::TotalAttack);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn classify_empty_panics() {
        Outcome::classify(&[]);
    }

    #[test]
    fn predicates() {
        assert!(Outcome::TotalAttack.is_total());
        assert!(Outcome::NoAttack.is_none_attack());
        assert!(Outcome::PartialAttack.is_partial());
        assert!(!Outcome::TotalAttack.is_partial());
    }

    #[test]
    fn counts_and_rates() {
        let mut c = OutcomeCounts::new();
        for _ in 0..6 {
            c.record(Outcome::TotalAttack);
        }
        for _ in 0..3 {
            c.record(Outcome::NoAttack);
        }
        c.record(Outcome::PartialAttack);
        assert_eq!(c.total(), 10);
        assert!((c.ta_rate() - 0.6).abs() < 1e-12);
        assert!((c.na_rate() - 0.3).abs() < 1e-12);
        assert!((c.pa_rate() - 0.1).abs() < 1e-12);
        let mut d = OutcomeCounts::new();
        d.merge(&c);
        d.merge(&c);
        assert_eq!(d.total(), 20);
        assert_eq!(d.partial_attack, 2);
    }

    #[test]
    fn empty_counts_rates_are_zero() {
        let c = OutcomeCounts::new();
        assert_eq!(c.ta_rate(), 0.0);
        assert_eq!(c.pa_rate(), 0.0);
        assert_eq!(format!("{c}"), "TA=0 NA=0 PA=0 (n=0)");
    }

    #[test]
    fn display() {
        assert_eq!(Outcome::TotalAttack.to_string(), "TA");
        assert_eq!(Outcome::NoAttack.to_string(), "NA");
        assert_eq!(Outcome::PartialAttack.to_string(), "PA");
    }
}
