//! Formal model for randomized coordinated attack.
//!
//! This crate implements, verbatim, the model of *“A Tradeoff Between Safety
//! and Liveness for Randomized Coordinated Attack Protocols”* (Varghese &
//! Lynch, PODC 1992): synchronous processes at the vertices of an undirected
//! graph, communicating over links whose messages an adversary may destroy,
//! with private random tapes.
//!
//! # Layout
//!
//! * [`graph`] — the communication graph `G(E,V)` and standard topologies.
//! * [`run`] — runs `R = I(R) ∪ M(R)`: which inputs arrive, which messages
//!   are delivered.
//! * [`tape`] — the random inputs `α_i`.
//! * [`protocol`] — the local-protocol state-machine interface
//!   (`δ_i`, `σ_i`, `O_i`).
//! * [`exec`] — the execution generator `Ex(R, α)`.
//! * [`exec_sliced`] — the 64-lane bit-sliced trial-parallel executor for
//!   counting-automaton protocols (scalar `exec` stays the oracle).
//! * [`outcome`] — total/no/partial attack classification.
//! * [`flow`] — the *flows-to* (causality) relation.
//! * [`level`] — information levels `L_i^r(R)` and modified levels
//!   `ML_i^r(R)`.
//! * [`clip`] — the clipping construction `Clip_i(R)`.
//! * [`adversary`] — adversaries as sets of runs; the strong adversary.
//! * [`rational`] — exact rational arithmetic for outcome probabilities.
//! * [`bitset`] — compact process sets.
//!
//! # Example
//!
//! Compute the information level of every process on a run where one link
//! dies halfway through:
//!
//! ```
//! use ca_core::{graph::Graph, run::Run, level::levels,
//!               ids::{ProcessId, Round}};
//!
//! let graph = Graph::complete(3)?;
//! let mut run = Run::good(&graph, 6);
//! run.cut_link_from_round(ProcessId::new(0), ProcessId::new(1), Round::new(3));
//! let table = levels(&run);
//! assert!(table.min_level() >= 1);
//! # Ok::<(), ca_core::error::ModelError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod bitset;
pub mod clip;
pub mod error;
pub mod exec;
pub mod exec_sliced;
pub mod flow;
pub mod graph;
pub mod ids;
pub mod knowledge;
pub mod level;
pub mod outcome;
pub mod protocol;
pub mod rational;
pub mod run;
pub mod tape;

pub use adversary::{Adversary, StrongAdversary};
pub use error::{CaError, ModelError};
pub use exec::{execute, execute_outputs, Execution};
pub use exec_sliced::{SlicedEngine, SlicedSpec};
pub use graph::Graph;
pub use ids::{Node, ProcessId, Round};
pub use level::{levels, modified_levels, LevelTable};
pub use outcome::{Outcome, OutcomeCounts};
pub use protocol::{Ctx, Protocol};
pub use rational::Rational;
pub use run::{MsgSlot, Run};
pub use tape::{BitTape, TapeReader, TapeSet};
