//! Bit-sliced execution of the level-counting automaton: 64 trials at once.
//!
//! The scalar engine ([`crate::exec`]) executes one `(run, tapes)` pair at a
//! time. For the protocols the Monte Carlo experiments actually measure —
//! Protocol S and the fixed-threshold baseline, both thin wrappers around the
//! paper's Figure-1 counting automaton — the per-process state is a handful
//! of small fields, and the paper's probability space (fix a run, draw tapes)
//! is embarrassingly trial-parallel. This module exploits that shape: every
//! automaton field is stored *bit-sliced* across `u64` words, with bit `l`
//! of each word belonging to trial `l` of a 64-trial group, so one pass of
//! the round loop advances 64 independent trials at once.
//!
//! # Lane layout
//!
//! For `m` processes over horizon `N`, a [`SlicedEngine`] keeps, per process
//! `i`:
//!
//! * `valid[i]` — one word; lane `l` set iff `valid_i` holds in trial `l`.
//! * `token[i]` — one word; lane `l` set iff the leader's token has flowed
//!   to `i` (the token *value* is not sliced: it is `rfire`, identical for
//!   every holder within a lane, kept per lane in [`SlicedEngine::set_rfire`]).
//! * `cnt[i]` — `cb` bit-planes (`cb` = bit width of `N + 2`, enough for the
//!   maximum count `N + 1` plus one defensive headroom bit); lane `l` of
//!   plane `p` is bit `p` of `count_i` in trial `l`.
//! * `seen[i]` — `m` words; word `k`, lane `l` set iff `k ∈ seen_i` in
//!   trial `l`.
//!
//! Count comparisons are lane-parallel most-significant-plane-down scans
//! (the private `gt_lanes`/`eq_lanes` helpers), count adoption is a masked
//! select, and the
//! Figure-1 bump (`seen = V ⟹ count += 1`) is a ripple-carry increment over
//! the planes.
//!
//! The delivery schedule reuses the round-major `M(R)` bit matrix of
//! [`crate::run::Run`]: the engine pre-indexes the base run's slots by
//! `(round, receiver)` once, and keeps one *lane mask* word per slot — lane
//! `l` set iff the slot is delivered in trial `l`. A group starts from the
//! base run in every lane ([`SlicedEngine::begin_group`]); per-trial
//! adversaries destroy slots lane by lane ([`SlicedEngine::destroy_slot_lane`]).
//!
//! # Scalar-oracle contract
//!
//! The sliced engine is an *optimization*, never a second source of truth:
//! for any group of trials it must produce exactly the outputs, counts, and
//! minimum levels the scalar engine produces for the same runs and tapes.
//! The Monte Carlo layer (`ca-sim`) pins this with differential tests
//! (sliced vs scalar tallies must be byte-identical) and falls back to the
//! scalar path whenever a protocol or sampler cannot promise the counting
//! automaton shape ([`SlicedEngine::new`] returns `None`).

use crate::ids::ProcessId;
use crate::run::Run;

/// Number of trials executed per group: one per bit of a `u64`.
pub const LANES: usize = 64;

/// Upper bound on per-buffer state words (`m · (2 + cb + m)`); larger
/// instances fall back to the scalar engine.
const MAX_STATE_WORDS: usize = 1 << 20;

/// Upper bound on delivery slots and `(round, receiver)` buckets.
const MAX_SLOTS: usize = 1 << 24;

/// What a protocol must look like to run on the sliced engine: the Figure-1
/// counting automaton (leader-originated token, validity flooding, level
/// counting) plus one of the two supported output rules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SlicedSpec {
    /// Protocol S's randomized rule: the leader draws
    /// `rfire = offset + t · u` for a unit draw `u` from the first 64 bits
    /// of its tape (and consumes nothing else; non-leaders consume no tape),
    /// and a process attacks iff it holds the token, `count ≥ 1`, and
    /// `(count + slack) as f64 ≥ rfire`.
    RandomFire {
        /// Additive offset of the firing range (0 for input-based validity,
        /// 1 for message-based).
        offset: f64,
        /// The firing range width `t = 1/ε`.
        t: f64,
        /// Decision slack (0 for standard S, 1 for the eager variant).
        slack: u32,
    },
    /// The deterministic threshold rule: attack iff the process holds the
    /// token and `count ≥ θ`. No process consumes tape bits.
    Threshold {
        /// The firing threshold `θ ≥ 1`.
        theta: u32,
    },
}

/// One double-buffered side of the sliced automaton state.
#[derive(Clone, Debug)]
struct LaneState {
    /// `valid_i` per process: one word each.
    valid: Vec<u64>,
    /// Token presence per process: one word each.
    token: Vec<u64>,
    /// `count_i` per process: `cb` bit-planes each, process-major.
    cnt: Vec<u64>,
    /// `seen_i` per process: `m` words each (one per member), process-major.
    seen: Vec<u64>,
}

impl LaneState {
    fn zeroed(m: usize, cb: usize) -> Self {
        LaneState {
            valid: vec![0; m],
            token: vec![0; m],
            cnt: vec![0; m * cb],
            seen: vec![0; m * m],
        }
    }

    fn copy_from(&mut self, src: &LaneState) {
        self.valid.copy_from_slice(&src.valid);
        self.token.copy_from_slice(&src.token);
        self.cnt.copy_from_slice(&src.cnt);
        self.seen.copy_from_slice(&src.seen);
    }
}

/// Per-group results: packed attack bits and per-lane minimum counts.
#[derive(Clone, Debug)]
pub struct GroupOutput {
    /// `attack[i]`: lane `l` set iff process `i` attacks in trial `l`.
    pub attack: Vec<u64>,
    /// `min_count[l]`: `min_i count_i` at the end of trial `l` — by
    /// Lemma 6.4 this equals the run's minimum modified level `ML(R)`.
    pub min_count: [u32; LANES],
}

/// The 64-lane bit-sliced executor for one base run and one [`SlicedSpec`].
///
/// Usage per 64-trial group: [`SlicedEngine::begin_group`], then per lane
/// destroy slots ([`SlicedEngine::destroy_slot_lane`]) and set `rfire`
/// ([`SlicedEngine::set_rfire`]) as the trial's RNG dictates, then
/// [`SlicedEngine::run_group`].
#[derive(Debug)]
pub struct SlicedEngine {
    m: usize,
    n: u32,
    /// Count bit-planes per process.
    cb: usize,
    spec: SlicedSpec,
    /// `I(R)` of the base run (inputs are not sliced: samplers that
    /// randomize inputs fall back to the scalar engine).
    has_input: Vec<bool>,
    /// Bucket boundaries into `rx_sender`/`rx_slot`: bucket
    /// `(round - 1) · m + receiver` holds that receiver's inbox entries for
    /// the round, senders ascending (the canonical inbox order).
    rx_ptr: Vec<u32>,
    /// Sender of each inbox entry.
    rx_sender: Vec<u32>,
    /// Canonical slot index of each inbox entry (into `masks`).
    rx_slot: Vec<u32>,
    /// Per-slot lane masks: lane `l` set iff the slot is delivered in
    /// trial `l`. Indexed in the base run's canonical slot order.
    masks: Vec<u64>,
    cur: LaneState,
    nxt: LaneState,
    /// Scratch: lane-wise `highcount` planes during one transition.
    hc: Vec<u64>,
    /// Per-lane `rfire` (only read under [`SlicedSpec::RandomFire`]).
    rfire: [f64; LANES],
    out: GroupOutput,
}

/// Lane-parallel `a > b` over count planes (most significant plane down).
#[inline]
fn gt_lanes(a: &[u64], b: &[u64]) -> u64 {
    let mut gt = 0u64;
    let mut eq = !0u64;
    for p in (0..a.len()).rev() {
        gt |= eq & a[p] & !b[p];
        eq &= !(a[p] ^ b[p]);
    }
    gt
}

/// Lane-parallel `a == b` over count planes.
#[inline]
fn eq_lanes(a: &[u64], b: &[u64]) -> u64 {
    let mut eq = !0u64;
    for p in 0..a.len() {
        eq &= !(a[p] ^ b[p]);
    }
    eq
}

impl SlicedEngine {
    /// Builds an engine for `base` under `spec`, or `None` when the instance
    /// does not fit the sliced representation: fewer than two processes,
    /// slots outside the bit matrix (overflow), or state/slot counts past
    /// the size guards. `None` means "use the scalar engine", never an
    /// error.
    pub fn new(base: &Run, spec: SlicedSpec) -> Option<SlicedEngine> {
        let m = base.process_count();
        let n = base.horizon();
        if m < 2 || base.overflow_slot_count() != 0 {
            return None;
        }
        let slots = base.message_count();
        let buckets = (n as usize).checked_mul(m)?;
        if slots > MAX_SLOTS || buckets > MAX_SLOTS {
            return None;
        }
        // Counts reach at most n + 1; one extra headroom bit keeps the
        // ripple-carry increment from ever wrapping a lane.
        let cb = (64 - (u64::from(n) + 2).leading_zeros()) as usize;
        if m.checked_mul(2 + cb + m)? > MAX_STATE_WORDS {
            return None;
        }
        // Counting-sort the canonical slot list by (round, receiver). The
        // canonical (from, to, round) order visits each bucket's senders in
        // ascending order, so buckets inherit the scalar engine's inbox
        // order.
        let mut rx_ptr = vec![0u32; buckets + 1];
        for s in base.messages() {
            let b = (s.round.get() as usize - 1) * m + s.to.index();
            rx_ptr[b + 1] += 1;
        }
        for b in 0..buckets {
            rx_ptr[b + 1] += rx_ptr[b];
        }
        let mut cursor: Vec<u32> = rx_ptr[..buckets].to_vec();
        let mut rx_sender = vec![0u32; slots];
        let mut rx_slot = vec![0u32; slots];
        for (s_idx, s) in base.messages().enumerate() {
            let b = (s.round.get() as usize - 1) * m + s.to.index();
            let at = cursor[b] as usize;
            cursor[b] += 1;
            rx_sender[at] = s.from.index() as u32;
            rx_slot[at] = s_idx as u32;
        }
        let has_input = (0..m)
            .map(|i| base.has_input(ProcessId::new(i as u32)))
            .collect();
        Some(SlicedEngine {
            m,
            n,
            cb,
            spec,
            has_input,
            rx_ptr,
            rx_sender,
            rx_slot,
            masks: vec![!0u64; slots],
            cur: LaneState::zeroed(m, cb),
            nxt: LaneState::zeroed(m, cb),
            hc: vec![0; cb],
            rfire: [0.0; LANES],
            out: GroupOutput {
                attack: vec![0; m],
                min_count: [0; LANES],
            },
        })
    }

    /// Number of delivery slots in the base run (the valid range of
    /// [`SlicedEngine::destroy_slot_lane`]'s slot index, in canonical slot
    /// order).
    pub fn slot_count(&self) -> usize {
        self.masks.len()
    }

    /// The spec this engine executes.
    pub fn spec(&self) -> SlicedSpec {
        self.spec
    }

    /// Resets the engine for a fresh 64-trial group: every lane starts from
    /// the base run (all slots delivered) and the automaton's initial
    /// states — the leader holds the token, processes in `I(R)` are valid,
    /// and `count = 1, seen = {i}` exactly where `valid ∧ token`.
    pub fn begin_group(&mut self) {
        self.masks.fill(!0);
        let m = self.m;
        let cur = &mut self.cur;
        cur.valid.fill(0);
        cur.token.fill(0);
        cur.cnt.fill(0);
        cur.seen.fill(0);
        for (i, &inp) in self.has_input.iter().enumerate() {
            if inp {
                cur.valid[i] = !0;
            }
        }
        let leader = ProcessId::LEADER.index();
        cur.token[leader] = !0;
        // Only the leader can satisfy `valid ∧ token` initially.
        cur.cnt[leader * self.cb] = cur.valid[leader];
        cur.seen[leader * m + leader] = cur.valid[leader];
    }

    /// Destroys one delivery slot in one lane: `slot` indexes the base
    /// run's canonical `(from, to, round)` slot order.
    #[inline]
    pub fn destroy_slot_lane(&mut self, slot: usize, lane: usize) {
        debug_assert!(lane < LANES);
        self.masks[slot] &= !(1u64 << lane);
    }

    /// Sets lane `lane`'s `rfire` (the leader's token value under
    /// [`SlicedSpec::RandomFire`]; ignored under [`SlicedSpec::Threshold`]).
    #[inline]
    pub fn set_rfire(&mut self, lane: usize, rfire: f64) {
        self.rfire[lane] = rfire;
    }

    /// Runs all `N` rounds for the current group and extracts outputs.
    ///
    /// Lanes whose trials were never configured (a final partial group)
    /// execute the base run; callers mask them out of the tallies.
    pub fn run_group(&mut self) -> &GroupOutput {
        let m = self.m;
        let cb = self.cb;
        let n = self.n as usize;
        {
            let SlicedEngine {
                cur,
                nxt,
                hc,
                masks,
                rx_ptr,
                rx_sender,
                rx_slot,
                ..
            } = self;
            for r in 0..n {
                nxt.copy_from(cur);
                for j in 0..m {
                    let b = r * m + j;
                    let lo = rx_ptr[b] as usize;
                    let hi = rx_ptr[b + 1] as usize;
                    if lo == hi {
                        // No base-run slot targets j this round: the scalar
                        // transition is the identity (valid ∧ token ⟹
                        // count ≥ 1 is an invariant, so line 3 cannot fire
                        // without messages either).
                        continue;
                    }
                    // Gather the inbox: which lanes received anything, and
                    // the lane-wise OR of the senders' token/valid bits
                    // (exact for the token because its value is identical
                    // across holders).
                    let mut any = 0u64;
                    let mut tok_in = 0u64;
                    let mut val_in = 0u64;
                    for e in lo..hi {
                        let i = rx_sender[e] as usize;
                        let dm = masks[rx_slot[e] as usize];
                        any |= dm;
                        tok_in |= dm & cur.token[i];
                        val_in |= dm & cur.valid[i];
                    }
                    if any == 0 {
                        continue;
                    }
                    // Figure 1, lines 1–2: adopt token and validity.
                    nxt.token[j] = cur.token[j] | tok_in;
                    nxt.valid[j] = cur.valid[j] | val_in;
                    // Line 3: lanes that just satisfied `valid ∧ token`
                    // with count still 0 start counting at 1, seen = {j}.
                    let cj = j * cb;
                    let sj = j * m;
                    let mut nz = 0u64;
                    for p in 0..cb {
                        nz |= cur.cnt[cj + p];
                    }
                    let start = nxt.valid[j] & nxt.token[j] & !nz;
                    if start != 0 {
                        nxt.cnt[cj] |= start;
                        for k in 0..m {
                            nxt.seen[sj + k] &= !start;
                        }
                        nxt.seen[sj + j] |= start;
                    }
                    // Main block: only lanes that are counting and received
                    // at least one message participate.
                    let act = (nz | start) & any;
                    if act == 0 {
                        continue;
                    }
                    // highcount = lane-wise max over delivered senders.
                    hc.fill(0);
                    for e in lo..hi {
                        let i = rx_sender[e] as usize;
                        let dm = masks[rx_slot[e] as usize];
                        if dm == 0 {
                            continue;
                        }
                        let ci = &cur.cnt[i * cb..(i + 1) * cb];
                        let g = gt_lanes(ci, hc) & dm;
                        if g != 0 {
                            for p in 0..cb {
                                hc[p] = (ci[p] & g) | (hc[p] & !g);
                            }
                        }
                    }
                    // highcount > count: adopt it, clearing seen first.
                    let hgt = gt_lanes(hc, &nxt.cnt[cj..cj + cb]) & act;
                    if hgt != 0 {
                        for k in 0..m {
                            nxt.seen[sj + k] &= !hgt;
                        }
                        for (p, &h) in hc.iter().enumerate().take(cb) {
                            nxt.cnt[cj + p] = (h & hgt) | (nxt.cnt[cj + p] & !hgt);
                        }
                    }
                    // highcount == count (true on just-adopted lanes too):
                    // union the seen-sets of senders at highcount, insert
                    // self.
                    let eqm = eq_lanes(hc, &nxt.cnt[cj..cj + cb]) & act;
                    if eqm != 0 {
                        for e in lo..hi {
                            let i = rx_sender[e] as usize;
                            let dm = masks[rx_slot[e] as usize] & eqm;
                            if dm == 0 {
                                continue;
                            }
                            let sel = eq_lanes(&cur.cnt[i * cb..(i + 1) * cb], hc) & dm;
                            if sel == 0 {
                                continue;
                            }
                            for k in 0..m {
                                nxt.seen[sj + k] |= cur.seen[i * m + k] & sel;
                            }
                        }
                        nxt.seen[sj + j] |= eqm;
                    }
                    // seen = V ⟹ bump: ripple-carry increment, reset seen
                    // to {j}.
                    let mut full = act;
                    for k in 0..m {
                        full &= nxt.seen[sj + k];
                    }
                    if full != 0 {
                        let mut carry = full;
                        for p in 0..cb {
                            let x = nxt.cnt[cj + p];
                            nxt.cnt[cj + p] = x ^ carry;
                            carry &= x;
                        }
                        debug_assert_eq!(carry, 0, "count overflowed its bit-planes");
                        for k in 0..m {
                            nxt.seen[sj + k] &= !full;
                        }
                        nxt.seen[sj + j] |= full;
                    }
                }
                std::mem::swap(cur, nxt);
            }
        }
        // Extraction: transpose the count planes back to per-lane integers
        // and evaluate the output rule per (process, lane).
        self.out.min_count = [u32::MAX; LANES];
        for i in 0..m {
            let ci = &self.cur.cnt[i * cb..(i + 1) * cb];
            let tok = self.cur.token[i];
            let mut attack = 0u64;
            for lane in 0..LANES {
                let mut c: u32 = 0;
                for (p, plane) in ci.iter().enumerate() {
                    c |= (((plane >> lane) & 1) as u32) << p;
                }
                if c < self.out.min_count[lane] {
                    self.out.min_count[lane] = c;
                }
                let has_tok = (tok >> lane) & 1 == 1;
                let attacks = match self.spec {
                    SlicedSpec::RandomFire { slack, .. } => {
                        has_tok && c >= 1 && f64::from(c + slack) >= self.rfire[lane]
                    }
                    SlicedSpec::Threshold { theta } => has_tok && c >= theta,
                };
                if attacks {
                    attack |= 1 << lane;
                }
            }
            self.out.attack[i] = attack;
        }
        &self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::ids::Round;

    #[test]
    fn lane_comparisons() {
        // Planes encode per-lane numbers: lane 0 → a=2,b=1; lane 1 → a=1,b=3;
        // lane 2 → a=3,b=3; lane 3 → a=0,b=0.
        let a = [0b0110u64, 0b0101];
        let b = [0b0101u64, 0b0110];
        assert_eq!(gt_lanes(&a, &b), 0b0001);
        assert_eq!(gt_lanes(&b, &a), 0b0010);
        assert_eq!(eq_lanes(&a, &b), !0b0011u64);
    }

    #[test]
    fn construction_guards() {
        let g = Graph::complete(2).unwrap();
        let spec = SlicedSpec::Threshold { theta: 1 };
        assert!(
            SlicedEngine::new(&Run::empty(1, 3), spec).is_none(),
            "m < 2"
        );
        let mut overflow = Run::good(&g, 2);
        overflow.add_message(ProcessId::new(0), ProcessId::new(1), Round::new(9));
        assert!(
            SlicedEngine::new(&overflow, spec).is_none(),
            "overflow slots force the scalar path"
        );
        assert!(SlicedEngine::new(&Run::good(&g, 4), spec).is_some());
    }

    #[test]
    fn count_planes_cover_the_maximum_count() {
        let g = Graph::complete(2).unwrap();
        for n in [1u32, 2, 6, 7, 30, 31] {
            let engine =
                SlicedEngine::new(&Run::good(&g, n), SlicedSpec::Threshold { theta: 1 }).unwrap();
            // Max count is n + 1; cb must represent it (plus headroom).
            assert!(
                (1u64 << engine.cb) > u64::from(n) + 1,
                "cb = {} too small for n = {n}",
                engine.cb
            );
        }
    }

    #[test]
    fn good_run_leapfrog_counts_and_threshold_outputs() {
        // Hand-traced Figure 1 on a 2-clique (see counting.rs): after an even
        // horizon N the leader's count is N + 1, the follower's N. θ = N + 1
        // therefore splits them: the leader attacks, the follower does not.
        let g = Graph::complete(2).unwrap();
        let n = 6u32;
        let run = Run::good(&g, n);
        let mut engine = SlicedEngine::new(&run, SlicedSpec::Threshold { theta: n + 1 }).unwrap();
        engine.begin_group();
        let out = engine.run_group();
        assert_eq!(out.attack[0], !0u64, "leader count n+1 ≥ θ in every lane");
        assert_eq!(out.attack[1], 0, "follower count n < θ in every lane");
        assert!(out.min_count.iter().all(|&c| c == n), "min count = ML = n");
    }

    #[test]
    fn destroyed_lane_diverges_from_the_rest() {
        // Destroy every slot in lane 0 only: the leader never spreads the
        // token there, its count stays at 1, the follower stays at 0.
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 4);
        let mut engine = SlicedEngine::new(&run, SlicedSpec::Threshold { theta: 1 }).unwrap();
        engine.begin_group();
        for s in 0..engine.slot_count() {
            engine.destroy_slot_lane(s, 0);
        }
        let out = engine.run_group();
        assert_eq!(out.min_count[0], 0, "follower stuck at 0 in lane 0");
        assert_eq!(out.min_count[1], 4, "other lanes run the good run");
        assert_eq!(out.attack[0], !0u64, "leader has count ≥ 1 everywhere");
        assert_eq!(out.attack[1], !1u64, "follower attacks except lane 0");
    }

    #[test]
    fn random_fire_extraction_compares_against_rfire() {
        // Good run, N = 2: leader count 3, follower 2. rfire = 2.5 puts the
        // leader over and the follower under; slack 1 lifts the follower too.
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 2);
        let spec = SlicedSpec::RandomFire {
            offset: 0.0,
            t: 4.0,
            slack: 0,
        };
        let mut engine = SlicedEngine::new(&run, spec).unwrap();
        engine.begin_group();
        for lane in 0..LANES {
            engine.set_rfire(lane, 2.5);
        }
        let out = engine.run_group();
        assert_eq!(out.attack[0], !0u64);
        assert_eq!(out.attack[1], 0);
        assert!(out.min_count.iter().all(|&c| c == 2));

        let eager = SlicedSpec::RandomFire {
            offset: 0.0,
            t: 4.0,
            slack: 1,
        };
        let mut engine = SlicedEngine::new(&run, eager).unwrap();
        engine.begin_group();
        for lane in 0..LANES {
            engine.set_rfire(lane, 2.5);
        }
        let out = engine.run_group();
        assert_eq!(out.attack[1], !0u64, "slack 1: follower 2 + 1 ≥ 2.5");
    }

    #[test]
    fn no_input_means_no_counting_and_no_attack() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 3, &[]);
        let mut engine = SlicedEngine::new(&run, SlicedSpec::Threshold { theta: 1 }).unwrap();
        engine.begin_group();
        let out = engine.run_group();
        assert!(out.attack.iter().all(|&a| a == 0));
        assert!(out.min_count.iter().all(|&c| c == 0));
    }

    #[test]
    fn begin_group_resets_masks_and_state() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 3);
        let mut engine = SlicedEngine::new(&run, SlicedSpec::Threshold { theta: 1 }).unwrap();
        engine.begin_group();
        for s in 0..engine.slot_count() {
            for lane in 0..LANES {
                engine.destroy_slot_lane(s, lane);
            }
        }
        let dead = engine.run_group().min_count;
        assert!(dead.iter().all(|&c| c == 0));
        engine.begin_group();
        let fresh = engine.run_group().min_count;
        assert!(fresh.iter().all(|&c| c == 3), "reset restores the base run");
    }
}
