//! The protocol interface: per-process state machines.
//!
//! A protocol `F` is a vector of local protocols `F_i`, each a state machine
//! with two start states (input received or not), a message-generation
//! function `σ_i` (what to send to each neighbor, given the state at the end
//! of the previous round), a transition function `δ_i` (new state from old
//! state, round number, received messages, and the random tape `α_i`), and an
//! output bit `O_i` computed from the final state.
//!
//! Determinism contract: given the same context, input bit, tape, and
//! received messages, a local protocol must behave identically — all
//! randomness must come from the tape. The execution engine
//! ([`crate::exec`]) relies on this to realize the paper's probability space
//! (uniform over tapes, per fixed run).

use crate::graph::Graph;
use crate::ids::{ProcessId, Round};
use crate::tape::TapeReader;
use std::fmt::Debug;

/// Static context handed to every local-protocol callback.
#[derive(Clone, Copy, Debug)]
pub struct Ctx<'a> {
    /// The communication graph.
    pub graph: &'a Graph,
    /// The horizon `N` (number of protocol rounds).
    pub n: u32,
    /// This process's id.
    pub id: ProcessId,
}

impl<'a> Ctx<'a> {
    /// Creates a context.
    pub fn new(graph: &'a Graph, n: u32, id: ProcessId) -> Self {
        Ctx { graph, n, id }
    }

    /// Number of processes `m`.
    pub fn m(&self) -> usize {
        self.graph.len()
    }

    /// This process's neighbors.
    pub fn neighbors(&self) -> &'a [ProcessId] {
        self.graph.neighbors(self.id)
    }
}

/// A synchronous randomized protocol, described by its local state machines.
///
/// Implementations must be deterministic functions of their arguments; all
/// randomness is drawn from the provided tape reader.
pub trait Protocol {
    /// Per-process state (`q_i^r` in the paper).
    type State: Clone + Debug + PartialEq;
    /// Message payload. A `None` delivery never happens — processes send to
    /// every neighbor every round, as the model requires; encode "null
    /// messages" as a variant of this type if the protocol needs them.
    type Msg: Clone + Debug + PartialEq;

    /// Short human-readable protocol name (e.g. `"S"`).
    fn name(&self) -> &'static str;

    /// An upper bound `J` on the number of random bits any process consumes.
    fn tape_bits(&self) -> usize;

    /// The start state: `s_i^1` if `received_input`, else `s_i^0`, possibly
    /// elaborated with coins drawn from the tape (equivalent to drawing them
    /// in the first transition; the tape is independent of the run either
    /// way).
    fn init(&self, ctx: Ctx<'_>, received_input: bool, tape: &mut TapeReader<'_>) -> Self::State;

    /// The message-generation function `σ_i(q_i^{r-1}, j)`: the message this
    /// process sends to neighbor `to` in the coming round.
    fn message(&self, ctx: Ctx<'_>, state: &Self::State, to: ProcessId) -> Self::Msg;

    /// The transition function `δ_i(q_i^{r-1}, r, S_i^r, α_i)`.
    ///
    /// `received` lists the delivered messages of round `round`, sorted by
    /// sender id.
    fn transition(
        &self,
        ctx: Ctx<'_>,
        state: &Self::State,
        round: Round,
        received: &[(ProcessId, Self::Msg)],
        tape: &mut TapeReader<'_>,
    ) -> Self::State;

    /// The output bit `O_i(q_i^N)`: `true` means attack.
    fn output(&self, ctx: Ctx<'_>, state: &Self::State) -> bool;

    /// The protocol's bit-sliced execution spec, if it has one.
    ///
    /// Returning `Some(spec)` is a strong promise: the protocol's observable
    /// behavior (per-process counts, token possession, and output bits, on
    /// every run) is *exactly* the paper's Figure-1 counting automaton —
    /// leader-originated token, validity flooding, level counting — combined
    /// with the spec's output rule, and its tape discipline is exactly the
    /// spec's (under [`crate::exec_sliced::SlicedSpec::RandomFire`] the
    /// leader consumes the first 64 tape bits in `init` and nothing else
    /// consumes any; under [`crate::exec_sliced::SlicedSpec::Threshold`] no
    /// bits are consumed at all). The Monte Carlo engine uses the promise to
    /// run 64 trials per instruction stream on the
    /// [`crate::exec_sliced::SlicedEngine`]; differential tests hold the
    /// sliced path byte-identical to the scalar oracle.
    ///
    /// The default is `None`: the protocol only runs on the scalar engine.
    fn sliced_spec(&self) -> Option<crate::exec_sliced::SlicedSpec> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn ctx_accessors() {
        let g = Graph::star(4).unwrap();
        let ctx = Ctx::new(&g, 5, ProcessId::new(0));
        assert_eq!(ctx.m(), 4);
        assert_eq!(ctx.n, 5);
        assert_eq!(ctx.neighbors().len(), 3);
        let leaf = Ctx::new(&g, 5, ProcessId::new(2));
        assert_eq!(leaf.neighbors(), &[ProcessId::new(0)]);
    }
}
