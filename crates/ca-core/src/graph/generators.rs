//! Seed-deterministic topology generators for big-graph scenario sweeps.
//!
//! Every experiment before the scenario engine ran on small fixed graphs
//! (K2/K3, grids with `m ≤ 8`). This module opens the workload axis: families
//! of graphs at `m` in the hundreds to ~2000, spanning the diameter/expansion
//! spectrum the `ca sweep` tradeoff frontiers are plotted against —
//! high-diameter lattices (grid, ring), logarithmic-diameter expanders
//! (random regular), small-world rewirings (Watts–Strogatz), and heavy-tailed
//! scale-free graphs (Barabási–Albert).
//!
//! # Seed-determinism contract
//!
//! Each randomized generator is a *pure function* of its parameters and the
//! `seed`: the same `(params, seed)` produce the identical [`Graph`] on every
//! platform and every call. All randomness comes from
//! [`rand::rngs::StdRng::seed_from_u64`], whose output stream is pinned by
//! the workspace's vendored `rand`; resampling loops (for connectivity or
//! simplicity rejections) consume the same stream deterministically. Reports
//! that embed a [`TopologySpec`] therefore reproduce their graphs exactly —
//! no adjacency lists need to be serialized.
//!
//! Generated graphs are always connected and simple; constructors retry a
//! bounded number of times and return a typed error if the parameters make
//! connectivity implausible (e.g. `degree = 2` random-regular at large `m`).

use super::{Graph, MAX_PROCESSES};
use crate::error::ModelError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Retry budget for rejection loops (simplicity and connectivity): generous
/// enough that sensible parameters never hit it, small enough that hopeless
/// ones fail fast.
const MAX_ATTEMPTS: usize = 200;

/// A random `degree`-regular graph on `m` vertices (configuration model,
/// resampled until simple and connected).
///
/// Random regular graphs are expanders with high probability: diameter
/// `O(log m)` — the low-diameter end of the sweep spectrum.
///
/// # Errors
///
/// Returns an error if `degree < 2`, `degree ≥ m`, `degree · m` is odd, `m`
/// is out of the supported range, or no simple connected pairing is found
/// within the retry budget.
pub fn random_regular(m: usize, degree: usize, seed: u64) -> Result<Graph, ModelError> {
    if degree < 2 {
        return Err(ModelError::InvalidParameter {
            name: "degree",
            reason: "random-regular degree must be at least 2 for connectivity",
        });
    }
    if degree >= m {
        return Err(ModelError::InvalidParameter {
            name: "degree",
            reason: "random-regular degree must be below m",
        });
    }
    if !(degree * m).is_multiple_of(2) {
        return Err(ModelError::InvalidParameter {
            name: "degree",
            reason: "degree * m must be even (handshake lemma)",
        });
    }
    check_m(m)?;
    let mut rng = StdRng::seed_from_u64(seed);
    // Configuration model: shuffle `degree` stubs per vertex, pair
    // consecutive stubs, reject pairings with self-loops or parallel edges.
    let mut stubs: Vec<u32> = (0..m as u32).flat_map(|v| [v].repeat(degree)).collect();
    'attempt: for _ in 0..MAX_ATTEMPTS {
        shuffle(&mut stubs, &mut rng);
        let mut edges = Vec::with_capacity(stubs.len() / 2);
        for pair in stubs.chunks_exact(2) {
            if pair[0] == pair[1] {
                continue 'attempt;
            }
            edges.push((pair[0], pair[1]));
        }
        let before = edges.len();
        let g = Graph::new(m, &edges)?;
        // `Graph::new` collapses parallel edges; a shrunken edge count means
        // the pairing was not simple.
        if g.edge_count() < before || !g.is_connected() {
            continue;
        }
        return Ok(g);
    }
    Err(ModelError::InvalidParameter {
        name: "degree",
        reason: "no simple connected pairing found; raise degree or shrink m",
    })
}

/// A Watts–Strogatz small-world graph: a ring lattice where every vertex is
/// joined to its `k/2` nearest neighbors on each side, with each lattice
/// edge's far endpoint rewired to a uniform random vertex with probability
/// `beta` (avoiding self-loops and duplicates), resampled until connected.
///
/// `beta = 0` is the pure lattice (diameter `≈ m/k`); small positive `beta`
/// collapses the diameter to `O(log m)` while keeping local clustering — the
/// classic small-world middle of the sweep spectrum.
///
/// # Errors
///
/// Returns an error if `k` is odd, `k < 2`, `k ≥ m`, `beta` is outside
/// `[0, 1]`, `m` is out of the supported range, or no connected rewiring is
/// found within the retry budget.
pub fn watts_strogatz(m: usize, k: usize, beta: f64, seed: u64) -> Result<Graph, ModelError> {
    if k < 2 || !k.is_multiple_of(2) {
        return Err(ModelError::InvalidParameter {
            name: "k",
            reason: "small-world lattice degree k must be even and at least 2",
        });
    }
    if k >= m {
        return Err(ModelError::InvalidParameter {
            name: "k",
            reason: "small-world lattice degree k must be below m",
        });
    }
    if !(0.0..=1.0).contains(&beta) {
        return Err(ModelError::InvalidParameter {
            name: "beta",
            reason: "rewiring probability must be in [0, 1]",
        });
    }
    check_m(m)?;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..MAX_ATTEMPTS {
        let mut edges = Vec::with_capacity(m * k / 2);
        for v in 0..m {
            for j in 1..=k / 2 {
                edges.push(((v as u32), ((v + j) % m) as u32));
            }
        }
        let mut g = Graph::new(m, &edges)?;
        // Rewire pass in lattice-edge order: deterministic coin per edge.
        for idx in 0..edges.len() {
            if !rng.gen_bool(beta) {
                continue;
            }
            let (a, _) = edges[idx];
            // Uniform new endpoint, rejecting self-loops and existing edges.
            // Bounded retries: at k ≪ m a few draws almost always succeed;
            // giving up leaves the lattice edge in place (still a valid WS
            // sample, matching the standard "skip saturated" convention).
            for _ in 0..16 {
                let b = rng.gen_range(0..m as u32);
                let (pa, pb) = (crate::ids::ProcessId::new(a), crate::ids::ProcessId::new(b));
                if b != a && !g.has_edge(pa, pb) {
                    edges[idx] = (a, b);
                    g = Graph::new(m, &edges)?;
                    break;
                }
            }
        }
        if g.is_connected() {
            return Ok(g);
        }
    }
    Err(ModelError::InvalidParameter {
        name: "beta",
        reason: "no connected rewiring found; lower beta or raise k",
    })
}

/// A Barabási–Albert scale-free graph: starts from a complete core on
/// `attach + 1` vertices, then every new vertex attaches to `attach`
/// distinct existing vertices with probability proportional to their degree
/// (preferential attachment via the repeated-endpoints list). Connected by
/// construction; process 0 (the leader) sits in the initial core and is a
/// high-degree hub with overwhelming probability.
///
/// # Errors
///
/// Returns an error if `attach < 1`, `attach + 1 ≥ m`, or `m` is out of the
/// supported range.
pub fn barabasi_albert(m: usize, attach: usize, seed: u64) -> Result<Graph, ModelError> {
    if attach < 1 {
        return Err(ModelError::InvalidParameter {
            name: "attach",
            reason: "scale-free attachment count must be at least 1",
        });
    }
    if attach + 1 >= m {
        return Err(ModelError::InvalidParameter {
            name: "attach",
            reason: "scale-free attachment count must leave room to grow (attach + 1 < m)",
        });
    }
    check_m(m)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let core = attach + 1;
    let mut edges: Vec<(u32, u32)> = Vec::new();
    // `endpoints` holds each edge endpoint once; sampling uniformly from it
    // is sampling vertices proportionally to degree.
    let mut endpoints: Vec<u32> = Vec::new();
    for a in 0..core as u32 {
        for b in (a + 1)..core as u32 {
            edges.push((a, b));
            endpoints.push(a);
            endpoints.push(b);
        }
    }
    let mut chosen: Vec<u32> = Vec::with_capacity(attach);
    for v in core as u32..m as u32 {
        chosen.clear();
        while chosen.len() < attach {
            let target = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &target in &chosen {
            edges.push((target, v));
            endpoints.push(target);
            endpoints.push(v);
        }
    }
    Graph::new(m, &edges)
}

fn check_m(m: usize) -> Result<(), ModelError> {
    if m < 2 {
        return Err(ModelError::TooFewProcesses { got: m, min: 2 });
    }
    if m > MAX_PROCESSES {
        return Err(ModelError::TooManyProcesses {
            got: m,
            max: MAX_PROCESSES,
        });
    }
    Ok(())
}

/// In-place Fisher–Yates shuffle driven by the given RNG (the vendored
/// `rand` has no `SliceRandom`; one draw per position, back to front).
fn shuffle<T, R: Rng + ?Sized>(items: &mut [T], rng: &mut R) {
    for i in (1..items.len()).rev() {
        let j = rng.gen_range(0..=i);
        items.swap(i, j);
    }
}

/// A serializable recipe for one sweep topology: which generator, with which
/// parameters and seed. Building the same spec always yields the identical
/// graph (see the module-level seed-determinism contract), so reports embed
/// specs instead of adjacency lists.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TopologySpec {
    /// The complete graph `K_m`.
    Complete {
        /// Number of processes.
        m: usize,
    },
    /// The cycle on `m` vertices: the high-diameter extreme (`⌊m/2⌋`).
    Ring {
        /// Number of processes.
        m: usize,
    },
    /// A `rows × cols` grid lattice.
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// A `rows × cols` torus (grid with wraparound).
    Torus {
        /// Torus rows.
        rows: usize,
        /// Torus columns.
        cols: usize,
    },
    /// A random `degree`-regular expander ([`random_regular`]).
    RandomRegular {
        /// Number of processes.
        m: usize,
        /// Uniform vertex degree.
        degree: usize,
        /// Generator seed.
        seed: u64,
    },
    /// A Watts–Strogatz small-world rewiring ([`watts_strogatz`]).
    SmallWorld {
        /// Number of processes.
        m: usize,
        /// Even ring-lattice degree.
        k: usize,
        /// Per-edge rewiring probability.
        beta: f64,
        /// Generator seed.
        seed: u64,
    },
    /// A Barabási–Albert scale-free graph ([`barabasi_albert`]).
    ScaleFree {
        /// Number of processes.
        m: usize,
        /// Edges added per new vertex.
        attach: usize,
        /// Generator seed.
        seed: u64,
    },
}

impl TopologySpec {
    /// Builds the graph this spec describes.
    ///
    /// # Errors
    ///
    /// Propagates the underlying constructor's parameter validation.
    pub fn build(&self) -> Result<Graph, ModelError> {
        match *self {
            TopologySpec::Complete { m } => Graph::complete(m),
            TopologySpec::Ring { m } => Graph::ring(m),
            TopologySpec::Grid { rows, cols } => Graph::grid(rows, cols),
            TopologySpec::Torus { rows, cols } => Graph::torus(rows, cols),
            TopologySpec::RandomRegular { m, degree, seed } => random_regular(m, degree, seed),
            TopologySpec::SmallWorld { m, k, beta, seed } => watts_strogatz(m, k, beta, seed),
            TopologySpec::ScaleFree { m, attach, seed } => barabasi_albert(m, attach, seed),
        }
    }

    /// A short stable name for tables and reports (e.g. `grid25x40`,
    /// `small-world1000`).
    pub fn name(&self) -> String {
        match *self {
            TopologySpec::Complete { m } => format!("k{m}"),
            TopologySpec::Ring { m } => format!("ring{m}"),
            TopologySpec::Grid { rows, cols } => format!("grid{rows}x{cols}"),
            TopologySpec::Torus { rows, cols } => format!("torus{rows}x{cols}"),
            TopologySpec::RandomRegular { m, degree, .. } => format!("regular{m}d{degree}"),
            TopologySpec::SmallWorld { m, k, .. } => format!("small-world{m}k{k}"),
            TopologySpec::ScaleFree { m, attach, .. } => format!("scale-free{m}a{attach}"),
        }
    }

    /// The near-square grid spec with `rows · cols = m` (the factor pair
    /// closest to √m); falls back to a ring when `m` is prime (a `1 × m`
    /// grid would be the line).
    pub fn near_square_grid(m: usize) -> TopologySpec {
        let mut best = None;
        let mut r = 2;
        while r * r <= m {
            if m.is_multiple_of(r) {
                best = Some(r);
            }
            r += 1;
        }
        match best {
            Some(rows) => TopologySpec::Grid {
                rows,
                cols: m / rows,
            },
            None => TopologySpec::Ring { m },
        }
    }
}

/// Summary statistics of a generated topology: the x-axis material for the
/// sweep's tradeoff frontiers (diameter for distance, mean degree for
/// expansion proxy). All-integer so reports stay byte-stable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of processes.
    pub m: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Minimum vertex degree.
    pub degree_min: usize,
    /// Maximum vertex degree.
    pub degree_max: usize,
    /// Graph diameter (generated graphs are always connected).
    pub diameter: u32,
}

impl GraphStats {
    /// Computes the stats of a connected graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is disconnected (generator outputs never are).
    pub fn of(graph: &Graph) -> GraphStats {
        let degrees: Vec<usize> = graph.vertices().map(|v| graph.neighbors(v).len()).collect();
        GraphStats {
            m: graph.len(),
            edges: graph.edge_count(),
            degree_min: degrees.iter().copied().min().expect("m >= 2"),
            degree_max: degrees.iter().copied().max().expect("m >= 2"),
            diameter: graph.diameter().expect("stats need a connected graph"),
        }
    }

    /// Mean vertex degree (`2·|E| / m`).
    pub fn degree_mean(&self) -> f64 {
        2.0 * self.edges as f64 / self.m as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_regular_is_regular_connected_and_deterministic() {
        let g = random_regular(64, 4, 7).unwrap();
        assert_eq!(g.len(), 64);
        assert!(g.is_connected());
        for v in g.vertices() {
            assert_eq!(g.neighbors(v).len(), 4, "vertex {v}");
        }
        let again = random_regular(64, 4, 7).unwrap();
        assert_eq!(g, again, "same (params, seed) must rebuild the same graph");
        let other = random_regular(64, 4, 8).unwrap();
        assert_ne!(g, other, "a different seed should give a different graph");
    }

    #[test]
    fn random_regular_rejects_bad_parameters() {
        assert!(random_regular(10, 1, 0).is_err());
        assert!(random_regular(10, 10, 0).is_err());
        assert!(random_regular(9, 3, 0).is_err(), "odd degree sum");
        assert!(random_regular(1, 2, 0).is_err());
    }

    #[test]
    fn watts_strogatz_shrinks_diameter_over_lattice() {
        let lattice = watts_strogatz(128, 4, 0.0, 3).unwrap();
        let rewired = watts_strogatz(128, 4, 0.2, 3).unwrap();
        assert!(lattice.is_connected());
        assert!(rewired.is_connected());
        // beta = 0 is exactly the ring lattice: every degree is k.
        for v in lattice.vertices() {
            assert_eq!(lattice.neighbors(v).len(), 4);
        }
        assert!(
            rewired.diameter().unwrap() < lattice.diameter().unwrap(),
            "rewiring must create shortcuts: {} !< {}",
            rewired.diameter().unwrap(),
            lattice.diameter().unwrap()
        );
        assert_eq!(rewired, watts_strogatz(128, 4, 0.2, 3).unwrap());
    }

    #[test]
    fn watts_strogatz_rejects_bad_parameters() {
        assert!(watts_strogatz(16, 3, 0.1, 0).is_err(), "odd k");
        assert!(watts_strogatz(16, 0, 0.1, 0).is_err());
        assert!(watts_strogatz(16, 16, 0.1, 0).is_err());
        assert!(watts_strogatz(16, 4, 1.5, 0).is_err());
    }

    #[test]
    fn barabasi_albert_grows_hubs() {
        let g = barabasi_albert(256, 3, 11).unwrap();
        assert!(g.is_connected());
        assert_eq!(
            g.edge_count(),
            6 + (256 - 4) * 3,
            "core + attach per vertex"
        );
        let stats = GraphStats::of(&g);
        assert!(
            stats.degree_max >= 3 * stats.degree_min,
            "scale-free degree spread expected, got {stats:?}"
        );
        assert_eq!(g, barabasi_albert(256, 3, 11).unwrap());
        assert!(barabasi_albert(4, 0, 0).is_err());
        assert!(barabasi_albert(3, 3, 0).is_err());
    }

    #[test]
    fn generators_reach_sweep_scale() {
        // The acceptance scale: m = 1000 for every randomized family, and
        // the MAX_PROCESSES rail at ~2000.
        for g in [
            random_regular(1000, 4, 1).unwrap(),
            watts_strogatz(1000, 6, 0.1, 1).unwrap(),
            barabasi_albert(1000, 3, 1).unwrap(),
        ] {
            assert_eq!(g.len(), 1000);
            assert!(g.is_connected());
            let stats = GraphStats::of(&g);
            assert!(stats.diameter < 40, "sweep-scale graphs stay shallow");
        }
        assert!(random_regular(2048, 4, 1).is_ok());
        assert!(random_regular(2049, 4, 1).is_err());
    }

    #[test]
    fn spec_builds_match_direct_constructors() {
        let cases = [
            (TopologySpec::Complete { m: 5 }, Graph::complete(5).unwrap()),
            (TopologySpec::Ring { m: 9 }, Graph::ring(9).unwrap()),
            (
                TopologySpec::Grid { rows: 3, cols: 4 },
                Graph::grid(3, 4).unwrap(),
            ),
            (
                TopologySpec::Torus { rows: 3, cols: 5 },
                Graph::torus(3, 5).unwrap(),
            ),
            (
                TopologySpec::RandomRegular {
                    m: 32,
                    degree: 4,
                    seed: 5,
                },
                random_regular(32, 4, 5).unwrap(),
            ),
            (
                TopologySpec::SmallWorld {
                    m: 32,
                    k: 4,
                    beta: 0.1,
                    seed: 5,
                },
                watts_strogatz(32, 4, 0.1, 5).unwrap(),
            ),
            (
                TopologySpec::ScaleFree {
                    m: 32,
                    attach: 2,
                    seed: 5,
                },
                barabasi_albert(32, 2, 5).unwrap(),
            ),
        ];
        for (spec, expected) in cases {
            assert_eq!(spec.build().unwrap(), expected, "{}", spec.name());
        }
    }

    #[test]
    fn spec_serde_round_trips() {
        let specs = vec![
            TopologySpec::Grid { rows: 25, cols: 40 },
            TopologySpec::SmallWorld {
                m: 1000,
                k: 6,
                beta: 0.1,
                seed: 42,
            },
            TopologySpec::ScaleFree {
                m: 1000,
                attach: 3,
                seed: 42,
            },
            TopologySpec::RandomRegular {
                m: 500,
                degree: 4,
                seed: 9,
            },
            TopologySpec::Ring { m: 64 },
        ];
        let json = serde::json::to_string_pretty(&specs).unwrap();
        let back: Vec<TopologySpec> = serde::json::from_str(&json).unwrap();
        assert_eq!(back, specs);
    }

    #[test]
    fn near_square_grid_factors_or_falls_back() {
        assert_eq!(
            TopologySpec::near_square_grid(1000),
            TopologySpec::Grid { rows: 25, cols: 40 }
        );
        assert_eq!(
            TopologySpec::near_square_grid(96),
            TopologySpec::Grid { rows: 8, cols: 12 }
        );
        assert_eq!(
            TopologySpec::near_square_grid(13),
            TopologySpec::Ring { m: 13 }
        );
    }

    #[test]
    fn stats_report_diameter_and_degrees() {
        let stats = GraphStats::of(&Graph::grid(4, 5).unwrap());
        assert_eq!(stats.m, 20);
        assert_eq!(stats.edges, 31);
        assert_eq!(stats.degree_min, 2);
        assert_eq!(stats.degree_max, 4);
        assert_eq!(stats.diameter, 7);
        assert!((stats.degree_mean() - 3.1).abs() < 1e-12);
    }
}
