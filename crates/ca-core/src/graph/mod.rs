//! The communication graph `G(E, V)`.
//!
//! The generals sit at the vertices of an undirected graph; every undirected
//! edge carries messages independently in each direction and each round, and
//! the adversary may destroy any subset of them. This module provides the
//! graph type plus the standard topologies used by the experiments (complete,
//! line, ring, star, balanced tree, grid, Erdős–Rényi), and the graph
//! algorithms the paper's constructions need: connectivity, diameter (the
//! usual-case assumption of Theorem A.1 requires `diameter ≤ N`), and BFS
//! spanning trees (Lemma A.6 builds a run from a spanning tree rooted at
//! process 1).

use crate::error::ModelError;
use crate::ids::ProcessId;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

pub mod generators;

pub use generators::{GraphStats, TopologySpec};

/// Maximum number of processes supported. The seen-sets in protocol messages
/// and the level frontier are hybrid inline/heap [`crate::bitset::BitSet`]s,
/// so the bound is a sanity rail against accidental quadratic blowups (a
/// `Run`'s delivery matrix is `m²` bits per round), not a representation
/// limit; it is sized for the big-graph scenario sweeps (`ca sweep` at
/// `m` in the hundreds to ~2000).
pub const MAX_PROCESSES: usize = 2048;

/// An undirected communication graph over processes `0..m`.
///
/// # Examples
///
/// ```
/// use ca_core::graph::Graph;
/// use ca_core::ids::ProcessId;
/// let g = Graph::complete(3)?;
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.edge_count(), 3);
/// assert!(g.has_edge(ProcessId::new(0), ProcessId::new(2)));
/// assert_eq!(g.diameter(), Some(1));
/// # Ok::<(), ca_core::error::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    m: usize,
    /// Sorted adjacency list per vertex.
    adj: Vec<Vec<ProcessId>>,
    /// Sorted list of undirected edges (a < b).
    edges: Vec<(ProcessId, ProcessId)>,
}

impl Graph {
    /// Creates a graph over `m` vertices from a list of undirected edges.
    ///
    /// Duplicate edges are collapsed. Vertices are `0..m`.
    ///
    /// # Errors
    ///
    /// Returns an error if `m < 2`, `m > MAX_PROCESSES`, an endpoint is out of
    /// range, or an edge is a self-loop.
    pub fn new(m: usize, edge_list: &[(u32, u32)]) -> Result<Self, ModelError> {
        if m < 2 {
            return Err(ModelError::TooFewProcesses { got: m, min: 2 });
        }
        if m > MAX_PROCESSES {
            return Err(ModelError::TooManyProcesses {
                got: m,
                max: MAX_PROCESSES,
            });
        }
        let mut edges = Vec::with_capacity(edge_list.len());
        for &(a, b) in edge_list {
            let (a, b) = (a as usize, b as usize);
            if a >= m {
                return Err(ModelError::VertexOutOfRange { vertex: a, m });
            }
            if b >= m {
                return Err(ModelError::VertexOutOfRange { vertex: b, m });
            }
            if a == b {
                return Err(ModelError::SelfLoop { vertex: a });
            }
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            edges.push((ProcessId::new(lo as u32), ProcessId::new(hi as u32)));
        }
        edges.sort_unstable();
        edges.dedup();
        let mut adj = vec![Vec::new(); m];
        for &(a, b) in &edges {
            adj[a.index()].push(b);
            adj[b.index()].push(a);
        }
        for list in adj.iter_mut() {
            list.sort_unstable();
        }
        Ok(Graph { m, adj, edges })
    }

    /// The complete graph `K_m`.
    ///
    /// # Errors
    ///
    /// Returns an error if `m` is out of the supported range.
    pub fn complete(m: usize) -> Result<Self, ModelError> {
        let mut edges = Vec::new();
        for a in 0..m as u32 {
            for b in (a + 1)..m as u32 {
                edges.push((a, b));
            }
        }
        Graph::new(m, &edges)
    }

    /// The line (path) graph `0 - 1 - … - m-1`.
    ///
    /// # Errors
    ///
    /// Returns an error if `m` is out of the supported range.
    pub fn line(m: usize) -> Result<Self, ModelError> {
        let edges: Vec<_> = (0..m.saturating_sub(1) as u32)
            .map(|i| (i, i + 1))
            .collect();
        Graph::new(m, &edges)
    }

    /// The ring (cycle) graph.
    ///
    /// # Errors
    ///
    /// Returns an error if `m < 3` (a 2-cycle would duplicate the single edge)
    /// or `m` is out of the supported range.
    pub fn ring(m: usize) -> Result<Self, ModelError> {
        if m < 3 {
            return Err(ModelError::TooFewProcesses { got: m, min: 3 });
        }
        let mut edges: Vec<_> = (0..m as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((m as u32 - 1, 0));
        Graph::new(m, &edges)
    }

    /// The star graph with vertex 0 (the leader) at the center.
    ///
    /// # Errors
    ///
    /// Returns an error if `m` is out of the supported range.
    pub fn star(m: usize) -> Result<Self, ModelError> {
        let edges: Vec<_> = (1..m as u32).map(|i| (0, i)).collect();
        Graph::new(m, &edges)
    }

    /// A balanced tree of the given branching factor rooted at vertex 0.
    ///
    /// # Errors
    ///
    /// Returns an error if `branching == 0` or `m` is out of the supported range.
    pub fn balanced_tree(m: usize, branching: usize) -> Result<Self, ModelError> {
        if branching == 0 {
            return Err(ModelError::InvalidParameter {
                name: "branching",
                reason: "must be at least 1",
            });
        }
        let edges: Vec<_> = (1..m as u32)
            .map(|i| (((i as usize - 1) / branching) as u32, i))
            .collect();
        Graph::new(m, &edges)
    }

    /// A `rows × cols` grid graph (`m = rows * cols`).
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is 0 or `rows*cols` is out of range.
    pub fn grid(rows: usize, cols: usize) -> Result<Self, ModelError> {
        if rows == 0 || cols == 0 {
            return Err(ModelError::InvalidParameter {
                name: "rows/cols",
                reason: "grid dimensions must be positive",
            });
        }
        let m = rows * cols;
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                if c + 1 < cols {
                    edges.push((id(r, c), id(r, c + 1)));
                }
                if r + 1 < rows {
                    edges.push((id(r, c), id(r + 1, c)));
                }
            }
        }
        Graph::new(m, &edges)
    }

    /// The `d`-dimensional hypercube (`m = 2^d` vertices).
    ///
    /// # Errors
    ///
    /// Returns an error if `d == 0` or `2^d` exceeds the supported range.
    pub fn hypercube(d: u32) -> Result<Self, ModelError> {
        if d == 0 {
            return Err(ModelError::InvalidParameter {
                name: "d",
                reason: "hypercube dimension must be at least 1",
            });
        }
        if (1usize << d) > MAX_PROCESSES {
            return Err(ModelError::TooManyProcesses {
                got: 1usize << d,
                max: MAX_PROCESSES,
            });
        }
        let m = 1usize << d;
        let mut edges = Vec::new();
        for v in 0..m as u32 {
            for bit in 0..d {
                let w = v ^ (1 << bit);
                if v < w {
                    edges.push((v, w));
                }
            }
        }
        Graph::new(m, &edges)
    }

    /// A `rows × cols` torus (grid with wraparound edges). Requires both
    /// dimensions ≥ 3 so wraparound edges are distinct.
    ///
    /// # Errors
    ///
    /// Returns an error if either dimension is < 3 or `rows*cols` is out of range.
    pub fn torus(rows: usize, cols: usize) -> Result<Self, ModelError> {
        if rows < 3 || cols < 3 {
            return Err(ModelError::InvalidParameter {
                name: "rows/cols",
                reason: "torus dimensions must be at least 3",
            });
        }
        let m = rows * cols;
        let id = |r: usize, c: usize| (r * cols + c) as u32;
        let mut edges = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                edges.push((id(r, c), id(r, (c + 1) % cols)));
                edges.push((id(r, c), id((r + 1) % rows, c)));
            }
        }
        Graph::new(m, &edges)
    }

    /// An Erdős–Rényi `G(m, p)` random graph, re-sampled until connected.
    ///
    /// # Errors
    ///
    /// Returns an error if `m` is out of range or `p` is not in `[0, 1]`, or
    /// if no connected sample is found within a generous retry budget (only
    /// possible for very small `p`).
    pub fn random_connected<R: Rng + ?Sized>(
        m: usize,
        p: f64,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(ModelError::InvalidParameter {
                name: "p",
                reason: "edge probability must be in [0, 1]",
            });
        }
        for _ in 0..1000 {
            let mut edges = Vec::new();
            for a in 0..m as u32 {
                for b in (a + 1)..m as u32 {
                    if rng.gen_bool(p) {
                        edges.push((a, b));
                    }
                }
            }
            let g = Graph::new(m, &edges)?;
            if g.is_connected() {
                return Ok(g);
            }
        }
        Err(ModelError::InvalidParameter {
            name: "p",
            reason: "failed to sample a connected graph; p too small",
        })
    }

    /// Number of vertices `m`.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Returns whether the graph has no vertices (never true: `m ≥ 2`).
    pub fn is_empty(&self) -> bool {
        self.m == 0
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The sorted undirected edge list (each edge appears once, `a < b`).
    pub fn edges(&self) -> &[(ProcessId, ProcessId)] {
        &self.edges
    }

    /// Iterates over the *directed* edges `(i, j)`: both orientations of every
    /// undirected edge. Message slots in a run are directed.
    pub fn directed_edges(&self) -> impl Iterator<Item = (ProcessId, ProcessId)> + '_ {
        self.edges.iter().flat_map(|&(a, b)| [(a, b), (b, a)])
    }

    /// The neighbors of `v`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: ProcessId) -> &[ProcessId] {
        &self.adj[v.index()]
    }

    /// Returns whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: ProcessId, b: ProcessId) -> bool {
        a.index() < self.m && self.adj[a.index()].binary_search(&b).is_ok()
    }

    /// Iterates over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = ProcessId> + Clone {
        ProcessId::all(self.m)
    }

    /// BFS distances from `src`; `None` for unreachable vertices.
    ///
    /// # Panics
    ///
    /// Panics if `src` is out of range.
    pub fn bfs_distances(&self, src: ProcessId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.m];
        dist[src.index()] = Some(0);
        let mut q = VecDeque::from([(src, 0u32)]);
        while let Some((v, d)) = q.pop_front() {
            for &w in self.neighbors(v) {
                if dist[w.index()].is_none() {
                    dist[w.index()] = Some(d + 1);
                    q.push_back((w, d + 1));
                }
            }
        }
        dist
    }

    /// Returns whether the graph is connected.
    pub fn is_connected(&self) -> bool {
        self.bfs_distances(ProcessId::new(0))
            .iter()
            .all(|d| d.is_some())
    }

    /// The diameter (longest shortest path), or `None` if disconnected.
    pub fn diameter(&self) -> Option<u32> {
        let mut best = 0;
        for v in self.vertices() {
            let dist = self.bfs_distances(v);
            for d in dist {
                best = best.max(d?);
            }
        }
        Some(best)
    }

    /// The eccentricity of `v` (max distance to any vertex), or `None` if
    /// some vertex is unreachable from `v`.
    pub fn eccentricity(&self, v: ProcessId) -> Option<u32> {
        let mut best = 0;
        for d in self.bfs_distances(v) {
            best = best.max(d?);
        }
        Some(best)
    }

    /// A BFS spanning tree rooted at `root`: `parent[v]` is `v`'s parent, and
    /// `parent[root]` is `None`. Returns `None` if the graph is disconnected.
    ///
    /// Lemma A.6 uses the tree rooted at the leader to build a run with
    /// `ML(R) = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range.
    pub fn spanning_tree(&self, root: ProcessId) -> Option<Vec<Option<ProcessId>>> {
        let mut parent: Vec<Option<ProcessId>> = vec![None; self.m];
        let mut seen = vec![false; self.m];
        seen[root.index()] = true;
        let mut q = VecDeque::from([root]);
        while let Some(v) = q.pop_front() {
            for &w in self.neighbors(v) {
                if !seen[w.index()] {
                    seen[w.index()] = true;
                    parent[w.index()] = Some(v);
                    q.push_back(w);
                }
            }
        }
        if seen.iter().all(|&s| s) {
            Some(parent)
        } else {
            None
        }
    }

    /// The depth of each vertex in the BFS spanning tree rooted at `root`
    /// (root has depth 0), or `None` if disconnected.
    pub fn tree_depths(&self, root: ProcessId) -> Option<Vec<u32>> {
        self.bfs_distances(root)
            .into_iter()
            .collect::<Option<Vec<_>>>()
    }
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("m", &self.m)
            .field("edges", &self.edges)
            .finish()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "graph(m={}, |E|={})", self.m, self.edges.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn complete_graph_properties() {
        let g = Graph::complete(5).unwrap();
        assert_eq!(g.len(), 5);
        assert_eq!(g.edge_count(), 10);
        assert_eq!(g.diameter(), Some(1));
        assert!(g.is_connected());
        assert_eq!(g.neighbors(p(2)).len(), 4);
        assert_eq!(g.directed_edges().count(), 20);
    }

    #[test]
    fn line_graph_properties() {
        let g = Graph::line(4).unwrap();
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.diameter(), Some(3));
        assert!(g.has_edge(p(1), p(2)));
        assert!(!g.has_edge(p(0), p(2)));
        assert_eq!(
            g.bfs_distances(p(0)),
            vec![Some(0), Some(1), Some(2), Some(3)]
        );
    }

    #[test]
    fn ring_graph_properties() {
        let g = Graph::ring(6).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), Some(3));
        assert!(g.has_edge(p(5), p(0)));
        assert!(Graph::ring(2).is_err());
    }

    #[test]
    fn star_graph_properties() {
        let g = Graph::star(7).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.diameter(), Some(2));
        assert_eq!(g.neighbors(p(0)).len(), 6);
        assert_eq!(g.eccentricity(p(0)), Some(1));
        assert_eq!(g.eccentricity(p(3)), Some(2));
    }

    #[test]
    fn balanced_tree_properties() {
        let g = Graph::balanced_tree(7, 2).unwrap();
        assert_eq!(g.edge_count(), 6);
        assert!(g.has_edge(p(0), p(1)));
        assert!(g.has_edge(p(0), p(2)));
        assert!(g.has_edge(p(1), p(3)));
        assert!(g.has_edge(p(2), p(6)));
        assert!(g.is_connected());
        assert!(Graph::balanced_tree(4, 0).is_err());
    }

    #[test]
    fn grid_properties() {
        let g = Graph::grid(2, 3).unwrap();
        assert_eq!(g.len(), 6);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.diameter(), Some(3));
        assert!(Graph::grid(0, 3).is_err());
    }

    #[test]
    fn hypercube_properties() {
        let g = Graph::hypercube(3).unwrap();
        assert_eq!(g.len(), 8);
        assert_eq!(g.edge_count(), 12); // d * 2^d / 2
        assert_eq!(g.diameter(), Some(3));
        for v in g.vertices() {
            assert_eq!(g.neighbors(v).len(), 3);
        }
        assert!(Graph::hypercube(0).is_err());
        assert!(Graph::hypercube(12).is_err());
        assert!(Graph::hypercube(11).is_ok());
    }

    #[test]
    fn torus_properties() {
        let g = Graph::torus(3, 4).unwrap();
        assert_eq!(g.len(), 12);
        // Every vertex has degree 4 on a torus with dims ≥ 3.
        for v in g.vertices() {
            assert_eq!(g.neighbors(v).len(), 4, "vertex {v}");
        }
        assert_eq!(g.edge_count(), 24);
        assert!(g.is_connected());
        assert!(Graph::torus(2, 4).is_err());
    }

    #[test]
    fn torus_diameter_smaller_than_grid() {
        let t = Graph::torus(4, 4).unwrap();
        let g = Graph::grid(4, 4).unwrap();
        assert!(t.diameter().unwrap() < g.diameter().unwrap());
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10 {
            let g = Graph::random_connected(8, 0.4, &mut rng).unwrap();
            assert!(g.is_connected());
        }
        assert!(Graph::random_connected(8, 1.5, &mut rng).is_err());
    }

    #[test]
    fn validation_errors() {
        assert!(matches!(
            Graph::new(1, &[]),
            Err(ModelError::TooFewProcesses { .. })
        ));
        assert!(matches!(
            Graph::new(MAX_PROCESSES + 1, &[]),
            Err(ModelError::TooManyProcesses { .. })
        ));
        assert!(matches!(
            Graph::new(3, &[(0, 3)]),
            Err(ModelError::VertexOutOfRange { .. })
        ));
        assert!(matches!(
            Graph::new(3, &[(1, 1)]),
            Err(ModelError::SelfLoop { .. })
        ));
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = Graph::new(3, &[(0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn disconnected_graph() {
        let g = Graph::new(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!g.is_connected());
        assert_eq!(g.diameter(), None);
        assert!(g.spanning_tree(p(0)).is_none());
    }

    #[test]
    fn spanning_tree_of_ring() {
        let g = Graph::ring(5).unwrap();
        let parent = g.spanning_tree(p(0)).unwrap();
        assert_eq!(parent[0], None);
        for v in 1..5 {
            let mut cur = p(v);
            let mut hops = 0;
            while let Some(par) = parent[cur.index()] {
                cur = par;
                hops += 1;
                assert!(hops <= 5, "parent chain must reach the root");
            }
            assert_eq!(cur, p(0));
        }
    }

    #[test]
    fn tree_depths_match_bfs() {
        let g = Graph::balanced_tree(7, 2).unwrap();
        let depths = g.tree_depths(p(0)).unwrap();
        assert_eq!(depths, vec![0, 1, 1, 2, 2, 2, 2]);
    }
}
