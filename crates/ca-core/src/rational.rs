//! Exact rational arithmetic for probabilities.
//!
//! Protocol S's only randomness is `rfire`, a uniform real in `(0, 1/ε]`, so
//! for a fixed run every outcome probability is an exact rational number
//! (lengths of subintervals divided by the interval length). Computing those
//! probabilities exactly — rather than by floating point — lets the test
//! suite assert the paper's equalities (e.g. Theorem 6.8's
//! `L(S,R) = min(1, ε·ML(R))`) with `==` instead of tolerances.
//!
//! This is a deliberately small substrate: signed `i128` numerator and
//! denominator, always normalized (gcd 1, denominator positive). The
//! quantities in this codebase are tiny (`ε = 1/t` for moderate `t`,
//! information levels bounded by `N`), so `i128` gives enormous headroom;
//! arithmetic uses checked operations and panics on overflow rather than
//! silently degrading.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number with `i128` numerator and denominator.
///
/// Always stored in lowest terms with a positive denominator.
///
/// # Examples
///
/// ```
/// use ca_core::rational::Rational;
/// let third = Rational::new(1, 3);
/// let sixth = Rational::new(1, 6);
/// assert_eq!(third + sixth, Rational::new(1, 2));
/// assert_eq!(third * Rational::from(3i64), Rational::ONE);
/// assert!(sixth < third);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

const fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

impl Rational {
    /// The rational number 0.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational number 1.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Creates `num/den` in lowest terms.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd(num, den);
        let (mut num, mut den) = if g == 0 { (0, 1) } else { (num / g, den / g) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The numerator (in lowest terms; sign carried here).
    pub const fn numerator(self) -> i128 {
        self.num
    }

    /// The denominator (always positive).
    pub const fn denominator(self) -> i128 {
        self.den
    }

    /// Converts to the nearest `f64`.
    pub fn to_f64(self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Returns `min(self, other)`.
    pub fn min(self, other: Rational) -> Rational {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns `max(self, other)`.
    pub fn max(self, other: Rational) -> Rational {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Clamps into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(self, lo: Rational, hi: Rational) -> Rational {
        assert!(lo <= hi, "clamp with lo > hi");
        self.max(lo).min(hi)
    }

    /// Returns whether this is a probability, i.e. in `[0, 1]`.
    pub fn is_probability(self) -> bool {
        self >= Rational::ZERO && self <= Rational::ONE
    }

    /// The reciprocal `1/self`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is zero.
    pub fn recip(self) -> Rational {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// The absolute value.
    pub fn abs(self) -> Rational {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    fn checked(num: Option<i128>, den: Option<i128>) -> Rational {
        let num = num.expect("rational arithmetic overflow");
        let den = den.expect("rational arithmetic overflow");
        Rational::new(num, den)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::ZERO
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl From<u32> for Rational {
    fn from(v: u32) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        // Reduce by gcd of denominators first to delay overflow.
        let g = gcd(self.den, rhs.den);
        let (da, db) = (self.den / g, rhs.den / g);
        Rational::checked(
            self.num
                .checked_mul(db)
                .and_then(|a| rhs.num.checked_mul(da).and_then(|b| a.checked_add(b))),
            self.den.checked_mul(db),
        )
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        // Cross-reduce before multiplying.
        let g1 = gcd(self.num, rhs.den);
        let g2 = gcd(rhs.num, self.den);
        let (n1, d2) = (self.num / g1.max(1), rhs.den / g1.max(1));
        let (n2, d1) = (rhs.num / g2.max(1), self.den / g2.max(1));
        Rational::checked(n1.checked_mul(n2), d1.checked_mul(d2))
    }
}

impl Div for Rational {
    type Output = Rational;
    // Division as multiplication by the reciprocal is the intended algebra.
    #[allow(clippy::suspicious_arithmetic_impl)]
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Rational) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Rational) -> Ordering {
        // Compare a/b vs c/d by a*d vs c*b; reduce first to delay overflow.
        let g = gcd(self.den, other.den);
        let (da, db) = (self.den / g, other.den / g);
        let lhs = self
            .num
            .checked_mul(db)
            .expect("rational comparison overflow");
        let rhs = other
            .num
            .checked_mul(da)
            .expect("rational comparison overflow");
        lhs.cmp(&rhs)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, -5), Rational::ZERO);
        assert_eq!(Rational::new(1, 2).denominator(), 2);
        assert_eq!(Rational::new(-1, 2).numerator(), -1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Rational::new(1, 0);
    }

    #[test]
    fn arithmetic() {
        let a = Rational::new(1, 6);
        let b = Rational::new(1, 3);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(b - a, a);
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(b / a, Rational::from(2i64));
        assert_eq!(-a, Rational::new(-1, 6));
        assert_eq!(a.recip(), Rational::from(6i64));
        assert_eq!(Rational::new(-3, 4).abs(), Rational::new(3, 4));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(
            Rational::new(2, 6).cmp(&Rational::new(1, 3)),
            Ordering::Equal
        );
        assert_eq!(
            Rational::new(1, 3).min(Rational::new(1, 4)),
            Rational::new(1, 4)
        );
        assert_eq!(
            Rational::new(1, 3).max(Rational::new(1, 4)),
            Rational::new(1, 3)
        );
    }

    #[test]
    fn probability_helpers() {
        assert!(Rational::new(1, 2).is_probability());
        assert!(!Rational::new(3, 2).is_probability());
        assert!(!Rational::new(-1, 2).is_probability());
        assert_eq!(
            Rational::new(5, 2).clamp(Rational::ZERO, Rational::ONE),
            Rational::ONE
        );
    }

    #[test]
    fn f64_conversion() {
        assert!((Rational::new(1, 4).to_f64() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn large_values_reduce_before_overflowing() {
        // (1/3^30) + (1/3^30) style operations stay exact thanks to gcd reduction.
        let tiny = Rational::new(1, 3i128.pow(30));
        let sum = tiny + tiny;
        assert_eq!(sum, Rational::new(2, 3i128.pow(30)));
        let prod = Rational::new(3i128.pow(30), 7) * Rational::new(7, 3i128.pow(30));
        assert_eq!(prod, Rational::ONE);
    }

    #[test]
    fn display() {
        assert_eq!(Rational::new(3, 6).to_string(), "1/2");
        assert_eq!(Rational::from(5i64).to_string(), "5");
    }

    #[test]
    #[should_panic(expected = "rational arithmetic overflow")]
    fn overflow_panics_instead_of_wrapping() {
        let huge = Rational::new(i128::MAX / 2, 1);
        let _ = huge + huge + huge;
    }

    #[test]
    #[should_panic(expected = "reciprocal of zero")]
    fn zero_reciprocal_panics() {
        Rational::ZERO.recip();
    }
}
