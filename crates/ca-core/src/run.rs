//! Runs: which inputs arrive and which messages are delivered.
//!
//! A run `R = I(R) ∪ M(R)` fully describes the adversary's choices for one
//! execution: `I(R)` is the set of processes that receive the input signal
//! (tuples `(v₀, i, 0)` in the paper), and `M(R)` is the set of delivered
//! messages (tuples `(i, j, r)` with `(i,j) ∈ E` and `1 ≤ r ≤ N`). Every
//! message *not* in `M(R)` is destroyed by the adversary.
//!
//! # Representation
//!
//! `M(R)` is stored as a round-major bit matrix: one block of `u64` words per
//! round `1..=n`, each block a dense `m × m` matrix of ordered process pairs
//! (bit `from·m + to`). Membership ([`Run::delivers`]) is a single mask test,
//! per-round iteration walks set bits with `trailing_zeros`, and
//! equality/subset/union are word-wise compares — the same machinery as
//! [`crate::bitset::BitSet`]. Slots outside the matrix (a round beyond the
//! horizon, a process id `≥ m`) are kept in a small sorted side list so a
//! `Run` can still hold — and [`Run::validate`] can still reject — arbitrary
//! slots, exactly as the previous `BTreeSet` representation did.
//!
//! The canonical slot order is unchanged: [`Run::messages`] yields slots
//! sorted by `(from, to, round)` and [`Run::messages_in_round`] by
//! `(from, to)`. Samplers draw per-slot randomness in this order, which is
//! what keeps the Monte Carlo determinism goldens stable across
//! representations (see DESIGN.md).
//!
//! On the wire a run is still the explicit slot list
//! `{m, n, inputs, messages: [{from, to, round}, ...]}` — chaos-schedule
//! replay files stay readable, and files written by older versions parse
//! unchanged.

use crate::bitset::BitSet;
use crate::error::{CaError, ModelError};
use crate::graph::Graph;
use crate::ids::{ProcessId, Round};
use serde::ser::{Serialize, SerializeSeq, SerializeStruct, Serializer};
use std::fmt;

/// A directed message slot `(from, to, round)`: the message sent by `from` to
/// `to` in the given protocol round (`1..=N`).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, serde::Serialize, serde::Deserialize,
)]
pub struct MsgSlot {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Protocol round in `1..=N`.
    pub round: Round,
}

impl MsgSlot {
    /// Creates a message slot.
    #[inline]
    pub const fn new(from: ProcessId, to: ProcessId, round: Round) -> Self {
        MsgSlot { from, to, round }
    }
}

impl fmt::Display for MsgSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.from, self.to, self.round.get())
    }
}

/// A run: the adversary's complete delivery schedule for one execution.
///
/// A `Run` is parameterized by the process count `m` and horizon `n` (the
/// paper's `N`): message rounds range over `1..=n`.
///
/// # Examples
///
/// ```
/// use ca_core::graph::Graph;
/// use ca_core::run::Run;
/// use ca_core::ids::ProcessId;
///
/// let g = Graph::complete(2)?;
/// // The "good" run: every input arrives and every message is delivered.
/// let run = Run::good(&g, 4);
/// assert!(run.has_input(ProcessId::new(0)));
/// assert_eq!(run.message_count(), 2 * 4); // 2 directed edges × 4 rounds
/// # Ok::<(), ca_core::error::ModelError>(())
/// ```
#[derive(PartialEq, Eq, Hash)]
pub struct Run {
    m: usize,
    n: u32,
    inputs: BitSet,
    /// Round-major delivery matrix: `words_per_round` words per round
    /// `1..=n`, bit `from·m + to` within a round's block.
    words: Vec<u64>,
    /// Slots outside the matrix (round ∉ `1..=n` or a process id ≥ `m`),
    /// sorted by `(from, to, round)`.
    overflow: Vec<MsgSlot>,
    /// Cached `|M(R)|` (matrix bits + overflow slots).
    msg_count: usize,
}

impl Run {
    /// The empty run over `m` processes and horizon `n`: no inputs, no
    /// deliveries. (The paper's `R̃ = ∅`.)
    pub fn empty(m: usize, n: u32) -> Self {
        Run {
            m,
            n,
            inputs: BitSet::new(m),
            words: vec![0; n as usize * Self::words_per_round(m)],
            overflow: Vec::new(),
            msg_count: 0,
        }
    }

    /// The "good" run: every process receives the input and every message on
    /// every edge of `graph` is delivered in every round `1..=n`.
    pub fn good(graph: &Graph, n: u32) -> Self {
        let mut run = Run::empty(graph.len(), n);
        for p in graph.vertices() {
            run.inputs.insert(p.index());
        }
        for (a, b) in graph.directed_edges() {
            for r in Round::protocol_rounds(n) {
                run.add_message(a, b, r);
            }
        }
        run
    }

    /// A run delivering everything like [`Run::good`] but with inputs only at
    /// the given processes.
    pub fn good_with_inputs(graph: &Graph, n: u32, inputs: &[ProcessId]) -> Self {
        let mut run = Run::good(graph, n);
        run.inputs.clear();
        for &p in inputs {
            run.inputs.insert(p.index());
        }
        run
    }

    fn words_per_round(m: usize) -> usize {
        (m * m).div_ceil(64)
    }

    /// The `(word index, bit mask)` of an in-matrix slot, or `None` for a
    /// slot the matrix cannot represent (stored in the overflow list).
    fn slot_pos(&self, from: ProcessId, to: ProcessId, round: Round) -> Option<(usize, u64)> {
        let (f, t, r) = (from.index(), to.index(), round.get());
        if f < self.m && t < self.m && r >= 1 && r <= self.n {
            let bit = f * self.m + t;
            let word = (r as usize - 1) * Self::words_per_round(self.m) + bit / 64;
            Some((word, 1u64 << (bit % 64)))
        } else {
            None
        }
    }

    /// Number of processes `m`.
    pub fn process_count(&self) -> usize {
        self.m
    }

    /// The horizon `N` (last protocol round).
    pub fn horizon(&self) -> u32 {
        self.n
    }

    /// Returns whether process `i` receives the input signal (tuple `(v₀,i,0)`).
    #[inline]
    pub fn has_input(&self, i: ProcessId) -> bool {
        self.inputs.contains(i.index())
    }

    /// Returns whether any process receives the input signal (`I(R) ≠ ∅`).
    pub fn has_any_input(&self) -> bool {
        !self.inputs.is_empty()
    }

    /// The set of processes receiving the input signal.
    pub fn inputs(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.inputs.iter().map(|i| ProcessId::new(i as u32))
    }

    /// Adds the input tuple `(v₀, i, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_input(&mut self, i: ProcessId) -> &mut Self {
        self.inputs.insert(i.index());
        self
    }

    /// Removes the input tuple `(v₀, i, 0)`.
    pub fn remove_input(&mut self, i: ProcessId) -> &mut Self {
        self.inputs.remove(i.index());
        self
    }

    /// Returns whether the message `(from, to, round)` is delivered.
    #[inline]
    pub fn delivers(&self, from: ProcessId, to: ProcessId, round: Round) -> bool {
        match self.slot_pos(from, to, round) {
            Some((w, mask)) => self.words[w] & mask != 0,
            None => self
                .overflow
                .binary_search(&MsgSlot::new(from, to, round))
                .is_ok(),
        }
    }

    /// Returns whether the slot is delivered.
    #[inline]
    pub fn delivers_slot(&self, slot: MsgSlot) -> bool {
        self.delivers(slot.from, slot.to, slot.round)
    }

    /// Adds a delivered message `(from, to, round)`.
    ///
    /// The caller is responsible for only adding slots that correspond to
    /// graph edges and rounds `1..=n`; [`Run::validate`] checks this.
    pub fn add_message(&mut self, from: ProcessId, to: ProcessId, round: Round) -> &mut Self {
        match self.slot_pos(from, to, round) {
            Some((w, mask)) => {
                if self.words[w] & mask == 0 {
                    self.words[w] |= mask;
                    self.msg_count += 1;
                }
            }
            None => {
                let slot = MsgSlot::new(from, to, round);
                if let Err(i) = self.overflow.binary_search(&slot) {
                    self.overflow.insert(i, slot);
                    self.msg_count += 1;
                }
            }
        }
        self
    }

    /// Removes (destroys) a delivered message, returning whether it was present.
    pub fn remove_message(&mut self, from: ProcessId, to: ProcessId, round: Round) -> bool {
        match self.slot_pos(from, to, round) {
            Some((w, mask)) => {
                let present = self.words[w] & mask != 0;
                if present {
                    self.words[w] &= !mask;
                    self.msg_count -= 1;
                }
                present
            }
            None => {
                if let Ok(i) = self.overflow.binary_search(&MsgSlot::new(from, to, round)) {
                    self.overflow.remove(i);
                    self.msg_count -= 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Iterates over the matrix slots in canonical `(from, to, round)` order.
    ///
    /// An occupancy pass first ORs every round block together, so only pairs
    /// delivered in at least one round get their per-round probe — sparse
    /// runs skip absent pairs wholesale instead of probing `m² · n` bits.
    fn matrix_slots(&self) -> impl Iterator<Item = MsgSlot> + '_ {
        let m = self.m;
        let n = self.n;
        let wpr = Self::words_per_round(m);
        let words = &self.words;
        let mut occupied = vec![0u64; wpr];
        for (w, word) in self.words.iter().enumerate() {
            occupied[w % wpr.max(1)] |= word;
        }
        let mut word = 0usize;
        let mut bits = occupied.first().copied().unwrap_or(0);
        let pairs = std::iter::from_fn(move || loop {
            if bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                return Some(word * 64 + tz);
            }
            word += 1;
            if word >= occupied.len() {
                return None;
            }
            bits = occupied[word];
        });
        pairs.flat_map(move |pair| {
            let (word, mask) = (pair / 64, 1u64 << (pair % 64));
            (1..=n)
                .filter(move |&r| words[(r as usize - 1) * wpr + word] & mask != 0)
                .map(move |r| {
                    MsgSlot::new(
                        ProcessId::new((pair / m) as u32),
                        ProcessId::new((pair % m) as u32),
                        Round::new(r),
                    )
                })
        })
    }

    /// Merges two slot iterators that are each sorted in canonical order.
    /// (Matrix and overflow slots are disjoint, so `<=` never ties.)
    fn merge_sorted<'a>(
        a: impl Iterator<Item = MsgSlot> + 'a,
        b: impl Iterator<Item = MsgSlot> + 'a,
    ) -> impl Iterator<Item = MsgSlot> + 'a {
        let mut a = a.peekable();
        let mut b = b.peekable();
        std::iter::from_fn(move || match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if x <= y {
                    a.next()
                } else {
                    b.next()
                }
            }
            (Some(_), None) => a.next(),
            (None, _) => b.next(),
        })
    }

    /// Iterates over the delivered message slots in sorted order.
    pub fn messages(&self) -> impl Iterator<Item = MsgSlot> + '_ {
        Self::merge_sorted(self.matrix_slots(), self.overflow.iter().copied())
    }

    /// Iterates over delivered messages of one round, sorted by `(from, to)`.
    pub fn messages_in_round(&self, round: Round) -> impl Iterator<Item = MsgSlot> + '_ {
        let m = self.m;
        let r = round.get();
        let wpr = Self::words_per_round(m);
        let block = if r >= 1 && r <= self.n {
            &self.words[(r as usize - 1) * wpr..(r as usize) * wpr]
        } else {
            &[]
        };
        let mut word = 0usize;
        let mut bits = block.first().copied().unwrap_or(0);
        let matrix = std::iter::from_fn(move || loop {
            if bits != 0 {
                let tz = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let pair = word * 64 + tz;
                return Some(MsgSlot::new(
                    ProcessId::new((pair / m) as u32),
                    ProcessId::new((pair % m) as u32),
                    round,
                ));
            }
            word += 1;
            if word >= block.len() {
                return None;
            }
            bits = block[word];
        });
        let over = self
            .overflow
            .iter()
            .copied()
            .filter(move |s| s.round == round);
        Self::merge_sorted(matrix, over)
    }

    /// Calls `f` for every delivered slot of `round` in canonical `(from,
    /// to)` order — the internal-iteration twin of [`Self::messages_in_round`].
    ///
    /// Hot loops (the execution engine, the level gossip) visit every round
    /// of a run once per trial; driving the word scan directly avoids
    /// constructing the merge iterator 2·N times per trial.
    pub fn for_each_message_in_round(&self, round: Round, mut f: impl FnMut(MsgSlot)) {
        let m = self.m;
        let r = round.get();
        let wpr = Self::words_per_round(m);
        let mut over = self
            .overflow
            .iter()
            .filter(|s| s.round == round)
            .copied()
            .peekable();
        if r >= 1 && r <= self.n {
            let block = &self.words[(r as usize - 1) * wpr..(r as usize) * wpr];
            for (word, &bits) in block.iter().enumerate() {
                let mut bits = bits;
                while bits != 0 {
                    let pair = word * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let slot = MsgSlot::new(
                        ProcessId::new((pair / m) as u32),
                        ProcessId::new((pair % m) as u32),
                        round,
                    );
                    while over.peek().is_some_and(|o| *o < slot) {
                        f(over.next().expect("peeked"));
                    }
                    f(slot);
                }
            }
        }
        for slot in over {
            f(slot);
        }
    }

    /// Number of delivered messages `|M(R)|`.
    pub fn message_count(&self) -> usize {
        self.msg_count
    }

    /// Number of input tuples `|I(R)|`.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Number of delivered slots stored in the sorted overflow vector rather
    /// than the bit matrix (slots beyond the matrix's round capacity).
    ///
    /// Always 0 for runs whose messages all fit the packed representation —
    /// the common case, and the fast path the Monte Carlo engine relies on;
    /// the observability layer surfaces it as `run.overflow_slots`.
    pub fn overflow_slot_count(&self) -> usize {
        self.overflow.len()
    }

    /// Destroys every message sent in rounds `>= round`, on every edge.
    ///
    /// This is the "cut at round `round`" adversary move that defeats chains
    /// of acknowledgements (§3).
    pub fn cut_from_round(&mut self, round: Round) -> &mut Self {
        let wpr = Self::words_per_round(self.m);
        let start = ((round.get().max(1) as usize - 1) * wpr).min(self.words.len());
        for w in self.words[start..].iter_mut() {
            self.msg_count -= w.count_ones() as usize;
            *w = 0;
        }
        let before = self.overflow.len();
        self.overflow.retain(|s| s.round < round);
        self.msg_count -= before - self.overflow.len();
        self
    }

    /// Destroys every message from `from` to `to` in rounds `>= round`.
    pub fn cut_link_from_round(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        round: Round,
    ) -> &mut Self {
        if from.index() < self.m && to.index() < self.m {
            let bit = from.index() * self.m + to.index();
            let wpr = Self::words_per_round(self.m);
            let (word, mask) = (bit / 64, 1u64 << (bit % 64));
            for r in round.get().max(1)..=self.n {
                let w = (r as usize - 1) * wpr + word;
                if self.words[w] & mask != 0 {
                    self.words[w] &= !mask;
                    self.msg_count -= 1;
                }
            }
        }
        let before = self.overflow.len();
        self.overflow
            .retain(|s| !(s.from == from && s.to == to && s.round >= round));
        self.msg_count -= before - self.overflow.len();
        self
    }

    /// Returns whether `self ⊆ other` (both inputs and messages).
    pub fn is_subset(&self, other: &Run) -> bool {
        self.m == other.m
            && self.n == other.n
            && self.inputs.is_subset(&other.inputs)
            && self
                .words
                .iter()
                .zip(&other.words)
                .all(|(a, b)| a & !b == 0)
            && self
                .overflow
                .iter()
                .all(|s| other.overflow.binary_search(s).is_ok())
    }

    /// The union of two runs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn union(&self, other: &Run) -> Run {
        assert_eq!(self.m, other.m, "run process-count mismatch");
        assert_eq!(self.n, other.n, "run horizon mismatch");
        let mut out = self.clone();
        out.inputs.union_with(&other.inputs);
        for (a, b) in out.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        for s in &other.overflow {
            if let Err(i) = out.overflow.binary_search(s) {
                out.overflow.insert(i, *s);
            }
        }
        out.msg_count = out
            .words
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum::<usize>()
            + out.overflow.len();
        out
    }

    /// Validates that every message slot corresponds to an edge of `graph`
    /// and a round in `1..=n`, and that dimensions match.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first violation found.
    pub fn validate(&self, graph: &Graph) -> Result<(), ModelError> {
        if graph.len() != self.m {
            return Err(ModelError::InvalidParameter {
                name: "graph",
                reason: "graph size does not match run process count",
            });
        }
        for s in self.messages() {
            if s.round.get() < 1 || s.round.get() > self.n {
                return Err(ModelError::InvalidMessageSlot {
                    reason: "round outside 1..=N",
                });
            }
            if !graph.has_edge(s.from, s.to) {
                return Err(ModelError::InvalidMessageSlot {
                    reason: "message slot on a non-edge",
                });
            }
        }
        Ok(())
    }

    /// Enumerates **all** runs over `graph` with horizon `n` — all subsets of
    /// inputs × all subsets of message slots. Exponential; intended for
    /// exhaustive checks on tiny instances.
    ///
    /// # Panics
    ///
    /// Panics if the number of slots plus inputs exceeds
    /// [`crate::error::MAX_ENUMERATION_BITS`] (≥ 16M runs), to guard against
    /// accidental blow-ups.
    pub fn enumerate_all(graph: &Graph, n: u32) -> Vec<Run> {
        Run::try_enumerate_all(graph, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Run::enumerate_all`]: returns a typed error
    /// instead of panicking when the instance is too large to enumerate.
    pub fn try_enumerate_all(graph: &Graph, n: u32) -> Result<Vec<Run>, CaError> {
        let slots: Vec<MsgSlot> = graph
            .directed_edges()
            .flat_map(|(a, b)| Round::protocol_rounds(n).map(move |r| MsgSlot::new(a, b, r)))
            .collect();
        let bits = slots.len() + graph.len();
        crate::error::check_enumeration_bits(bits, "runs")?;
        let mut out = Vec::with_capacity(1usize << bits);
        for mask in 0u64..(1u64 << bits) {
            let mut run = Run::empty(graph.len(), n);
            for (k, p) in graph.vertices().enumerate() {
                if mask & (1 << k) != 0 {
                    run.add_input(p);
                }
            }
            for (k, s) in slots.iter().enumerate() {
                if mask & (1 << (graph.len() + k)) != 0 {
                    run.add_message(s.from, s.to, s.round);
                }
            }
            out.push(run);
        }
        Ok(out)
    }
}

/// A delivery schedule the level frontier can consume: process count,
/// horizon, inputs, and per-round delivered messages in canonical order.
///
/// Two implementations exist: the dense [`Run`] (an `m × m` matrix per
/// round — canonical, graph-agnostic, serializable) and the sparse
/// [`EdgeRun`] (one bit per directed *edge* per round — the big-graph hot
/// path, where `m²` bits per round would dwarf the actual edge set).
/// [`crate::level::min_modified_level_into`] and friends are generic over
/// this trait, so both representations ride the same frontier code.
pub trait DeliverySource {
    /// Number of processes `m`.
    fn process_count(&self) -> usize;
    /// The horizon `N` (last protocol round).
    fn horizon(&self) -> u32;
    /// Returns whether process `i` receives the input signal.
    fn has_input(&self, i: ProcessId) -> bool;
    /// Calls `f(from, to)` for every delivered message of `round` in
    /// canonical `(from, to)` order.
    fn for_each_delivery_in_round(&self, round: Round, f: impl FnMut(ProcessId, ProcessId));
}

impl DeliverySource for Run {
    fn process_count(&self) -> usize {
        self.m
    }

    fn horizon(&self) -> u32 {
        self.n
    }

    fn has_input(&self, i: ProcessId) -> bool {
        Run::has_input(self, i)
    }

    fn for_each_delivery_in_round(&self, round: Round, mut f: impl FnMut(ProcessId, ProcessId)) {
        self.for_each_message_in_round(round, |slot| f(slot.from, slot.to));
    }
}

/// An edge-keyed delivery schedule: one bit per directed edge per round.
///
/// [`Run`] spends `m²` bits per round so that any ordered pair is
/// addressable — right for the adversary-search and enumeration paths, but
/// hopeless at `m = 1000` on a sparse graph (a grid run would burn ~8.7 MB
/// where the edge set needs ~35 KB). `EdgeRun` fixes the graph up front and
/// masks only its directed edges, which is what the weak-adversary samplers
/// perturb anyway.
///
/// # Canonical order
///
/// Directed edges are stored sorted by `(from, to)`, so per-round iteration
/// is in the same canonical order as [`Run::messages_in_round`] — this is
/// what keeps sampler coin draws byte-compatible between the two
/// representations (see DESIGN.md §11). Samplers iterate *link-major*
/// (edges in `(from, to)` order, rounds ascending within each link), the
/// same order [`Run::messages`] yields slots of a good run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EdgeRun {
    m: usize,
    n: u32,
    /// Directed edges sorted by `(from, to)`.
    edges: Vec<(ProcessId, ProcessId)>,
    inputs: BitSet,
    /// Round-major delivery mask: `edges.len().div_ceil(64)` words per round
    /// `1..=n`, bit `e` within a block = `edges[e]` delivered.
    words: Vec<u64>,
}

impl EdgeRun {
    /// The "good" run over `graph`: every input arrives and every directed
    /// edge delivers in every round `1..=n`.
    pub fn good(graph: &Graph, n: u32) -> Self {
        let mut edges: Vec<(ProcessId, ProcessId)> = graph.directed_edges().collect();
        edges.sort_unstable();
        let m = graph.len();
        let wpr = edges.len().div_ceil(64);
        let mut inputs = BitSet::new(m);
        for p in graph.vertices() {
            inputs.insert(p.index());
        }
        let mut words = vec![u64::MAX; n as usize * wpr];
        // Mask off the unused tail bits of each round block so equality and
        // popcounts stay exact.
        if !edges.is_empty() && !edges.len().is_multiple_of(64) {
            let tail = u64::MAX >> (64 - edges.len() % 64);
            for r in 0..n as usize {
                words[r * wpr + wpr - 1] = tail;
            }
        }
        EdgeRun {
            m,
            n,
            edges,
            inputs,
            words,
        }
    }

    /// Resets every slot back to delivered and every input back to arriving —
    /// the per-trial reset the weak-adversary samplers start from
    /// (the edge-keyed analogue of `run.clone_from(&good)`).
    pub fn reset_good(&mut self) {
        for b in self.words.iter_mut() {
            *b = u64::MAX;
        }
        let e = self.edges.len();
        if e > 0 && !e.is_multiple_of(64) {
            let wpr = self.words_per_round();
            let tail = u64::MAX >> (64 - e % 64);
            for r in 0..self.n as usize {
                self.words[r * wpr + wpr - 1] = tail;
            }
        }
        for j in 0..self.m {
            self.inputs.insert(j);
        }
    }

    fn words_per_round(&self) -> usize {
        self.edges.len().div_ceil(64)
    }

    /// Number of processes `m`.
    pub fn process_count(&self) -> usize {
        self.m
    }

    /// The horizon `N` (last protocol round).
    pub fn horizon(&self) -> u32 {
        self.n
    }

    /// Returns whether process `i` receives the input signal.
    #[inline]
    pub fn has_input(&self, i: ProcessId) -> bool {
        self.inputs.contains(i.index())
    }

    /// The directed edges, sorted by `(from, to)` — the canonical link order
    /// samplers draw coins in.
    pub fn directed_edges(&self) -> &[(ProcessId, ProcessId)] {
        &self.edges
    }

    /// Number of directed edges.
    pub fn directed_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Removes the input signal at `i`.
    pub fn remove_input(&mut self, i: ProcessId) {
        self.inputs.remove(i.index());
    }

    /// Destroys the message on directed edge index `e` in `round`.
    ///
    /// # Panics
    ///
    /// Panics if `e` or `round` is out of range.
    #[inline]
    pub fn destroy(&mut self, e: usize, round: Round) {
        assert!(e < self.edges.len(), "edge index out of range");
        let r = round.get();
        assert!(r >= 1 && r <= self.n, "round outside 1..=N");
        let w = (r as usize - 1) * self.words_per_round() + e / 64;
        self.words[w] &= !(1u64 << (e % 64));
    }

    /// Returns whether directed edge index `e` delivers in `round`.
    #[inline]
    pub fn delivers_edge(&self, e: usize, round: Round) -> bool {
        let r = round.get();
        if e >= self.edges.len() || r < 1 || r > self.n {
            return false;
        }
        let w = (r as usize - 1) * self.words_per_round() + e / 64;
        self.words[w] & (1u64 << (e % 64)) != 0
    }

    /// Number of delivered messages.
    pub fn message_count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Converts to the dense representation (differential tests; not a hot
    /// path).
    pub fn to_run(&self) -> Run {
        let mut run = Run::empty(self.m, self.n);
        for i in self.inputs.iter() {
            run.add_input(ProcessId::new(i as u32));
        }
        for (e, &(from, to)) in self.edges.iter().enumerate() {
            for r in Round::protocol_rounds(self.n) {
                if self.delivers_edge(e, r) {
                    run.add_message(from, to, r);
                }
            }
        }
        run
    }
}

impl DeliverySource for EdgeRun {
    fn process_count(&self) -> usize {
        self.m
    }

    fn horizon(&self) -> u32 {
        self.n
    }

    fn has_input(&self, i: ProcessId) -> bool {
        EdgeRun::has_input(self, i)
    }

    fn for_each_delivery_in_round(&self, round: Round, mut f: impl FnMut(ProcessId, ProcessId)) {
        let r = round.get();
        if r < 1 || r > self.n {
            return;
        }
        let wpr = self.words_per_round();
        let block = &self.words[(r as usize - 1) * wpr..(r as usize) * wpr];
        for (word, &bits) in block.iter().enumerate() {
            let mut bits = bits;
            while bits != 0 {
                let e = word * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let (from, to) = self.edges[e];
                f(from, to);
            }
        }
    }
}

impl Clone for Run {
    fn clone(&self) -> Self {
        Run {
            m: self.m,
            n: self.n,
            inputs: self.inputs.clone(),
            words: self.words.clone(),
            overflow: self.overflow.clone(),
            msg_count: self.msg_count,
        }
    }

    /// Clones without reallocating: the scratch-run pattern in the Monte
    /// Carlo engine (`sample_into`) leans on this to reuse the destination's
    /// buffers trial after trial.
    fn clone_from(&mut self, source: &Self) {
        self.m = source.m;
        self.n = source.n;
        self.inputs.clone_from(&source.inputs);
        self.words.clone_from(&source.words);
        self.overflow.clone_from(&source.overflow);
        self.msg_count = source.msg_count;
    }
}

impl Serialize for Run {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Keep the wire format of the old derived impl: the message matrix
        // goes out as the explicit sorted slot list.
        struct SlotList<'a>(&'a Run);
        impl Serialize for SlotList<'_> {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let mut seq = serializer.serialize_seq(Some(self.0.message_count()))?;
                for s in self.0.messages() {
                    seq.serialize_element(&s)?;
                }
                seq.end()
            }
        }
        let mut st = serializer.serialize_struct("Run", 4)?;
        st.serialize_field("m", &self.m)?;
        st.serialize_field("n", &self.n)?;
        st.serialize_field("inputs", &self.inputs)?;
        st.serialize_field("messages", &SlotList(self))?;
        st.end()
    }
}

impl serde::de::Deserialize for Run {
    fn deserialize(value: &serde::json::Value) -> Result<Self, serde::json::Error> {
        let obj = value.as_object().ok_or_else(|| {
            serde::json::Error::custom(format!("expected object for Run, got {}", value.kind()))
        })?;
        let m: usize = serde::de::field(obj, "m")?;
        let n: u32 = serde::de::field(obj, "n")?;
        let mut run = Run::empty(m, n);
        run.inputs = serde::de::field(obj, "inputs")?;
        let messages: Vec<MsgSlot> = serde::de::field(obj, "messages")?;
        for s in messages {
            run.add_message(s.from, s.to, s.round);
        }
        Ok(run)
    }
}

impl fmt::Debug for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Run")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("inputs", &self.inputs)
            .field("messages", &self.messages().collect::<Vec<_>>())
            .finish()
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run(inputs={{{}}}, |M|={})",
            self.inputs()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.message_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn r(i: u32) -> Round {
        Round::new(i)
    }

    #[test]
    fn paper_example_run() {
        // The paper's example: {(v0,3,0), (1,2,6), (3,2,7)} — translated to
        // 0-based ids: input at P2, messages (P0→P1, r6) and (P2→P1, r7).
        let g = Graph::complete(3).unwrap();
        let mut run = Run::empty(3, 8);
        run.add_input(p(2));
        run.add_message(p(0), p(1), r(6));
        run.add_message(p(2), p(1), r(7));
        assert!(run.has_input(p(2)));
        assert!(!run.has_input(p(0)));
        assert!(run.delivers(p(0), p(1), r(6)));
        assert!(!run.delivers(p(1), p(0), r(6)));
        assert_eq!(run.message_count(), 2);
        run.validate(&g).unwrap();
    }

    #[test]
    fn good_run_counts() {
        let g = Graph::line(3).unwrap();
        let run = Run::good(&g, 5);
        // 2 undirected edges → 4 directed slots per round × 5 rounds.
        assert_eq!(run.message_count(), 20);
        assert_eq!(run.input_count(), 3);
        run.validate(&g).unwrap();
    }

    #[test]
    fn good_with_inputs_subset() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 2, &[p(1)]);
        assert!(!run.has_input(p(0)));
        assert!(run.has_input(p(1)));
        assert_eq!(run.input_count(), 1);
    }

    #[test]
    fn cut_from_round() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 4);
        run.cut_from_round(r(3));
        assert_eq!(run.message_count(), 4); // rounds 1,2 × 2 directions
        assert!(run.delivers(p(0), p(1), r(2)));
        assert!(!run.delivers(p(0), p(1), r(3)));
    }

    #[test]
    fn cut_link_from_round() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 3);
        run.cut_link_from_round(p(0), p(1), r(2));
        assert!(run.delivers(p(0), p(1), r(1)));
        assert!(!run.delivers(p(0), p(1), r(2)));
        assert!(run.delivers(p(1), p(0), r(3)), "other direction untouched");
    }

    #[test]
    fn subset_and_union() {
        let g = Graph::complete(2).unwrap();
        let empty = Run::empty(2, 3);
        let good = Run::good(&g, 3);
        assert!(empty.is_subset(&good));
        assert!(!good.is_subset(&empty));
        let u = empty.union(&good);
        assert_eq!(u, good);
    }

    #[test]
    fn validate_rejects_bad_slots() {
        let g = Graph::line(3).unwrap();
        let mut run = Run::empty(3, 3);
        run.add_message(p(0), p(2), r(1)); // non-edge in the line graph
        assert!(matches!(
            run.validate(&g),
            Err(ModelError::InvalidMessageSlot { .. })
        ));
        let mut run = Run::empty(3, 3);
        run.add_message(p(0), p(1), r(4)); // round out of range
        assert!(run.validate(&g).is_err());
    }

    #[test]
    fn enumerate_all_tiny() {
        let g = Graph::complete(2).unwrap();
        // 2 inputs + 2 directed edges × 1 round = 4 bits → 16 runs.
        let runs = Run::enumerate_all(&g, 1);
        assert_eq!(runs.len(), 16);
        // All must validate; exactly one is the good run.
        let good = Run::good(&g, 1);
        assert_eq!(runs.iter().filter(|r| **r == good).count(), 1);
        for run in &runs {
            run.validate(&g).unwrap();
        }
    }

    #[test]
    fn display_and_debug() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 1);
        assert!(format!("{run}").contains("|M|=2"));
        assert!(format!("{run:?}").contains("messages"));
    }

    #[test]
    fn remove_message_and_input() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 2);
        assert!(run.remove_message(p(0), p(1), r(1)));
        assert!(!run.remove_message(p(0), p(1), r(1)));
        run.remove_input(p(0));
        assert!(!run.has_input(p(0)));
    }

    #[test]
    fn try_enumerate_all_rejects_oversized_instances() {
        let g = Graph::complete(4).unwrap();
        let err = Run::try_enumerate_all(&g, 8).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");

        let small = Graph::complete(2).unwrap();
        let runs = Run::try_enumerate_all(&small, 1).unwrap();
        assert_eq!(runs.len(), Run::enumerate_all(&small, 1).len());
    }

    #[test]
    fn messages_are_in_canonical_slot_order() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good(&g, 3);
        let slots: Vec<_> = run.messages().collect();
        let mut sorted = slots.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(slots, sorted, "messages() must yield sorted unique slots");
        for round in Round::protocol_rounds(3) {
            let per_round: Vec<_> = run.messages_in_round(round).collect();
            let expected: Vec<_> = slots.iter().copied().filter(|s| s.round == round).collect();
            assert_eq!(per_round, expected);
        }
    }

    #[test]
    fn out_of_matrix_slots_round_trip_through_overflow() {
        let mut run = Run::empty(2, 2);
        run.add_message(p(0), p(1), r(9)); // round beyond the horizon
        run.add_message(p(7), p(0), r(1)); // process beyond m
        assert!(run.delivers(p(0), p(1), r(9)));
        assert!(run.delivers_slot(MsgSlot::new(p(7), p(0), r(1))));
        assert_eq!(run.message_count(), 2);
        let slots: Vec<_> = run.messages().collect();
        assert_eq!(
            slots,
            vec![
                MsgSlot::new(p(0), p(1), r(9)),
                MsgSlot::new(p(7), p(0), r(1)),
            ]
        );
        assert_eq!(run.messages_in_round(r(9)).count(), 1);
        assert!(run.remove_message(p(0), p(1), r(9)));
        assert!(!run.delivers(p(0), p(1), r(9)));
        run.cut_from_round(r(1));
        assert_eq!(run.message_count(), 0);
    }

    #[test]
    fn clone_from_reuses_and_matches_clone() {
        let g = Graph::complete(4).unwrap();
        let big = Run::good(&g, 6);
        let mut scratch = Run::empty(0, 0);
        scratch.clone_from(&big);
        assert_eq!(scratch, big);
        let small = Run::empty(2, 1);
        scratch.clone_from(&small);
        assert_eq!(scratch, small);
        assert_eq!(scratch.message_count(), 0);
    }

    #[test]
    fn serde_round_trip_preserves_equality() {
        let g = Graph::complete(3).unwrap();
        let mut run = Run::good_with_inputs(&g, 4, &[p(0), p(2)]);
        run.remove_message(p(1), p(2), r(3));
        let json = serde::json::to_string(&run).unwrap();
        let back: Run = serde::json::from_str(&json).unwrap();
        assert_eq!(back, run);
    }

    #[test]
    fn edge_run_good_matches_dense_good() {
        for g in [
            Graph::complete(3).unwrap(),
            Graph::ring(5).unwrap(),
            Graph::grid(2, 3).unwrap(),
        ] {
            let dense = Run::good(&g, 4);
            let sparse = EdgeRun::good(&g, 4);
            assert_eq!(sparse.to_run(), dense);
            assert_eq!(sparse.message_count(), dense.message_count());
        }
    }

    #[test]
    fn edge_run_deliveries_iterate_in_canonical_order() {
        let g = Graph::grid(2, 3).unwrap();
        let mut er = EdgeRun::good(&g, 3);
        er.destroy(0, r(2));
        er.destroy(3, r(2));
        er.remove_input(p(1));
        let dense = er.to_run();
        for round in Round::protocol_rounds(3) {
            let mut sparse_pairs = Vec::new();
            er.for_each_delivery_in_round(round, |a, b| sparse_pairs.push((a, b)));
            let dense_pairs: Vec<_> = dense
                .messages_in_round(round)
                .map(|s| (s.from, s.to))
                .collect();
            assert_eq!(sparse_pairs, dense_pairs, "round {round}");
        }
    }

    #[test]
    fn edge_run_destroy_and_reset() {
        let g = Graph::ring(4).unwrap();
        let mut er = EdgeRun::good(&g, 2);
        let full = er.message_count();
        assert_eq!(full, 8 * 2);
        assert!(er.delivers_edge(5, r(1)));
        er.destroy(5, r(1));
        assert!(!er.delivers_edge(5, r(1)));
        assert_eq!(er.message_count(), full - 1);
        er.remove_input(p(2));
        assert!(!DeliverySource::has_input(&er, p(2)));
        er.reset_good();
        assert_eq!(er.message_count(), full);
        assert!(DeliverySource::has_input(&er, p(2)));
        // Out-of-range probes are simply absent, as with Run::delivers.
        assert!(!er.delivers_edge(99, r(1)));
        assert!(!er.delivers_edge(0, r(9)));
    }

    #[test]
    fn delivery_source_run_matches_inherent_accessors() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 2, &[p(0)]);
        assert_eq!(DeliverySource::process_count(&run), 3);
        assert_eq!(DeliverySource::horizon(&run), 2);
        assert!(DeliverySource::has_input(&run, p(0)));
        assert!(!DeliverySource::has_input(&run, p(1)));
        let mut pairs = Vec::new();
        run.for_each_delivery_in_round(r(1), |a, b| pairs.push((a, b)));
        assert_eq!(pairs.len(), run.messages_in_round(r(1)).count());
    }

    #[test]
    fn deserializes_old_format_slot_list() {
        // A fixture produced by the previous BTreeSet-backed representation:
        // messages as an explicit sorted slot array.
        let json = r#"{"m":2,"n":2,"inputs":{"blocks":[3],"capacity":2},"messages":[{"from":0,"to":1,"round":1},{"from":1,"to":0,"round":2}]}"#;
        let run: Run = serde::json::from_str(json).unwrap();
        assert_eq!(run.process_count(), 2);
        assert_eq!(run.horizon(), 2);
        assert_eq!(run.input_count(), 2);
        assert!(run.delivers(p(0), p(1), r(1)));
        assert!(!run.delivers(p(0), p(1), r(2)));
        assert!(run.delivers(p(1), p(0), r(2)));
        // And it re-serializes to the same wire format.
        assert_eq!(serde::json::to_string(&run).unwrap(), json);
    }
}
