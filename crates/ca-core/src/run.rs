//! Runs: which inputs arrive and which messages are delivered.
//!
//! A run `R = I(R) ∪ M(R)` fully describes the adversary's choices for one
//! execution: `I(R)` is the set of processes that receive the input signal
//! (tuples `(v₀, i, 0)` in the paper), and `M(R)` is the set of delivered
//! messages (tuples `(i, j, r)` with `(i,j) ∈ E` and `1 ≤ r ≤ N`). Every
//! message *not* in `M(R)` is destroyed by the adversary.

use crate::bitset::BitSet;
use crate::error::{CaError, ModelError};
use crate::graph::Graph;
use crate::ids::{ProcessId, Round};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A directed message slot `(from, to, round)`: the message sent by `from` to
/// `to` in the given protocol round (`1..=N`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct MsgSlot {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Protocol round in `1..=N`.
    pub round: Round,
}

impl MsgSlot {
    /// Creates a message slot.
    pub const fn new(from: ProcessId, to: ProcessId, round: Round) -> Self {
        MsgSlot { from, to, round }
    }
}

impl fmt::Display for MsgSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.from, self.to, self.round.get())
    }
}

/// A run: the adversary's complete delivery schedule for one execution.
///
/// A `Run` is parameterized by the process count `m` and horizon `n` (the
/// paper's `N`): message rounds range over `1..=n`.
///
/// # Examples
///
/// ```
/// use ca_core::graph::Graph;
/// use ca_core::run::Run;
/// use ca_core::ids::ProcessId;
///
/// let g = Graph::complete(2)?;
/// // The "good" run: every input arrives and every message is delivered.
/// let run = Run::good(&g, 4);
/// assert!(run.has_input(ProcessId::new(0)));
/// assert_eq!(run.message_count(), 2 * 4); // 2 directed edges × 4 rounds
/// # Ok::<(), ca_core::error::ModelError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Run {
    m: usize,
    n: u32,
    inputs: BitSet,
    messages: BTreeSet<MsgSlot>,
}

impl Run {
    /// The empty run over `m` processes and horizon `n`: no inputs, no
    /// deliveries. (The paper's `R̃ = ∅`.)
    pub fn empty(m: usize, n: u32) -> Self {
        Run {
            m,
            n,
            inputs: BitSet::new(m),
            messages: BTreeSet::new(),
        }
    }

    /// The "good" run: every process receives the input and every message on
    /// every edge of `graph` is delivered in every round `1..=n`.
    pub fn good(graph: &Graph, n: u32) -> Self {
        let mut run = Run::empty(graph.len(), n);
        for p in graph.vertices() {
            run.inputs.insert(p.index());
        }
        for (a, b) in graph.directed_edges() {
            for r in Round::protocol_rounds(n) {
                run.messages.insert(MsgSlot::new(a, b, r));
            }
        }
        run
    }

    /// A run delivering everything like [`Run::good`] but with inputs only at
    /// the given processes.
    pub fn good_with_inputs(graph: &Graph, n: u32, inputs: &[ProcessId]) -> Self {
        let mut run = Run::good(graph, n);
        run.inputs.clear();
        for &p in inputs {
            run.inputs.insert(p.index());
        }
        run
    }

    /// Number of processes `m`.
    pub fn process_count(&self) -> usize {
        self.m
    }

    /// The horizon `N` (last protocol round).
    pub fn horizon(&self) -> u32 {
        self.n
    }

    /// Returns whether process `i` receives the input signal (tuple `(v₀,i,0)`).
    pub fn has_input(&self, i: ProcessId) -> bool {
        self.inputs.contains(i.index())
    }

    /// Returns whether any process receives the input signal (`I(R) ≠ ∅`).
    pub fn has_any_input(&self) -> bool {
        !self.inputs.is_empty()
    }

    /// The set of processes receiving the input signal.
    pub fn inputs(&self) -> impl Iterator<Item = ProcessId> + '_ {
        self.inputs.iter().map(|i| ProcessId::new(i as u32))
    }

    /// Adds the input tuple `(v₀, i, 0)`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn add_input(&mut self, i: ProcessId) -> &mut Self {
        self.inputs.insert(i.index());
        self
    }

    /// Removes the input tuple `(v₀, i, 0)`.
    pub fn remove_input(&mut self, i: ProcessId) -> &mut Self {
        self.inputs.remove(i.index());
        self
    }

    /// Returns whether the message `(from, to, round)` is delivered.
    pub fn delivers(&self, from: ProcessId, to: ProcessId, round: Round) -> bool {
        self.messages.contains(&MsgSlot::new(from, to, round))
    }

    /// Returns whether the slot is delivered.
    pub fn delivers_slot(&self, slot: MsgSlot) -> bool {
        self.messages.contains(&slot)
    }

    /// Adds a delivered message `(from, to, round)`.
    ///
    /// The caller is responsible for only adding slots that correspond to
    /// graph edges and rounds `1..=n`; [`Run::validate`] checks this.
    pub fn add_message(&mut self, from: ProcessId, to: ProcessId, round: Round) -> &mut Self {
        self.messages.insert(MsgSlot::new(from, to, round));
        self
    }

    /// Removes (destroys) a delivered message, returning whether it was present.
    pub fn remove_message(&mut self, from: ProcessId, to: ProcessId, round: Round) -> bool {
        self.messages.remove(&MsgSlot::new(from, to, round))
    }

    /// Iterates over the delivered message slots in sorted order.
    pub fn messages(&self) -> impl Iterator<Item = MsgSlot> + '_ {
        self.messages.iter().copied()
    }

    /// Iterates over delivered messages of one round.
    pub fn messages_in_round(&self, round: Round) -> impl Iterator<Item = MsgSlot> + '_ {
        self.messages
            .iter()
            .copied()
            .filter(move |s| s.round == round)
    }

    /// Number of delivered messages `|M(R)|`.
    pub fn message_count(&self) -> usize {
        self.messages.len()
    }

    /// Number of input tuples `|I(R)|`.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Destroys every message sent in rounds `>= round`, on every edge.
    ///
    /// This is the "cut at round `round`" adversary move that defeats chains
    /// of acknowledgements (§3).
    pub fn cut_from_round(&mut self, round: Round) -> &mut Self {
        self.messages.retain(|s| s.round < round);
        self
    }

    /// Destroys every message from `from` to `to` in rounds `>= round`.
    pub fn cut_link_from_round(
        &mut self,
        from: ProcessId,
        to: ProcessId,
        round: Round,
    ) -> &mut Self {
        self.messages
            .retain(|s| !(s.from == from && s.to == to && s.round >= round));
        self
    }

    /// Returns whether `self ⊆ other` (both inputs and messages).
    pub fn is_subset(&self, other: &Run) -> bool {
        self.m == other.m
            && self.n == other.n
            && self.inputs.is_subset(&other.inputs)
            && self.messages.is_subset(&other.messages)
    }

    /// The union of two runs.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn union(&self, other: &Run) -> Run {
        assert_eq!(self.m, other.m, "run process-count mismatch");
        assert_eq!(self.n, other.n, "run horizon mismatch");
        let mut out = self.clone();
        out.inputs.union_with(&other.inputs);
        out.messages.extend(other.messages.iter().copied());
        out
    }

    /// Validates that every message slot corresponds to an edge of `graph`
    /// and a round in `1..=n`, and that dimensions match.
    ///
    /// # Errors
    ///
    /// Returns an error naming the first violation found.
    pub fn validate(&self, graph: &Graph) -> Result<(), ModelError> {
        if graph.len() != self.m {
            return Err(ModelError::InvalidParameter {
                name: "graph",
                reason: "graph size does not match run process count",
            });
        }
        for s in &self.messages {
            if s.round.get() < 1 || s.round.get() > self.n {
                return Err(ModelError::InvalidMessageSlot {
                    reason: "round outside 1..=N",
                });
            }
            if !graph.has_edge(s.from, s.to) {
                return Err(ModelError::InvalidMessageSlot {
                    reason: "message slot on a non-edge",
                });
            }
        }
        Ok(())
    }

    /// Enumerates **all** runs over `graph` with horizon `n` — all subsets of
    /// inputs × all subsets of message slots. Exponential; intended for
    /// exhaustive checks on tiny instances.
    ///
    /// # Panics
    ///
    /// Panics if the number of slots plus inputs exceeds 24 (≥ 16M runs), to
    /// guard against accidental blow-ups.
    pub fn enumerate_all(graph: &Graph, n: u32) -> Vec<Run> {
        Run::try_enumerate_all(graph, n).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`Run::enumerate_all`]: returns a typed error
    /// instead of panicking when the instance is too large to enumerate.
    pub fn try_enumerate_all(graph: &Graph, n: u32) -> Result<Vec<Run>, CaError> {
        let slots: Vec<MsgSlot> = graph
            .directed_edges()
            .flat_map(|(a, b)| Round::protocol_rounds(n).map(move |r| MsgSlot::new(a, b, r)))
            .collect();
        let bits = slots.len() + graph.len();
        if bits > 24 {
            return Err(CaError::malformed(format!(
                "enumerate_all over {bits} bits is too large (max 24: >= 16M runs)"
            )));
        }
        let mut out = Vec::with_capacity(1usize << bits);
        for mask in 0u64..(1u64 << bits) {
            let mut run = Run::empty(graph.len(), n);
            for (k, p) in graph.vertices().enumerate() {
                if mask & (1 << k) != 0 {
                    run.add_input(p);
                }
            }
            for (k, s) in slots.iter().enumerate() {
                if mask & (1 << (graph.len() + k)) != 0 {
                    run.messages.insert(*s);
                }
            }
            out.push(run);
        }
        Ok(out)
    }
}

impl fmt::Debug for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Run")
            .field("m", &self.m)
            .field("n", &self.n)
            .field("inputs", &self.inputs)
            .field("messages", &self.messages)
            .finish()
    }
}

impl fmt::Display for Run {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run(inputs={{{}}}, |M|={})",
            self.inputs()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join(","),
            self.message_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn r(i: u32) -> Round {
        Round::new(i)
    }

    #[test]
    fn paper_example_run() {
        // The paper's example: {(v0,3,0), (1,2,6), (3,2,7)} — translated to
        // 0-based ids: input at P2, messages (P0→P1, r6) and (P2→P1, r7).
        let g = Graph::complete(3).unwrap();
        let mut run = Run::empty(3, 8);
        run.add_input(p(2));
        run.add_message(p(0), p(1), r(6));
        run.add_message(p(2), p(1), r(7));
        assert!(run.has_input(p(2)));
        assert!(!run.has_input(p(0)));
        assert!(run.delivers(p(0), p(1), r(6)));
        assert!(!run.delivers(p(1), p(0), r(6)));
        assert_eq!(run.message_count(), 2);
        run.validate(&g).unwrap();
    }

    #[test]
    fn good_run_counts() {
        let g = Graph::line(3).unwrap();
        let run = Run::good(&g, 5);
        // 2 undirected edges → 4 directed slots per round × 5 rounds.
        assert_eq!(run.message_count(), 20);
        assert_eq!(run.input_count(), 3);
        run.validate(&g).unwrap();
    }

    #[test]
    fn good_with_inputs_subset() {
        let g = Graph::complete(3).unwrap();
        let run = Run::good_with_inputs(&g, 2, &[p(1)]);
        assert!(!run.has_input(p(0)));
        assert!(run.has_input(p(1)));
        assert_eq!(run.input_count(), 1);
    }

    #[test]
    fn cut_from_round() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 4);
        run.cut_from_round(r(3));
        assert_eq!(run.message_count(), 4); // rounds 1,2 × 2 directions
        assert!(run.delivers(p(0), p(1), r(2)));
        assert!(!run.delivers(p(0), p(1), r(3)));
    }

    #[test]
    fn cut_link_from_round() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 3);
        run.cut_link_from_round(p(0), p(1), r(2));
        assert!(run.delivers(p(0), p(1), r(1)));
        assert!(!run.delivers(p(0), p(1), r(2)));
        assert!(run.delivers(p(1), p(0), r(3)), "other direction untouched");
    }

    #[test]
    fn subset_and_union() {
        let g = Graph::complete(2).unwrap();
        let empty = Run::empty(2, 3);
        let good = Run::good(&g, 3);
        assert!(empty.is_subset(&good));
        assert!(!good.is_subset(&empty));
        let u = empty.union(&good);
        assert_eq!(u, good);
    }

    #[test]
    fn validate_rejects_bad_slots() {
        let g = Graph::line(3).unwrap();
        let mut run = Run::empty(3, 3);
        run.add_message(p(0), p(2), r(1)); // non-edge in the line graph
        assert!(matches!(
            run.validate(&g),
            Err(ModelError::InvalidMessageSlot { .. })
        ));
        let mut run = Run::empty(3, 3);
        run.add_message(p(0), p(1), r(4)); // round out of range
        assert!(run.validate(&g).is_err());
    }

    #[test]
    fn enumerate_all_tiny() {
        let g = Graph::complete(2).unwrap();
        // 2 inputs + 2 directed edges × 1 round = 4 bits → 16 runs.
        let runs = Run::enumerate_all(&g, 1);
        assert_eq!(runs.len(), 16);
        // All must validate; exactly one is the good run.
        let good = Run::good(&g, 1);
        assert_eq!(runs.iter().filter(|r| **r == good).count(), 1);
        for run in &runs {
            run.validate(&g).unwrap();
        }
    }

    #[test]
    fn display_and_debug() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good(&g, 1);
        assert!(format!("{run}").contains("|M|=2"));
        assert!(format!("{run:?}").contains("messages"));
    }

    #[test]
    fn remove_message_and_input() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::good(&g, 2);
        assert!(run.remove_message(p(0), p(1), r(1)));
        assert!(!run.remove_message(p(0), p(1), r(1)));
        run.remove_input(p(0));
        assert!(!run.has_input(p(0)));
    }

    #[test]
    fn try_enumerate_all_rejects_oversized_instances() {
        let g = Graph::complete(4).unwrap();
        let err = Run::try_enumerate_all(&g, 8).unwrap_err();
        assert!(err.to_string().contains("too large"), "{err}");

        let small = Graph::complete(2).unwrap();
        let runs = Run::try_enumerate_all(&small, 1).unwrap();
        assert_eq!(runs.len(), Run::enumerate_all(&small, 1).len());
    }
}
