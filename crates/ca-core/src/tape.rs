//! Random-input tapes `α_i`.
//!
//! Each process receives a private sequence of random bits before the run
//! starts (the paper's `α_i ∈ {0,1}^J`, drawn uniformly). Crucially, the
//! tapes are chosen **independently of the run** — the adversary controls
//! delivery but not the coins. Representing the randomness as a pre-drawn
//! tape (rather than an RNG handle shared with the environment) is what makes
//! indistinguishability arguments exact: two runs indistinguishable to `i`
//! consume identical tape prefixes, so `i` behaves identically
//! (Lemma 2.1).

use crate::error::CaError;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A finite tape of uniformly random bits, consumed left to right.
///
/// # Examples
///
/// ```
/// use ca_core::tape::BitTape;
/// let mut tape = BitTape::from_words(vec![0b1011]);
/// let mut t = tape.reader();
/// assert!(t.draw_bit());
/// assert!(t.draw_bit());
/// assert!(!t.draw_bit());
/// assert!(t.draw_bit());
/// ```
#[derive(Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitTape {
    words: Vec<u64>,
}

impl BitTape {
    /// Creates a tape from raw 64-bit words (bit 0 of word 0 first).
    pub fn from_words(words: Vec<u64>) -> Self {
        BitTape { words }
    }

    /// Samples a tape of `j_bits` uniform bits.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, j_bits: usize) -> Self {
        let words = (0..j_bits.div_ceil(64)).map(|_| rng.gen()).collect();
        BitTape { words }
    }

    /// Refills the tape in place with `j_bits` fresh uniform bits, reusing
    /// the existing word buffer. Draws exactly the words [`BitTape::random`]
    /// would draw, in the same order, so a refilled tape is
    /// indistinguishable from a freshly sampled one.
    pub fn fill_random<R: Rng + ?Sized>(&mut self, rng: &mut R, j_bits: usize) {
        self.words.clear();
        self.words
            .extend((0..j_bits.div_ceil(64)).map(|_| rng.gen::<u64>()));
    }

    /// Length of the tape in bits.
    #[inline]
    pub fn len_bits(&self) -> usize {
        self.words.len() * 64
    }

    /// Returns whether the tape holds no bits.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Starts reading from the beginning.
    #[inline]
    pub fn reader(&self) -> TapeReader<'_> {
        TapeReader { tape: self, pos: 0 }
    }

    /// Resumes reading at bit `pos` (as reported by
    /// [`TapeReader::bits_consumed`]). Lets callers persist a read position
    /// across borrows instead of keeping a live reader alive.
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies beyond the end of the tape.
    #[inline]
    pub fn reader_at(&self, pos: usize) -> TapeReader<'_> {
        assert!(
            pos <= self.len_bits(),
            "reader position {pos} beyond tape of {} bits",
            self.len_bits()
        );
        TapeReader { tape: self, pos }
    }
}

impl fmt::Debug for BitTape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitTape({} bits)", self.len_bits())
    }
}

/// A cursor over a [`BitTape`].
///
/// Draws beyond the end of the tape panic: protocols must declare a large
/// enough `J` (the paper's upper bound on random bits used).
#[derive(Clone, Debug)]
pub struct TapeReader<'a> {
    tape: &'a BitTape,
    pos: usize,
}

impl TapeReader<'_> {
    /// Draws one bit.
    ///
    /// # Panics
    ///
    /// Panics if the tape is exhausted.
    #[inline]
    pub fn draw_bit(&mut self) -> bool {
        assert!(
            self.pos < self.tape.len_bits(),
            "random tape exhausted at bit {}",
            self.pos
        );
        let bit = (self.tape.words[self.pos / 64] >> (self.pos % 64)) & 1 == 1;
        self.pos += 1;
        bit
    }

    /// Fallible [`TapeReader::draw_bit`]: returns [`CaError::TapeExhausted`]
    /// instead of panicking when the tape runs dry.
    pub fn try_draw_bit(&mut self) -> Result<bool, CaError> {
        if self.pos >= self.tape.len_bits() {
            return Err(CaError::TapeExhausted {
                at_bit: self.pos,
                len_bits: self.tape.len_bits(),
            });
        }
        Ok(self.draw_bit())
    }

    /// Returns [`CaError::TapeExhausted`] unless at least `n` more bits can
    /// be drawn. Lets callers validate a whole budget up front.
    pub fn require_bits(&self, n: usize) -> Result<(), CaError> {
        let needed = self.pos.saturating_add(n);
        if needed > self.tape.len_bits() {
            return Err(CaError::TapeExhausted {
                at_bit: needed,
                len_bits: self.tape.len_bits(),
            });
        }
        Ok(())
    }

    /// Draws 64 bits as a `u64`.
    ///
    /// # Panics
    ///
    /// Panics if the tape is exhausted.
    pub fn draw_u64(&mut self) -> u64 {
        let mut v = 0u64;
        for k in 0..64 {
            if self.draw_bit() {
                v |= 1 << k;
            }
        }
        v
    }

    /// Fallible [`TapeReader::draw_u64`]: checks the 64-bit budget before
    /// consuming anything, so a failed draw leaves the cursor unmoved.
    pub fn try_draw_u64(&mut self) -> Result<u64, CaError> {
        self.require_bits(64)?;
        Ok(self.draw_u64())
    }

    /// Draws exactly `n ≤ 64` bits as the low bits of a `u64` (LSB first).
    ///
    /// Unlike [`TapeReader::draw_below`], the consumption is fixed, which
    /// makes the tape space exhaustively enumerable — used by the
    /// enumeration-based exact analyses.
    ///
    /// # Panics
    ///
    /// Panics if `n > 64` or the tape is exhausted.
    pub fn draw_bits(&mut self, n: u32) -> u64 {
        assert!(n <= 64, "draw_bits supports at most 64 bits");
        let mut v = 0u64;
        for k in 0..n {
            if self.draw_bit() {
                v |= 1 << k;
            }
        }
        v
    }

    /// Draws a uniform integer in `0..bound` by rejection sampling.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0` or the tape is exhausted before acceptance
    /// (the expected number of 64-bit draws is < 2).
    pub fn draw_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "draw_below(0)");
        // Rejection sampling for exact uniformity.
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let v = self.draw_u64();
            if v < zone {
                return v % bound;
            }
        }
    }

    /// Draws a uniform value in `(0, 1]` with 64-bit resolution:
    /// `(k + 1) / 2^64` for uniform `k`.
    ///
    /// Used to realize the paper's "uniform real in `(0, t]`" as
    /// `t * draw_unit()`. The discretization changes any single comparison
    /// probability by at most `2⁻⁶⁴`.
    pub fn draw_unit(&mut self) -> f64 {
        (self.draw_u64() as f64 + 1.0) / 18_446_744_073_709_551_616.0 // 2^64
    }

    /// Fallible [`TapeReader::draw_unit`]: checks the 64-bit budget before
    /// consuming anything.
    pub fn try_draw_unit(&mut self) -> Result<f64, CaError> {
        self.require_bits(64)?;
        Ok(self.draw_unit())
    }

    /// Number of bits consumed so far.
    #[inline]
    pub fn bits_consumed(&self) -> usize {
        self.pos
    }
}

/// The vector `α = (α_i)` of per-process tapes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TapeSet {
    tapes: Vec<BitTape>,
}

impl TapeSet {
    /// Samples independent tapes of `j_bits` bits for `m` processes.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, m: usize, j_bits: usize) -> Self {
        TapeSet {
            tapes: (0..m).map(|_| BitTape::random(rng, j_bits)).collect(),
        }
    }

    /// Builds a tape set from explicit tapes.
    pub fn from_tapes(tapes: Vec<BitTape>) -> Self {
        TapeSet { tapes }
    }

    /// A tape set of `m` empty tapes — a placeholder to be populated via
    /// [`TapeSet::fill_random`] (the allocation-free path used by the Monte
    /// Carlo engine).
    pub fn empty(m: usize) -> Self {
        TapeSet {
            tapes: (0..m).map(|_| BitTape::from_words(Vec::new())).collect(),
        }
    }

    /// Refills every tape in place with `j_bits` fresh uniform bits, reusing
    /// the word buffers. The draw order matches [`TapeSet::random`] exactly
    /// (process 0's words first), so given the same RNG state the refilled
    /// set equals a freshly sampled one.
    pub fn fill_random<R: Rng + ?Sized>(&mut self, rng: &mut R, j_bits: usize) {
        for tape in &mut self.tapes {
            tape.fill_random(rng, j_bits);
        }
    }

    /// Refills **only process 0's tape**, leaving the others untouched.
    ///
    /// Under the canonical fill order the first `ceil(j_bits / 64)` words of
    /// the RNG stream belong to process 0, so after this call the leader's
    /// tape is bit-identical to what [`TapeSet::fill_random`] would have
    /// dealt it from the same RNG state. The bit-sliced Monte Carlo path
    /// uses this when the protocol's [`crate::protocol::Protocol::sliced_spec`]
    /// promises that only the leader consumes tape bits: per trial it skips
    /// the `m - 1` follower fills whose bits nothing would read.
    ///
    /// # Panics
    ///
    /// Panics if the set holds no tapes.
    pub fn fill_random_leader<R: Rng + ?Sized>(&mut self, rng: &mut R, j_bits: usize) {
        self.tapes[0].fill_random(rng, j_bits);
    }

    /// The tape of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn tape(&self, i: crate::ids::ProcessId) -> &BitTape {
        &self.tapes[i.index()]
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.tapes.len()
    }

    /// Returns whether there are no tapes.
    pub fn is_empty(&self) -> bool {
        self.tapes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcessId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bit_order_is_lsb_first() {
        let tape = BitTape::from_words(vec![0b0110]);
        let mut t = tape.reader();
        assert_eq!(
            (t.draw_bit(), t.draw_bit(), t.draw_bit(), t.draw_bit()),
            (false, true, true, false)
        );
    }

    #[test]
    fn draw_u64_roundtrip() {
        let tape = BitTape::from_words(vec![0xDEAD_BEEF_CAFE_F00D]);
        assert_eq!(tape.reader().draw_u64(), 0xDEAD_BEEF_CAFE_F00D);
    }

    #[test]
    fn draw_bits_consumes_exactly_n() {
        let tape = BitTape::from_words(vec![0b1011_0101]);
        let mut t = tape.reader();
        assert_eq!(t.draw_bits(4), 0b0101);
        assert_eq!(t.bits_consumed(), 4);
        assert_eq!(t.draw_bits(4), 0b1011);
        assert_eq!(t.draw_bits(0), 0);
        assert_eq!(t.bits_consumed(), 8);
    }

    #[test]
    fn draw_below_is_in_range_and_uniformish() {
        let mut rng = StdRng::seed_from_u64(5);
        let tape = BitTape::random(&mut rng, 64 * 4000);
        let mut t = tape.reader();
        let mut counts = [0u32; 7];
        for _ in 0..3000 {
            counts[t.draw_below(7) as usize] += 1;
        }
        for &c in &counts {
            // Expect ~428 each; a loose sanity band.
            assert!(c > 300 && c < 580, "counts={counts:?}");
        }
    }

    #[test]
    fn draw_unit_in_half_open_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        let tape = BitTape::random(&mut rng, 64 * 100);
        let mut t = tape.reader();
        for _ in 0..100 {
            let u = t.draw_unit();
            assert!(u > 0.0 && u <= 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "tape exhausted")]
    fn exhausted_tape_panics() {
        let tape = BitTape::from_words(vec![]);
        tape.reader().draw_bit();
    }

    #[test]
    fn try_draws_error_without_consuming() {
        let tape = BitTape::from_words(vec![0b101, 0]);
        let mut t = tape.reader();
        assert_eq!(t.try_draw_bit(), Ok(true));
        assert_eq!(t.try_draw_u64(), Ok(0b10)); // bits 1..65, LSB first
        assert_eq!(t.bits_consumed(), 65);
        assert!(matches!(
            t.try_draw_u64(),
            Err(crate::error::CaError::TapeExhausted {
                at_bit: 129,
                len_bits: 128
            })
        ));
        assert_eq!(
            t.bits_consumed(),
            65,
            "failed draw must not move the cursor"
        );
        assert!(t.require_bits(63).is_ok());
        assert!(t.require_bits(64).is_err());
        let empty = BitTape::from_words(vec![]);
        assert!(empty.reader().try_draw_bit().is_err());
        assert!(empty.reader().try_draw_unit().is_err());
    }

    #[test]
    fn identical_tapes_give_identical_draws() {
        // The determinism that underpins Lemma 2.1.
        let mut rng = StdRng::seed_from_u64(7);
        let tape = BitTape::random(&mut rng, 256);
        let (mut a, mut b) = (tape.reader(), tape.reader());
        for _ in 0..3 {
            assert_eq!(a.draw_u64(), b.draw_u64());
        }
        assert_eq!(a.bits_consumed(), b.bits_consumed());
    }

    #[test]
    fn tape_set_access() {
        let mut rng = StdRng::seed_from_u64(8);
        let set = TapeSet::random(&mut rng, 3, 128);
        assert_eq!(set.len(), 3);
        assert!(!set.is_empty());
        assert_eq!(set.tape(ProcessId::new(2)).len_bits(), 128);
    }

    #[test]
    fn leader_only_fill_matches_the_full_fill() {
        // From the same RNG state, the leader's tape after a leader-only
        // fill is bit-identical to its tape after a full fill — the
        // equivalence the sliced Monte Carlo path relies on.
        let mut full_rng = StdRng::seed_from_u64(9);
        let mut leader_rng = StdRng::seed_from_u64(9);
        let mut full = TapeSet::empty(4);
        let mut leader_only = TapeSet::empty(4);
        for j_bits in [1usize, 64, 65, 200] {
            full.fill_random(&mut full_rng, j_bits);
            leader_only.fill_random_leader(&mut leader_rng, j_bits);
            assert_eq!(
                full.tape(ProcessId::LEADER),
                leader_only.tape(ProcessId::LEADER),
                "j_bits = {j_bits}"
            );
            assert!(leader_only.tape(ProcessId::new(1)).is_empty());
            // Re-align the leader-only RNG with the full fill's stream for
            // the next iteration.
            leader_rng = full_rng.clone();
        }
    }
}
