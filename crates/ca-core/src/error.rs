//! Error types for the coordinated-attack model.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when constructing or validating model objects.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A graph was required to have at least this many vertices.
    TooFewProcesses {
        /// Number of vertices provided.
        got: usize,
        /// Minimum required.
        min: usize,
    },
    /// A graph supports at most this many vertices (seen-set bitmask width).
    TooManyProcesses {
        /// Number of vertices provided.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// An edge endpoint referred to a vertex outside the graph.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices in the graph.
        m: usize,
    },
    /// Self-loops are not allowed in the communication graph.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: usize,
    },
    /// A run referenced a message slot that does not exist
    /// (non-edge, or round outside `1..=N`).
    InvalidMessageSlot {
        /// Reason the slot is invalid.
        reason: &'static str,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TooFewProcesses { got, min } => {
                write!(
                    f,
                    "graph has {got} processes but at least {min} are required"
                )
            }
            ModelError::TooManyProcesses { got, max } => {
                write!(
                    f,
                    "graph has {got} processes but at most {max} are supported"
                )
            }
            ModelError::VertexOutOfRange { vertex, m } => {
                write!(
                    f,
                    "vertex {vertex} out of range for graph with {m} vertices"
                )
            }
            ModelError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            ModelError::InvalidMessageSlot { reason } => {
                write!(f, "invalid message slot: {reason}")
            }
            ModelError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl StdError for ModelError {}

/// Errors produced by fallible execution paths (the `try_*` entry points).
///
/// These are the typed alternatives to the engine's panicking asserts: a
/// hostile schedule or malformed configuration degrades into an `Err` the
/// caller can report, instead of aborting the process. The chaos harness
/// relies on this to survive adversarial schedule search.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CaError {
    /// A random tape ran out of bits mid-draw, or was too short for the
    /// protocol's declared budget.
    TapeExhausted {
        /// Bit position at which the draw failed (or the budget required).
        at_bit: usize,
        /// Total bits available on the tape.
        len_bits: usize,
    },
    /// An execution configuration failed validation.
    MalformedConfig {
        /// Human-readable reason.
        reason: String,
    },
    /// A model-construction error surfaced during execution setup.
    Model(ModelError),
}

impl fmt::Display for CaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaError::TapeExhausted { at_bit, len_bits } => {
                write!(
                    f,
                    "random tape exhausted at bit {at_bit} (tape holds {len_bits} bits)"
                )
            }
            CaError::MalformedConfig { reason } => {
                write!(f, "malformed configuration: {reason}")
            }
            CaError::Model(e) => write!(f, "model error: {e}"),
        }
    }
}

impl StdError for CaError {
    fn source(&self) -> Option<&(dyn StdError + 'static)> {
        match self {
            CaError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for CaError {
    fn from(e: ModelError) -> Self {
        CaError::Model(e)
    }
}

impl CaError {
    /// Convenience constructor for [`CaError::MalformedConfig`].
    pub fn malformed(reason: impl Into<String>) -> Self {
        CaError::MalformedConfig {
            reason: reason.into(),
        }
    }
}

/// Largest exponent any exhaustive enumeration accepts: `2^24` (≈ 16M)
/// executions. Shared by [`crate::run::Run::try_enumerate_all`] and the
/// tape-enumeration oracles in `ca-analysis`, so every enumerator states the
/// same unit and trips at the same size.
pub const MAX_ENUMERATION_BITS: usize = 24;

/// Guards an exhaustive enumeration of `2^bits` executions: `Ok(())` when
/// the instance fits under [`MAX_ENUMERATION_BITS`], otherwise a
/// [`CaError::MalformedConfig`] naming `what` is being enumerated.
///
/// ```
/// use ca_core::error::{check_enumeration_bits, CaError};
/// assert!(check_enumeration_bits(24, "tapes").is_ok());
/// assert!(matches!(
///     check_enumeration_bits(25, "tapes"),
///     Err(CaError::MalformedConfig { .. })
/// ));
/// ```
pub fn check_enumeration_bits(bits: usize, what: &str) -> Result<(), CaError> {
    if bits > MAX_ENUMERATION_BITS {
        return Err(CaError::malformed(format!(
            "enumerating 2^{bits} {what} is too large \
             (max 2^{MAX_ENUMERATION_BITS} = 16M executions)"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ca_error_display_and_source() {
        let e = CaError::TapeExhausted {
            at_bit: 64,
            len_bits: 64,
        };
        assert_eq!(
            e.to_string(),
            "random tape exhausted at bit 64 (tape holds 64 bits)"
        );
        let e = CaError::malformed("deadline must be positive");
        assert!(e.to_string().contains("deadline must be positive"));
        let e = CaError::from(ModelError::SelfLoop { vertex: 1 });
        assert!(e.to_string().contains("self-loop"));
        assert!(StdError::source(&e).is_some());
    }

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ModelError::TooFewProcesses { got: 1, min: 2 };
        assert_eq!(
            e.to_string(),
            "graph has 1 processes but at least 2 are required"
        );
        let e = ModelError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = ModelError::InvalidParameter {
            name: "epsilon",
            reason: "must be positive",
        };
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn enumeration_guard_trips_past_24_bits_with_the_execution_unit() {
        assert_eq!(check_enumeration_bits(0, "runs"), Ok(()));
        assert_eq!(check_enumeration_bits(24, "runs"), Ok(()));
        let err = check_enumeration_bits(25, "runs").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("2^25 runs"), "{msg}");
        assert!(msg.contains("2^24 = 16M executions"), "{msg}");
        // Both enumerators share this guard, so the wording is identical
        // whatever is being enumerated.
        let tapes = check_enumeration_bits(30, "tapes").unwrap_err().to_string();
        assert!(tapes.contains("2^30 tapes"), "{tapes}");
        assert!(tapes.contains("2^24 = 16M executions"), "{tapes}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
        assert_send_sync::<CaError>();
    }
}
