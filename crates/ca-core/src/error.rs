//! Error types for the coordinated-attack model.

use std::error::Error as StdError;
use std::fmt;

/// Errors produced when constructing or validating model objects.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// A graph was required to have at least this many vertices.
    TooFewProcesses {
        /// Number of vertices provided.
        got: usize,
        /// Minimum required.
        min: usize,
    },
    /// A graph supports at most this many vertices (seen-set bitmask width).
    TooManyProcesses {
        /// Number of vertices provided.
        got: usize,
        /// Maximum supported.
        max: usize,
    },
    /// An edge endpoint referred to a vertex outside the graph.
    VertexOutOfRange {
        /// The offending vertex index.
        vertex: usize,
        /// Number of vertices in the graph.
        m: usize,
    },
    /// Self-loops are not allowed in the communication graph.
    SelfLoop {
        /// The vertex with the self-loop.
        vertex: usize,
    },
    /// A run referenced a message slot that does not exist
    /// (non-edge, or round outside `1..=N`).
    InvalidMessageSlot {
        /// Reason the slot is invalid.
        reason: &'static str,
    },
    /// A parameter was outside its legal range.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Human-readable reason.
        reason: &'static str,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::TooFewProcesses { got, min } => {
                write!(f, "graph has {got} processes but at least {min} are required")
            }
            ModelError::TooManyProcesses { got, max } => {
                write!(f, "graph has {got} processes but at most {max} are supported")
            }
            ModelError::VertexOutOfRange { vertex, m } => {
                write!(f, "vertex {vertex} out of range for graph with {m} vertices")
            }
            ModelError::SelfLoop { vertex } => {
                write!(f, "self-loop at vertex {vertex} is not allowed")
            }
            ModelError::InvalidMessageSlot { reason } => {
                write!(f, "invalid message slot: {reason}")
            }
            ModelError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
        }
    }
}

impl StdError for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let e = ModelError::TooFewProcesses { got: 1, min: 2 };
        assert_eq!(e.to_string(), "graph has 1 processes but at least 2 are required");
        let e = ModelError::SelfLoop { vertex: 3 };
        assert!(e.to_string().contains("self-loop"));
        let e = ModelError::InvalidParameter { name: "epsilon", reason: "must be positive" };
        assert!(e.to_string().contains("epsilon"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelError>();
    }
}
