//! The *flows-to* relation: information flow / possible causality in a run.
//!
//! `(i, r)` **directly flows to** `(k, s)` in run `R` iff `s = r + 1` and
//! either `i = k` (a process remembers its own state) or `(i, k, s) ∈ R`
//! (a message sent by `i` is delivered to `k` in round `s`). *Flows to* is
//! the reflexive transitive closure (Lamport's happens-before specialized to
//! this synchronous model). The environment pair `(v₀, -1)` directly flows to
//! `(j, 0)` iff the input tuple `(v₀, j, 0)` is in the run.
//!
//! Everything in the paper's lower bounds is phrased in terms of this
//! relation: information levels (module [`crate::level`]), the clipping
//! construction (module [`crate::clip`]), and causal independence
//! (Lemma A.2).

use crate::bitset::BitSet;
use crate::ids::{ProcessId, Round};
use crate::run::Run;
use std::fmt;

/// Per-round delivery index for a run: the delivered messages of each round,
/// ready for forward/backward reachability sweeps.
#[derive(Clone, Debug)]
pub struct FlowGraph {
    m: usize,
    n: u32,
    /// `by_round[r]` (for `r` in `1..=n`) lists delivered `(from, to)` pairs of round `r`.
    by_round: Vec<Vec<(ProcessId, ProcessId)>>,
    /// Processes receiving the input signal.
    inputs: BitSet,
}

impl FlowGraph {
    /// Indexes a run for reachability queries.
    pub fn new(run: &Run) -> Self {
        let n = run.horizon();
        let mut by_round = vec![Vec::new(); n as usize + 1];
        for r in Round::protocol_rounds(n) {
            by_round[r.index()].extend(run.messages_in_round(r).map(|s| (s.from, s.to)));
        }
        let mut inputs = BitSet::new(run.process_count());
        for p in run.inputs() {
            inputs.insert(p.index());
        }
        FlowGraph {
            m: run.process_count(),
            n,
            by_round,
            inputs,
        }
    }

    /// Number of processes.
    pub fn process_count(&self) -> usize {
        self.m
    }

    /// The horizon `N`.
    pub fn horizon(&self) -> u32 {
        self.n
    }

    /// Forward reachability from the environment pair `(v₀, -1)`:
    /// which `(j, r)` does the input flow to?
    ///
    /// # Examples
    ///
    /// ```
    /// use ca_core::{graph::Graph, run::Run, flow::FlowGraph, ids::{ProcessId, Round}};
    /// let g = Graph::complete(2)?;
    /// let run = Run::good_with_inputs(&g, 2, &[ProcessId::new(0)]);
    /// let flow = FlowGraph::new(&run);
    /// let reach = flow.env_reach();
    /// assert!(reach.contains(ProcessId::new(0), Round::new(0)));
    /// assert!(!reach.contains(ProcessId::new(1), Round::new(0)));
    /// assert!(reach.contains(ProcessId::new(1), Round::new(1))); // via round-1 message
    /// # Ok::<(), ca_core::error::ModelError>(())
    /// ```
    pub fn env_reach(&self) -> Reach {
        let mut init = BitSet::new(self.m);
        init.union_with(&self.inputs);
        self.forward_from(init, Round::INPUT)
    }

    /// Forward reachability from `(i, r)`: which `(j, s)` with `s ≥ r` does it
    /// flow to?
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `r > N`.
    pub fn reach_from(&self, i: ProcessId, r: Round) -> Reach {
        assert!(i.index() < self.m, "process out of range");
        assert!(r.get() <= self.n, "round beyond horizon");
        let mut init = BitSet::new(self.m);
        init.insert(i.index());
        self.forward_from(init, r)
    }

    fn forward_from(&self, init: BitSet, start: Round) -> Reach {
        let mut per_round: Vec<Option<BitSet>> = vec![None; self.n as usize + 1];
        let mut cur = init;
        per_round[start.index()] = Some(cur.clone());
        for r in (start.get() + 1)..=self.n {
            // Messages of round r carry end-of-round-(r-1) state: test
            // membership against the previous round's set, not the one being
            // built (two messages cannot chain within a single round). `cur`
            // holds exactly that set at the top of each iteration.
            let prev = cur.clone();
            for &(from, to) in &self.by_round[r as usize] {
                if prev.contains(from.index()) {
                    cur.insert(to.index());
                }
            }
            per_round[r as usize] = Some(cur.clone());
        }
        Reach { start, per_round }
    }

    /// Backward reachability to `(i, r)`: which `(k, s)` with `s ≤ r` flow to
    /// it, and does the environment pair `(v₀, -1)` flow to it?
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `r > N`.
    pub fn reach_to(&self, i: ProcessId, r: Round) -> BackReach {
        assert!(i.index() < self.m, "process out of range");
        assert!(r.get() <= self.n, "round beyond horizon");
        let mut per_round: Vec<Option<BitSet>> = vec![None; self.n as usize + 1];
        let mut cur = BitSet::new(self.m);
        cur.insert(i.index());
        per_round[r.index()] = Some(cur.clone());
        for s in (0..r.get()).rev() {
            // (k, s) flows to (j, s+1) iff k = j or (k, j, s+1) ∈ R. The
            // receiver test must use the round-(s+1) set: a sender added at
            // round s must not enable other round-(s+1) messages. `cur` holds
            // exactly that set at the top of each iteration.
            let next = cur.clone();
            for &(from, to) in &self.by_round[s as usize + 1] {
                if next.contains(to.index()) {
                    cur.insert(from.index());
                }
            }
            per_round[s as usize] = Some(cur.clone());
        }
        // (v₀, -1) flows to the target iff some input recipient is in the
        // round-0 backward set.
        let env = if r == Round::INPUT {
            cur.contains(i.index()) && self.inputs.contains(i.index())
        } else {
            per_round[0]
                .as_ref()
                .map(|s0| self.inputs.iter().any(|k| s0.contains(k)))
                .unwrap_or(false)
        };
        BackReach {
            end: r,
            per_round,
            env,
        }
    }

    /// Returns whether `(src, r_src)` flows to `(dst, r_dst)`.
    ///
    /// # Panics
    ///
    /// Panics if a process is out of range or a round exceeds the horizon.
    pub fn flows_to(&self, src: ProcessId, r_src: Round, dst: ProcessId, r_dst: Round) -> bool {
        if r_src > r_dst {
            return false;
        }
        self.reach_from(src, r_src).contains(dst, r_dst)
    }

    /// Returns whether the input `(v₀, -1)` flows to `(dst, r_dst)`.
    pub fn input_flows_to(&self, dst: ProcessId, r_dst: Round) -> bool {
        self.env_reach().contains(dst, r_dst)
    }

    /// Returns whether processes `i` and `j` are **causally independent** in
    /// this run: there is no `k` such that `(k, 0)` flows to both `(i, N)`
    /// and `(j, N)` (Lemma A.2's premise).
    pub fn causally_independent(&self, i: ProcessId, j: ProcessId) -> bool {
        let bi = self.reach_to(i, Round::new(self.n));
        let bj = self.reach_to(j, Round::new(self.n));
        let (si, sj) = match (bi.at_round(Round::INPUT), bj.at_round(Round::INPUT)) {
            (Some(a), Some(b)) => (a, b),
            _ => return true,
        };
        let mut inter = si.clone();
        inter.intersect_with(sj);
        inter.is_empty()
    }
}

/// The forward cone of a point: for each round, the set of processes reached.
#[derive(Clone)]
pub struct Reach {
    start: Round,
    per_round: Vec<Option<BitSet>>,
}

impl Reach {
    /// Returns whether the source flows to `(j, r)`.
    pub fn contains(&self, j: ProcessId, r: Round) -> bool {
        self.per_round
            .get(r.index())
            .and_then(|s| s.as_ref())
            .map(|s| s.contains(j.index()))
            .unwrap_or(false)
    }

    /// The set of processes reached by round `r`, if `r` is at or after the source round.
    pub fn at_round(&self, r: Round) -> Option<&BitSet> {
        self.per_round.get(r.index()).and_then(|s| s.as_ref())
    }

    /// The round the cone starts at.
    pub fn start(&self) -> Round {
        self.start
    }
}

impl fmt::Debug for Reach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Reach")
            .field("start", &self.start)
            .field("final", &self.per_round.last().and_then(|s| s.as_ref()))
            .finish()
    }
}

/// The backward cone of a point: for each round, the set of processes whose
/// state at that round flows to the target, plus whether the environment does.
#[derive(Clone)]
pub struct BackReach {
    end: Round,
    per_round: Vec<Option<BitSet>>,
    env: bool,
}

impl BackReach {
    /// Returns whether `(k, s)` flows to the target.
    pub fn contains(&self, k: ProcessId, s: Round) -> bool {
        if s > self.end {
            return false;
        }
        self.per_round
            .get(s.index())
            .and_then(|set| set.as_ref())
            .map(|set| set.contains(k.index()))
            .unwrap_or(false)
    }

    /// The set of processes whose round-`s` state flows to the target.
    pub fn at_round(&self, s: Round) -> Option<&BitSet> {
        if s > self.end {
            return None;
        }
        self.per_round.get(s.index()).and_then(|set| set.as_ref())
    }

    /// Returns whether the environment pair `(v₀, -1)` flows to the target.
    pub fn env_flows(&self) -> bool {
        self.env
    }

    /// The target round.
    pub fn end(&self) -> Round {
        self.end
    }
}

impl fmt::Debug for BackReach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackReach")
            .field("end", &self.end)
            .field("env", &self.env)
            .field("round0", &self.per_round.first().and_then(|s| s.as_ref()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }
    fn r(i: u32) -> Round {
        Round::new(i)
    }

    #[test]
    fn reflexive_same_process_flow() {
        let g = Graph::complete(2).unwrap();
        let run = Run::empty(2, 3);
        let _ = g;
        let flow = FlowGraph::new(&run);
        // (i, r) flows to (i, s) for all s >= r even with no messages.
        assert!(flow.flows_to(p(0), r(0), p(0), r(3)));
        assert!(flow.flows_to(p(0), r(2), p(0), r(2)), "reflexive");
        assert!(!flow.flows_to(p(0), r(2), p(0), r(1)), "no backward flow");
        assert!(
            !flow.flows_to(p(0), r(0), p(1), r(3)),
            "no cross flow without messages"
        );
    }

    #[test]
    fn single_message_flow() {
        let g = Graph::complete(2).unwrap();
        let mut run = Run::empty(2, 3);
        run.add_message(p(0), p(1), r(2));
        run.validate(&g).unwrap();
        let flow = FlowGraph::new(&run);
        // (0, r) for r <= 1 flows to (1, s) for s >= 2.
        assert!(flow.flows_to(p(0), r(0), p(1), r(2)));
        assert!(flow.flows_to(p(0), r(1), p(1), r(3)));
        assert!(
            !flow.flows_to(p(0), r(2), p(1), r(3)),
            "message already sent"
        );
        assert!(!flow.flows_to(p(1), r(0), p(0), r(3)), "wrong direction");
    }

    #[test]
    fn transitive_flow_through_intermediate() {
        // Lemma 4.1: flow composes. 0 →(r1) 1 →(r2) 2 on a line graph.
        let g = Graph::line(3).unwrap();
        let mut run = Run::empty(3, 2);
        run.add_message(p(0), p(1), r(1));
        run.add_message(p(1), p(2), r(2));
        run.validate(&g).unwrap();
        let flow = FlowGraph::new(&run);
        assert!(flow.flows_to(p(0), r(0), p(2), r(2)));
        assert!(
            !flow.flows_to(p(0), r(1), p(2), r(2)),
            "0's round-1 state misses the r1 message"
        );
    }

    #[test]
    fn env_reach_follows_inputs() {
        let g = Graph::complete(3).unwrap();
        let mut run = Run::good_with_inputs(&g, 2, &[p(1)]);
        run.cut_from_round(r(2));
        let flow = FlowGraph::new(&run);
        let reach = flow.env_reach();
        assert!(reach.contains(p(1), r(0)));
        assert!(!reach.contains(p(0), r(0)));
        assert!(
            reach.contains(p(0), r(1)),
            "round-1 gossip spreads the input"
        );
        assert!(flow.input_flows_to(p(2), r(1)));
        assert!(!FlowGraph::new(&Run::empty(3, 2)).input_flows_to(p(1), r(2)));
    }

    #[test]
    fn back_reach_matches_forward() {
        let g = Graph::ring(4).unwrap();
        let mut run = Run::good(&g, 3);
        run.remove_message(p(0), p(1), r(1));
        run.remove_message(p(3), p(0), r(2));
        let flow = FlowGraph::new(&run);
        // Cross-check: forward and backward agree on every pair.
        for i in g.vertices() {
            for ri in 0..=3u32 {
                let fwd = flow.reach_from(i, r(ri));
                for j in g.vertices() {
                    for rj in 0..=3u32 {
                        let back = flow.reach_to(j, r(rj));
                        assert_eq!(
                            fwd.contains(j, r(rj)),
                            back.contains(i, r(ri)),
                            "mismatch ({i},{ri}) → ({j},{rj})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn env_back_reach() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good_with_inputs(&g, 2, &[p(0)]);
        let flow = FlowGraph::new(&run);
        assert!(
            flow.reach_to(p(1), r(1)).env_flows(),
            "input reaches P1 via round-1 message"
        );
        let mut cut = run.clone();
        cut.cut_from_round(r(1));
        let flow = FlowGraph::new(&cut);
        assert!(!flow.reach_to(p(1), r(2)).env_flows());
        assert!(flow.reach_to(p(0), r(0)).env_flows());
    }

    #[test]
    fn causal_independence() {
        // Star graph, no messages at all: all pairs causally independent...
        let run = Run::empty(3, 2);
        let flow = FlowGraph::new(&run);
        assert!(flow.causally_independent(p(1), p(2)));
        // ...but i is never causally independent of itself ((i,0) flows to (i,N)).
        assert!(!flow.causally_independent(p(1), p(1)));

        // A shared causal ancestor breaks independence: 0 sends to both 1 and 2.
        let g = Graph::star(3).unwrap();
        let mut run = Run::empty(3, 2);
        run.add_message(p(0), p(1), r(1));
        run.add_message(p(0), p(2), r(2));
        run.validate(&g).unwrap();
        let flow = FlowGraph::new(&run);
        assert!(!flow.causally_independent(p(1), p(2)));

        // One-directional contact only: 1 hears from 0, 2 hears nothing.
        let mut run = Run::empty(3, 2);
        run.add_message(p(0), p(1), r(1));
        let flow = FlowGraph::new(&run);
        assert!(flow.causally_independent(p(1), p(2)));
    }

    #[test]
    fn reach_accessors() {
        let run = Run::empty(2, 2);
        let flow = FlowGraph::new(&run);
        let reach = flow.reach_from(p(0), r(1));
        assert_eq!(reach.start(), r(1));
        assert!(reach.at_round(r(0)).is_none(), "before the cone starts");
        assert!(reach.at_round(r(1)).unwrap().contains(0));
        let back = flow.reach_to(p(0), r(1));
        assert_eq!(back.end(), r(1));
        assert!(back.at_round(r(2)).is_none(), "after the cone ends");
        assert!(!back.contains(p(0), r(2)));
    }
}
