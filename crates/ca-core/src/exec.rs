//! The execution generator `Ex(R, α)`.
//!
//! Given a protocol `F`, a graph, a run `R`, and a tape vector `α`, the
//! execution is fully determined: round 0 sets the start states from `I(R)`,
//! then each round every process sends `σ_i(q_i^{r-1}, j)` to every neighbor
//! `j`, the run decides which messages arrive, and states advance via
//! `δ_i`. Outputs are read from the final states.
//!
//! [`execute`] records the entire execution (states, messages, outputs) for
//! analysis and for checking indistinguishability; [`execute_outputs`] is the
//! allocation-light fast path used by the Monte Carlo engine.

use crate::graph::Graph;
use crate::ids::{ProcessId, Round};
use crate::outcome::Outcome;
use crate::protocol::{Ctx, Protocol};
use crate::run::Run;
use crate::tape::TapeSet;
use std::fmt;

/// One process's view of an execution: `E_i` in the paper.
#[derive(Clone)]
pub struct LocalExecution<P: Protocol> {
    /// States `q_i^0 .. q_i^N`.
    pub states: Vec<P::State>,
    /// Messages received each round: `received[r]` holds round `r`'s
    /// deliveries (index 0 is always empty), each sorted by sender.
    pub received: Vec<Vec<(ProcessId, P::Msg)>>,
    /// Messages sent each round: `sent[r]` holds `(to, msg)` pairs
    /// (index 0 is always empty).
    pub sent: Vec<Vec<(ProcessId, P::Msg)>>,
    /// The output bit `O_i`.
    pub output: bool,
}

impl<P: Protocol> PartialEq for LocalExecution<P> {
    fn eq(&self, other: &Self) -> bool {
        self.states == other.states
            && self.received == other.received
            && self.sent == other.sent
            && self.output == other.output
    }
}

impl<P: Protocol> fmt::Debug for LocalExecution<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalExecution")
            .field("states", &self.states)
            .field("output", &self.output)
            .finish()
    }
}

/// A complete execution `Ex(R, α)`: a vector of local executions.
#[derive(Clone)]
pub struct Execution<P: Protocol> {
    locals: Vec<LocalExecution<P>>,
}

impl<P: Protocol> Execution<P> {
    /// The local execution of process `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn local(&self, i: ProcessId) -> &LocalExecution<P> {
        &self.locals[i.index()]
    }

    /// The output vector `(O_i)`.
    pub fn outputs(&self) -> Vec<bool> {
        self.locals.iter().map(|l| l.output).collect()
    }

    /// The outcome classification of this execution.
    pub fn outcome(&self) -> Outcome {
        let outputs = self.outputs();
        Outcome::classify(&outputs)
    }

    /// Returns whether this execution and `other` are *identical to* `i`
    /// (`E_i = Ẽ_i`): same states, same received messages, same sent
    /// messages, same output.
    pub fn identical_to(&self, other: &Execution<P>, i: ProcessId) -> bool {
        self.local(i) == other.local(i)
    }

    /// Number of processes.
    pub fn len(&self) -> usize {
        self.locals.len()
    }

    /// Returns whether the execution has no processes (never true).
    pub fn is_empty(&self) -> bool {
        self.locals.is_empty()
    }
}

impl<P: Protocol> fmt::Debug for Execution<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Execution")
            .field("outputs", &self.outputs())
            .finish()
    }
}

/// Generates the full execution `Ex(R, α)`, recording states and messages.
///
/// # Panics
///
/// Panics if dimensions disagree (graph vs. run vs. tapes) or if a protocol
/// draws more tape bits than [`Protocol::tape_bits`] provided.
pub fn execute<P: Protocol>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    tapes: &TapeSet,
) -> Execution<P> {
    check_dimensions(graph, run, tapes);
    let m = graph.len();
    let n = run.horizon();

    let mut readers: Vec<_> = graph.vertices().map(|i| tapes.tape(i).reader()).collect();

    // Round 0: start states.
    let mut locals: Vec<LocalExecution<P>> = graph
        .vertices()
        .map(|i| {
            let ctx = Ctx::new(graph, n, i);
            let state = protocol.init(ctx, run.has_input(i), &mut readers[i.index()]);
            LocalExecution {
                states: vec![state],
                received: vec![Vec::new()],
                sent: vec![Vec::new()],
                output: false,
            }
        })
        .collect();

    // Rounds 1..=N.
    for r in Round::protocol_rounds(n) {
        // Generate all messages from end-of-previous-round states.
        let mut inboxes: Vec<Vec<(ProcessId, P::Msg)>> = vec![Vec::new(); m];
        for i in graph.vertices() {
            let ctx = Ctx::new(graph, n, i);
            let state = locals[i.index()]
                .states
                .last()
                .expect("state history nonempty");
            let mut sent = Vec::with_capacity(graph.neighbors(i).len());
            for &j in graph.neighbors(i) {
                let msg = protocol.message(ctx, state, j);
                if run.delivers(i, j, r) {
                    inboxes[j.index()].push((i, msg.clone()));
                }
                sent.push((j, msg));
            }
            locals[i.index()].sent.push(sent);
        }
        // Deliver and transition.
        for j in graph.vertices() {
            let ctx = Ctx::new(graph, n, j);
            let mut inbox = std::mem::take(&mut inboxes[j.index()]);
            inbox.sort_by_key(|(from, _)| *from);
            let state = {
                let prev = locals[j.index()]
                    .states
                    .last()
                    .expect("state history nonempty");
                protocol.transition(ctx, prev, r, &inbox, &mut readers[j.index()])
            };
            locals[j.index()].states.push(state);
            locals[j.index()].received.push(inbox);
        }
    }

    // Outputs.
    for i in graph.vertices() {
        let ctx = Ctx::new(graph, n, i);
        let state = locals[i.index()]
            .states
            .last()
            .expect("state history nonempty");
        locals[i.index()].output = protocol.output(ctx, state);
    }

    Execution { locals }
}

/// Reusable buffers for [`execute_outputs_into`].
///
/// The Monte Carlo engine runs millions of executions back to back; a
/// scratch threaded through the per-trial loop lets every trial reuse the
/// state, inbox, and output buffers of the previous one instead of
/// allocating fresh `Vec`s. A scratch is tied to nothing: the same value can
/// serve runs of different sizes, graphs, and horizons in any order.
pub struct ExecScratch<P: Protocol> {
    states: Vec<P::State>,
    inboxes: Vec<Vec<(ProcessId, P::Msg)>>,
    tape_pos: Vec<usize>,
    outputs: Vec<bool>,
}

impl<P: Protocol> ExecScratch<P> {
    /// An empty scratch; buffers grow on first use and are reused after.
    pub fn new() -> Self {
        ExecScratch {
            states: Vec::new(),
            inboxes: Vec::new(),
            tape_pos: Vec::new(),
            outputs: Vec::new(),
        }
    }
}

impl<P: Protocol> Default for ExecScratch<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Protocol> fmt::Debug for ExecScratch<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ExecScratch")
            .field("processes", &self.states.len())
            .finish()
    }
}

/// Runs the execution and returns only the output vector — the fast path for
/// Monte Carlo sampling (no trace recording).
///
/// Equivalent to [`execute_outputs_into`] with a fresh scratch; hot loops
/// should hold a scratch and call that instead.
///
/// # Panics
///
/// Panics under the same conditions as [`execute`].
pub fn execute_outputs<P: Protocol>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    tapes: &TapeSet,
) -> Vec<bool> {
    let mut scratch = ExecScratch::new();
    execute_outputs_into(protocol, graph, run, tapes, &mut scratch);
    scratch.outputs
}

/// [`execute_outputs`] with caller-provided buffers: writes the output
/// vector into `scratch` and returns it as a slice, allocating nothing once
/// the scratch has warmed up.
///
/// The produced outputs are identical to [`execute_outputs`] — the scratch
/// only changes where intermediate state lives, never what is computed.
///
/// # Panics
///
/// Panics under the same conditions as [`execute`].
pub fn execute_outputs_into<'s, P: Protocol>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    tapes: &TapeSet,
    scratch: &'s mut ExecScratch<P>,
) -> &'s [bool] {
    execute_outputs_impl(protocol, graph, run, tapes, scratch, None)
}

/// [`execute_outputs_into`] reporting per-execution engine counters
/// (transitions, messages delivered/destroyed, tape bits consumed) to an
/// observability sink.
///
/// Computes exactly what [`execute_outputs_into`] computes; with the `obs`
/// feature off the extra argument is zero-sized and the whole instrumentation
/// folds away.
///
/// # Panics
///
/// Panics under the same conditions as [`execute`].
pub fn execute_outputs_observed<'s, P: Protocol>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    tapes: &TapeSet,
    scratch: &'s mut ExecScratch<P>,
    obs: &ca_obs::Metrics,
) -> &'s [bool] {
    execute_outputs_impl(protocol, graph, run, tapes, scratch, Some(obs))
}

fn execute_outputs_impl<'s, P: Protocol>(
    protocol: &P,
    graph: &Graph,
    run: &Run,
    tapes: &TapeSet,
    scratch: &'s mut ExecScratch<P>,
    obs: Option<&ca_obs::Metrics>,
) -> &'s [bool] {
    let _span = obs.map(|o| o.span(ca_obs::SpanId::ExecExecute));
    check_dimensions(graph, run, tapes);
    let m = graph.len();
    let n = run.horizon();
    let mut delivered: u64 = 0;

    // Tape read positions persist across rounds; readers are reconstructed
    // per use so the scratch stays free of borrows into `tapes`.
    scratch.tape_pos.clear();
    scratch.tape_pos.resize(m, 0);

    scratch.states.clear();
    for i in graph.vertices() {
        let mut reader = tapes.tape(i).reader();
        let state = protocol.init(Ctx::new(graph, n, i), run.has_input(i), &mut reader);
        scratch.tape_pos[i.index()] = reader.bits_consumed();
        scratch.states.push(state);
    }

    if scratch.inboxes.len() != m {
        scratch.inboxes.resize_with(m, Vec::new);
    }

    for r in Round::protocol_rounds(n) {
        for inbox in scratch.inboxes.iter_mut() {
            inbox.clear();
        }
        let states = &scratch.states;
        let inboxes = &mut scratch.inboxes;
        run.for_each_message_in_round(r, |slot| {
            let ctx = Ctx::new(graph, n, slot.from);
            let msg = protocol.message(ctx, &states[slot.from.index()], slot.to);
            inboxes[slot.to.index()].push((slot.from, msg));
            delivered += 1;
        });
        for j in graph.vertices() {
            // `messages_in_round` yields slots sorted by (from, to), so each
            // inbox is filled in sender order already — no sort needed.
            debug_assert!(
                scratch.inboxes[j.index()]
                    .windows(2)
                    .all(|w| w[0].0 <= w[1].0),
                "inbox fill order must follow the canonical slot order"
            );
            let mut reader = tapes.tape(j).reader_at(scratch.tape_pos[j.index()]);
            scratch.states[j.index()] = protocol.transition(
                Ctx::new(graph, n, j),
                &scratch.states[j.index()],
                r,
                &scratch.inboxes[j.index()],
                &mut reader,
            );
            scratch.tape_pos[j.index()] = reader.bits_consumed();
        }
    }

    scratch.outputs.clear();
    scratch.outputs.extend(
        graph
            .vertices()
            .map(|i| protocol.output(Ctx::new(graph, n, i), &scratch.states[i.index()])),
    );

    if let Some(o) = obs {
        use ca_obs::{CounterId, HistId};
        // One δ application per process per protocol round.
        o.add(CounterId::ExecTransitions, (m as u64) * u64::from(n));
        o.add(CounterId::ExecMessagesDelivered, delivered);
        // Potential slots = directed edges × rounds; the adversary destroyed
        // whatever was not delivered.
        let slots = (graph.edge_count() as u64) * 2 * u64::from(n);
        o.add(CounterId::ExecMessagesDestroyed, slots - delivered);
        let bits: u64 = scratch.tape_pos.iter().map(|&p| p as u64).sum();
        o.add(CounterId::ExecTapeBitsConsumed, bits);
        o.record(HistId::ExecDeliveredPerTrial, delivered);
    }
    &scratch.outputs
}

fn check_dimensions(graph: &Graph, run: &Run, tapes: &TapeSet) {
    assert_eq!(
        graph.len(),
        run.process_count(),
        "graph and run disagree on process count"
    );
    assert_eq!(
        graph.len(),
        tapes.len(),
        "graph and tape set disagree on process count"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tape::TapeReader;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A deterministic "flood the input" protocol used to exercise the
    /// engine: state = has the input reached me (directly or via gossip);
    /// output = state.
    struct Flood;

    impl Protocol for Flood {
        type State = bool;
        type Msg = bool;

        fn name(&self) -> &'static str {
            "flood"
        }
        fn tape_bits(&self) -> usize {
            0
        }
        fn init(&self, _ctx: Ctx<'_>, received_input: bool, _tape: &mut TapeReader<'_>) -> bool {
            received_input
        }
        fn message(&self, _ctx: Ctx<'_>, state: &bool, _to: ProcessId) -> bool {
            *state
        }
        fn transition(
            &self,
            _ctx: Ctx<'_>,
            state: &bool,
            _round: Round,
            received: &[(ProcessId, bool)],
            _tape: &mut TapeReader<'_>,
        ) -> bool {
            *state || received.iter().any(|(_, m)| *m)
        }
        fn output(&self, _ctx: Ctx<'_>, state: &bool) -> bool {
            *state
        }
    }

    fn p(i: u32) -> ProcessId {
        ProcessId::new(i)
    }

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 64)
    }

    #[test]
    fn flood_reaches_everyone_on_good_run() {
        let g = Graph::line(4).unwrap();
        let run = Run::good_with_inputs(&g, 3, &[p(0)]);
        let ex = execute(&Flood, &g, &run, &tapes(4));
        assert_eq!(ex.outputs(), vec![true, true, true, true]);
        assert_eq!(ex.outcome(), Outcome::TotalAttack);
    }

    #[test]
    fn flood_blocked_by_cut() {
        let g = Graph::line(4).unwrap();
        let mut run = Run::good_with_inputs(&g, 3, &[p(0)]);
        // Cut the 1→2 link entirely: input can't pass process 1.
        for r in 1..=3u32 {
            run.remove_message(p(1), p(2), Round::new(r));
        }
        let ex = execute(&Flood, &g, &run, &tapes(4));
        assert_eq!(ex.outputs(), vec![true, true, false, false]);
        assert_eq!(ex.outcome(), Outcome::PartialAttack);
    }

    #[test]
    fn flood_matches_input_flow() {
        // Flood's output is exactly "the input flows to (i, N)" — check
        // against FlowGraph on random runs.
        use crate::flow::FlowGraph;
        use rand::Rng;
        let g = Graph::ring(5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let mut run = Run::good(&g, 4);
            for i in g.vertices() {
                if rng.gen_bool(0.5) {
                    run.remove_input(i);
                }
            }
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.5) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let ex = execute(&Flood, &g, &run, &tapes(5));
            let flow = FlowGraph::new(&run);
            for i in g.vertices() {
                assert_eq!(
                    ex.local(i).output,
                    flow.input_flows_to(i, Round::new(4)),
                    "run {run:?} process {i}"
                );
            }
        }
    }

    #[test]
    fn execute_and_execute_outputs_agree() {
        use rand::Rng;
        let g = Graph::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let mut run = Run::good(&g, 3);
            let slots: Vec<_> = run.messages().collect();
            for s in slots {
                if rng.gen_bool(0.4) {
                    run.remove_message(s.from, s.to, s.round);
                }
            }
            let t = tapes(3);
            assert_eq!(
                execute(&Flood, &g, &run, &t).outputs(),
                execute_outputs(&Flood, &g, &run, &t)
            );
        }
    }

    #[test]
    fn local_execution_records_messages() {
        let g = Graph::complete(2).unwrap();
        let run = Run::good_with_inputs(&g, 2, &[p(0)]);
        let ex = execute(&Flood, &g, &run, &tapes(2));
        let l1 = ex.local(p(1));
        // Round 1: P1 received P0's "true".
        assert_eq!(l1.received[1], vec![(p(0), true)]);
        // P1 sent "false" in round 1 (its state was false at end of round 0).
        assert_eq!(l1.sent[1], vec![(p(0), false)]);
        // Round 2: P1 sends "true".
        assert_eq!(l1.sent[2], vec![(p(0), true)]);
        assert_eq!(l1.states, vec![false, true, true]);
    }

    #[test]
    fn indistinguishability_lemma_2_1_shape() {
        // Runs R = {(0→1, r1)} and R̃ = R ∪ {(1→0, r2)} differ only in a
        // message received by P0; they are identical to P1 up to... actually
        // a message *received* by 0 changes only 0's view here because Flood
        // messages from 0 don't change. Verify executions identical to 1.
        let g = Graph::complete(2).unwrap();
        let mut ra = Run::empty(2, 2);
        ra.add_input(p(0));
        ra.add_message(p(0), p(1), Round::new(1));
        let mut rb = ra.clone();
        rb.add_message(p(1), p(0), Round::new(2));
        let t = tapes(2);
        let ea = execute(&Flood, &g, &ra, &t);
        let eb = execute(&Flood, &g, &rb, &t);
        assert!(ea.identical_to(&eb, p(1)));
        assert!(!ea.identical_to(&eb, p(0)), "P0's received sets differ");
    }

    #[test]
    #[should_panic(expected = "disagree on process count")]
    fn dimension_mismatch_panics() {
        let g = Graph::complete(2).unwrap();
        let run = Run::empty(3, 2);
        execute(&Flood, &g, &run, &tapes(2));
    }
}
