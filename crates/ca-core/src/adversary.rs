//! Adversaries: sets of runs the protocol must survive.
//!
//! An adversary `𝒜` is simply a set of runs; the unsafety of a protocol
//! against `𝒜` is the worst-case disagreement probability over runs in `𝒜`.
//! The paper works with the **strong adversary** `𝒜_s` — every run is
//! allowed — and sketches a **weak adversary** that destroys messages
//! probabilistically (Section 8). Adversary *strategies* (how to search for
//! the worst run) live in `ca-sim`; this module defines the membership
//! abstraction so bounds can be stated against any run set.

use crate::graph::Graph;
use crate::run::Run;

/// A set of runs the adversary may choose from.
pub trait Adversary {
    /// Short human-readable name.
    fn name(&self) -> &'static str;

    /// Returns whether the adversary is allowed to produce this run.
    fn contains(&self, run: &Run) -> bool;
}

/// The strong adversary `𝒜_s`: all runs (any subset of messages destroyed,
/// any subset of inputs delivered).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrongAdversary;

impl StrongAdversary {
    /// Creates the strong adversary.
    pub fn new() -> Self {
        StrongAdversary
    }
}

impl Adversary for StrongAdversary {
    fn name(&self) -> &'static str {
        "strong"
    }

    fn contains(&self, _run: &Run) -> bool {
        true
    }
}

/// An adversary restricted to runs that deliver at least the messages of a
/// mandatory base run (it may destroy only the rest). Useful for studying
/// conditional unsafety ("the adversary cannot touch the backbone").
#[derive(Clone, Debug)]
pub struct AtLeastAdversary {
    base: Run,
}

impl AtLeastAdversary {
    /// Creates an adversary that must deliver at least `base`.
    pub fn new(base: Run) -> Self {
        AtLeastAdversary { base }
    }

    /// The mandatory base run.
    pub fn base(&self) -> &Run {
        &self.base
    }
}

impl Adversary for AtLeastAdversary {
    fn name(&self) -> &'static str {
        "at-least"
    }

    fn contains(&self, run: &Run) -> bool {
        self.base.is_subset(run)
    }
}

/// Enumerates the *prefix-cut* family of runs: full delivery and full input
/// until a cut round `c`, then nothing from round `c` on — one run per
/// `c ∈ 1..=n+1` (where `c = n+1` is the good run). This family contains the
/// worst case for the chain-style protocols of the paper and is the cheap
/// first line of adversary search.
pub fn prefix_cut_runs(graph: &Graph, n: u32) -> Vec<Run> {
    (1..=n + 1)
        .map(|c| {
            let mut run = Run::good(graph, n);
            if c <= n {
                run.cut_from_round(crate::ids::Round::new(c));
            }
            run
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    #[test]
    fn strong_adversary_contains_everything() {
        let g = Graph::complete(2).unwrap();
        let adv = StrongAdversary::new();
        assert_eq!(adv.name(), "strong");
        assert!(adv.contains(&Run::empty(2, 3)));
        assert!(adv.contains(&Run::good(&g, 3)));
    }

    #[test]
    fn at_least_adversary_requires_base() {
        let g = Graph::complete(2).unwrap();
        let base = Run::good_with_inputs(&g, 2, &[]);
        let adv = AtLeastAdversary::new(base.clone());
        assert!(adv.contains(&Run::good(&g, 2)));
        assert!(!adv.contains(&Run::empty(2, 2)));
        assert_eq!(adv.base(), &base);
    }

    #[test]
    fn prefix_cut_family_shape() {
        let g = Graph::complete(2).unwrap();
        let runs = prefix_cut_runs(&g, 3);
        assert_eq!(runs.len(), 4);
        // c = 1: nothing delivered.
        assert_eq!(runs[0].message_count(), 0);
        // c = 2: only round 1 delivered (2 directed slots).
        assert_eq!(runs[1].message_count(), 2);
        // c = 4 (= n+1): the good run.
        assert_eq!(runs[3], Run::good(&g, 3));
        // All keep the full input set.
        for r in &runs {
            assert_eq!(r.input_count(), 2);
        }
    }
}
