//! Property-based tests of the model substrate.
//!
//! Strategy: generate random graphs and random runs, then assert the paper's
//! structural lemmas (flow transitivity, clipping, level monotonicity) and
//! the algebraic laws of the support types.

use ca_core::bitset::BitSet;
use ca_core::clip::{clip, is_clipped};
use ca_core::flow::FlowGraph;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::{levels, modified_levels};
use ca_core::outcome::Outcome;
use ca_core::rational::Rational;
use ca_core::run::Run;
use proptest::prelude::*;

/// Strategy: a small connected-ish graph (complete, ring, star, line) with
/// 2..=5 vertices.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=5, 0u8..4).prop_map(|(m, kind)| match kind {
        0 => Graph::complete(m).expect("graph"),
        1 if m >= 3 => Graph::ring(m).expect("graph"),
        2 => Graph::star(m.max(2)).expect("graph"),
        _ => Graph::line(m).expect("graph"),
    })
}

/// Strategy: a run over the graph with horizon `n`, with each input and each
/// message slot kept according to a random bitmask.
fn run_strategy(n: u32) -> impl Strategy<Value = (Graph, Run)> {
    graph_strategy().prop_flat_map(move |g| {
        let slots: Vec<_> = Run::good(&g, n).messages().collect();
        let slot_count = slots.len();
        let m = g.len();
        (
            Just(g),
            proptest::collection::vec(any::<bool>(), m),
            proptest::collection::vec(any::<bool>(), slot_count),
        )
            .prop_map(move |(g, inputs, keeps)| {
                let mut run = Run::empty(g.len(), n);
                for (i, keep) in inputs.iter().enumerate() {
                    if *keep {
                        run.add_input(ProcessId::new(i as u32));
                    }
                }
                for (s, keep) in slots.iter().zip(&keeps) {
                    if *keep {
                        run.add_message(s.from, s.to, s.round);
                    }
                }
                (g, run)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Lemma 4.1: flows-to is transitive.
    #[test]
    fn flow_is_transitive((_g, run) in run_strategy(3)) {
        let flow = FlowGraph::new(&run);
        let m = run.process_count();
        for i in 0..m {
            for j in 0..m {
                for k in 0..m {
                    for (ri, rj, rk) in [(0u32, 1u32, 2u32), (0, 2, 3), (1, 2, 3)] {
                        let a = flow.flows_to(ProcessId::new(i as u32), Round::new(ri), ProcessId::new(j as u32), Round::new(rj));
                        let b = flow.flows_to(ProcessId::new(j as u32), Round::new(rj), ProcessId::new(k as u32), Round::new(rk));
                        let c = flow.flows_to(ProcessId::new(i as u32), Round::new(ri), ProcessId::new(k as u32), Round::new(rk));
                        if a && b {
                            prop_assert!(c, "transitivity violated: ({i},{ri})→({j},{rj})→({k},{rk})");
                        }
                    }
                }
            }
        }
    }

    /// Clipping is idempotent, produces sub-runs, and preserves L_i and ML_i
    /// (Lemma 4.2).
    #[test]
    fn clipping_laws((g, run) in run_strategy(3)) {
        for i in g.vertices() {
            let clipped = clip(&run, i);
            prop_assert!(clipped.is_subset(&run));
            prop_assert!(is_clipped(&clipped, i));
            prop_assert_eq!(levels(&run).level(i), levels(&clipped).level(i));
            prop_assert_eq!(modified_levels(&run).level(i), modified_levels(&clipped).level(i));
        }
    }

    /// Lemma 5.2: if L_i(R) = l > 0 then some process has level ≤ l-1 in
    /// Clip_i(R).
    #[test]
    fn clipped_run_has_lagging_process((g, run) in run_strategy(3)) {
        for i in g.vertices() {
            let l = levels(&run).level(i);
            if l > 0 {
                let clipped = clip(&run, i);
                let min = g.vertices().map(|k| levels(&clipped).level(k)).min().unwrap();
                prop_assert!(min < l, "Lemma 5.2: min {min} vs l {l}");
            }
        }
    }

    /// Levels are monotone in the run (more messages/inputs ⟹ levels not lower)
    /// and satisfy Lemmas 6.1 / 6.2.
    #[test]
    fn level_laws((g, run) in run_strategy(3)) {
        let l = levels(&run);
        let ml = modified_levels(&run);
        // Lemma 6.1.
        for i in g.vertices() {
            prop_assert!(ml.level(i) <= l.level(i));
            prop_assert!(l.level(i) <= ml.level(i) + 1);
        }
        // Lemma 6.2.
        let finals = ml.final_levels();
        let max = *finals.iter().max().unwrap();
        for v in &finals {
            prop_assert!(v + 1 >= max);
        }
        // Monotone in rounds.
        for i in g.vertices() {
            for r in 1..=3u32 {
                prop_assert!(l.level_at(i, Round::new(r)) >= l.level_at(i, Round::new(r - 1)));
            }
        }
        // Monotone in the run: the good run dominates.
        let good = levels(&Run::good(&g, 3));
        for i in g.vertices() {
            prop_assert!(good.level(i) >= l.level(i));
        }
    }

    /// The gossip level computation matches the literal recursive definition.
    #[test]
    fn gossip_matches_definition((g, run) in run_strategy(2)) {
        for i in g.vertices() {
            prop_assert_eq!(
                levels(&run).level(i),
                ca_core::level::level_by_definition(&run, i, Round::new(2))
            );
            prop_assert_eq!(
                modified_levels(&run).level(i),
                ca_core::level::modified_level_by_definition(&run, i, Round::new(2))
            );
        }
    }

    /// Forward and backward reachability agree.
    #[test]
    fn flow_duality((g, run) in run_strategy(3)) {
        let flow = FlowGraph::new(&run);
        for i in g.vertices() {
            let fwd = flow.reach_from(i, Round::new(0));
            for j in g.vertices() {
                let back = flow.reach_to(j, Round::new(3));
                prop_assert_eq!(fwd.contains(j, Round::new(3)), back.contains(i, Round::new(0)));
            }
        }
    }

    /// Outcome classification is total and consistent.
    #[test]
    fn outcome_classification(outputs in proptest::collection::vec(any::<bool>(), 1..8)) {
        let o = Outcome::classify(&outputs);
        let yes = outputs.iter().filter(|&&b| b).count();
        match o {
            Outcome::TotalAttack => prop_assert_eq!(yes, outputs.len()),
            Outcome::NoAttack => prop_assert_eq!(yes, 0),
            Outcome::PartialAttack => prop_assert!(yes > 0 && yes < outputs.len()),
        }
    }

    /// Rational arithmetic: field laws on small values.
    #[test]
    fn rational_laws(a in -50i128..50, b in 1i128..50, c in -50i128..50, d in 1i128..50) {
        let x = Rational::new(a, b);
        let y = Rational::new(c, d);
        prop_assert_eq!(x + y, y + x);
        prop_assert_eq!(x * y, y * x);
        prop_assert_eq!(x + Rational::ZERO, x);
        prop_assert_eq!(x * Rational::ONE, x);
        prop_assert_eq!(x - x, Rational::ZERO);
        prop_assert_eq!((x + y) - y, x);
        if y != Rational::ZERO {
            prop_assert_eq!((x / y) * y, x);
        }
        prop_assert_eq!(x * (y + Rational::ONE), x * y + x);
    }

    /// BitSet behaves like a set of usize.
    #[test]
    fn bitset_model(ops in proptest::collection::vec((0usize..100, any::<bool>()), 0..50)) {
        let mut bs = BitSet::new(100);
        let mut model = std::collections::BTreeSet::new();
        for (x, insert) in ops {
            if insert {
                bs.insert(x);
                model.insert(x);
            } else {
                bs.remove(x);
                model.remove(&x);
            }
        }
        prop_assert_eq!(bs.len(), model.len());
        prop_assert_eq!(bs.iter().collect::<Vec<_>>(), model.into_iter().collect::<Vec<_>>());
    }

    /// The bit-packed run representation agrees with a reference
    /// `BTreeSet<MsgSlot>` model under arbitrary add/remove sequences —
    /// membership, count, canonical iteration order, per-round iteration —
    /// including out-of-matrix slots (process ≥ m, round outside `1..=n`)
    /// that live on the overflow path, and a serde round trip preserves
    /// equality.
    #[test]
    fn run_matches_btreeset_model(
        ops in proptest::collection::vec((0u32..6, 0u32..6, 0u32..6, any::<bool>()), 0..80)
    ) {
        let mut run = Run::empty(4, 3);
        let mut model = std::collections::BTreeSet::new();
        for (from, to, round, insert) in ops {
            let (f, t, r) = (ProcessId::new(from), ProcessId::new(to), Round::new(round));
            if insert {
                run.add_message(f, t, r);
                model.insert((from, to, round));
            } else {
                prop_assert_eq!(run.remove_message(f, t, r), model.remove(&(from, to, round)));
            }
            prop_assert_eq!(run.delivers(f, t, r), model.contains(&(from, to, round)));
        }
        prop_assert_eq!(run.message_count(), model.len());
        let listed: Vec<_> = run.messages()
            .map(|s| (s.from.as_u32(), s.to.as_u32(), s.round.get()))
            .collect();
        let expected: Vec<_> = model.iter().copied().collect();
        prop_assert_eq!(&listed, &expected, "canonical (from, to, round) order");
        for r in 0..6u32 {
            let in_round: Vec<_> = run.messages_in_round(Round::new(r))
                .map(|s| (s.from.as_u32(), s.to.as_u32(), s.round.get()))
                .collect();
            let model_round: Vec<_> = expected.iter().copied()
                .filter(|&(_, _, sr)| sr == r)
                .collect();
            prop_assert_eq!(in_round, model_round, "round {} slots", r);
        }
        let back: Run = serde::json::from_str(&serde::json::to_string(&run).unwrap()).unwrap();
        prop_assert_eq!(back, run);
    }

    /// Runs: union is an upper bound; subset is a partial order.
    #[test]
    fn run_lattice((g, run) in run_strategy(2), (g2, run2) in run_strategy(2)) {
        // Only combine when dimensions agree.
        if g.len() == g2.len() {
            let u = run.union(&run2);
            prop_assert!(run.is_subset(&u));
            prop_assert!(run2.is_subset(&u));
            prop_assert!(u.is_subset(&u));
        } else {
            prop_assert!(!run.is_subset(&run2));
        }
    }
}
