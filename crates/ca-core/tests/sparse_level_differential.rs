//! Differential property tests: the sparse counting-automaton frontier
//! against the dense gossip DP, over random graphs (generated families
//! included) and random delivery patterns.
//!
//! The dense per-process level-vector table is the test-only oracle here —
//! production callers go through [`ca_core::level::level_extremes_into`] and
//! friends, which run the `(count, seen)` frontier. See the `ca_core::level`
//! module docs and DESIGN.md §11 for why the compression is exact.

use ca_core::graph::{generators, Graph};
use ca_core::ids::ProcessId;
use ca_core::level::{
    dense_min_level_into, level_extremes_into, levels, min_level_into, min_modified_level_into,
    modified_level_extremes_into, modified_levels, LevelScratch,
};
use ca_core::run::EdgeRun;
use proptest::prelude::*;

/// Strategy: a connected graph from the classic zoo or the generated
/// families (random-regular, Watts–Strogatz, Barabási–Albert), 2..=24
/// vertices. Generator seeds come from proptest, so shrinking explores the
/// seed space too.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=24, 0u8..7, 0u64..1_000).prop_map(|(m, kind, seed)| match kind {
        0 => Graph::complete(m).expect("graph"),
        1 if m >= 3 => Graph::ring(m).expect("graph"),
        2 => Graph::star(m.max(2)).expect("graph"),
        3 => Graph::line(m).expect("graph"),
        4 if m >= 4 => {
            // Keep degree·m even and degree < m.
            let degree = if m % 2 == 0 { 3.min(m - 1) } else { 2 };
            generators::random_regular(m, degree, seed).expect("regular graph")
        }
        5 if m >= 6 => generators::watts_strogatz(m, 4, 0.3, seed).expect("ws graph"),
        6 if m >= 4 => generators::barabasi_albert(m, 2, seed).expect("ba graph"),
        _ => Graph::complete(m).expect("graph"),
    })
}

/// Strategy: an [`EdgeRun`] over the graph with horizon `n`, with random
/// inputs removed and each (edge, round) delivery destroyed per a random
/// mask.
fn edge_run_strategy(n: u32) -> impl Strategy<Value = EdgeRun> {
    graph_strategy().prop_flat_map(move |g| {
        let template = EdgeRun::good(&g, n);
        let slot_count = template.directed_edge_count() * n as usize;
        let m = g.len();
        (
            Just(template),
            proptest::collection::vec(any::<bool>(), m),
            proptest::collection::vec(any::<bool>(), slot_count),
        )
            .prop_map(move |(template, keep_inputs, kill)| {
                let mut er = template;
                for (i, keep) in keep_inputs.iter().enumerate() {
                    if !keep {
                        er.remove_input(ProcessId::new(i as u32));
                    }
                }
                let edges = er.directed_edge_count();
                for (slot, kill) in kill.iter().enumerate() {
                    if *kill {
                        er.destroy(
                            slot % edges,
                            ca_core::ids::Round::new(1 + (slot / edges) as u32),
                        );
                    }
                }
                er
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The frontier's run-wide minima equal the dense gossip DP's, for both
    /// plain and modified levels, on every sampled (graph, run).
    #[test]
    fn frontier_minima_match_dense_dp(er in edge_run_strategy(4)) {
        let dense = er.to_run();
        let mut scratch = LevelScratch::new();
        prop_assert_eq!(
            min_level_into(&er, &mut scratch),
            dense_min_level_into(&dense, false, &mut scratch)
        );
        prop_assert_eq!(
            min_modified_level_into(&er, &mut scratch),
            dense_min_level_into(&dense, true, &mut scratch)
        );
    }

    /// The frontier's (min, max) extremes equal the full per-process level
    /// tables — the oracle that materializes every vector.
    #[test]
    fn frontier_extremes_match_level_tables(er in edge_run_strategy(4)) {
        let dense = er.to_run();
        let mut scratch = LevelScratch::new();
        let l = levels(&dense);
        let ml = modified_levels(&dense);
        prop_assert_eq!(
            level_extremes_into(&er, &mut scratch),
            (l.min_level(), l.max_level())
        );
        prop_assert_eq!(
            modified_level_extremes_into(&er, &mut scratch),
            (ml.min_level(), ml.max_level())
        );
    }

    /// The edge-keyed run converts losslessly: message counts agree with the
    /// dense run it expands to.
    #[test]
    fn edge_run_expands_losslessly(er in edge_run_strategy(3)) {
        let dense = er.to_run();
        prop_assert_eq!(er.message_count(), dense.message_count());
        prop_assert_eq!(er.process_count(), dense.process_count());
        prop_assert_eq!(er.horizon(), dense.horizon());
    }

    /// Scratch reuse across graphs of different sizes never leaks state:
    /// interleaving two differently-sized runs through one scratch gives the
    /// same answers as fresh scratches.
    #[test]
    fn scratch_reuse_is_sound(a in edge_run_strategy(3), b in edge_run_strategy(3)) {
        let mut shared = LevelScratch::new();
        let ab_shared = (
            modified_level_extremes_into(&a, &mut shared),
            modified_level_extremes_into(&b, &mut shared),
            modified_level_extremes_into(&a, &mut shared),
        );
        let mut fresh_a = LevelScratch::new();
        let mut fresh_b = LevelScratch::new();
        prop_assert_eq!(ab_shared.0, modified_level_extremes_into(&a, &mut fresh_a));
        prop_assert_eq!(ab_shared.1, modified_level_extremes_into(&b, &mut fresh_b));
        prop_assert_eq!(ab_shared.2, ab_shared.0);
    }

    /// Generator determinism as a law, not a spot check: the same
    /// (family, parameters, seed) always builds the identical graph.
    #[test]
    fn generators_are_seed_deterministic(m in 6usize..=32, seed in 0u64..10_000) {
        let a = generators::watts_strogatz(m, 4, 0.2, seed).expect("ws");
        let b = generators::watts_strogatz(m, 4, 0.2, seed).expect("ws");
        prop_assert_eq!(a, b);
        let a = generators::barabasi_albert(m, 2, seed).expect("ba");
        let b = generators::barabasi_albert(m, 2, seed).expect("ba");
        prop_assert_eq!(a, b);
        let degree = if m % 2 == 0 { 3 } else { 2 };
        let a = generators::random_regular(m, degree, seed).expect("rr");
        let b = generators::random_regular(m, degree, seed).expect("rr");
        prop_assert_eq!(a, b);
    }
}
