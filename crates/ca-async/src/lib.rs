//! Asynchronous coordinated attack.
//!
//! The paper's conclusions (§8) state: *"While our results are stated in a
//! synchronous model, it seems clear that they can be extended to an
//! asynchronous model."* This crate builds that extension: an event-driven
//! model where processes react to message deliveries (no lockstep rounds),
//! an adversary — the [`courier::Courier`] — that decides, per message,
//! whether it is destroyed and when it arrives, and a hard real-time
//! deadline `T` at which every process must output.
//!
//! The asynchronous port of Protocol S ([`protocol::AsyncS`]) runs the same
//! Figure 1 counting automaton, re-broadcasting its state whenever the state
//! changes. Because the automaton (not the round structure) carries the
//! safety argument, the paper's guarantees survive verbatim:
//!
//! * `U ≤ ε` against **any** courier — counts still spread by at most one,
//!   so only `rfire` landing in a unit window splits the generals;
//! * liveness is `min(1, ε·C)` where `C` is the minimum count reached by the
//!   deadline — now a function of latency and losses rather than rounds.
//!
//! The extension experiment `X1` (see `experiments`) verifies both claims
//! against cut, lossy, and slow couriers, exactly and by Monte Carlo.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod chaos;
pub mod courier;
pub mod engine;
pub mod exact;
pub mod experiments;
pub mod hunt;
pub mod log;
pub mod protocol;
pub mod serve;
pub mod supervisor;

pub use campaign::{run_campaign, CampaignConfig, ChaosReport, OracleVerdicts, ScheduleResult};
pub use chaos::{ChaosCourier, FaultPrimitive, FaultSchedule, TimeWindow};
pub use courier::{Courier, CutCourier, Fate, RandomDropCourier, ReliableCourier, SendEvent};
pub use engine::{
    run_async, try_run_async, AsyncConfig, AsyncOutcome, AsyncProtocol, HeartbeatPolicy,
};
pub use exact::async_s_outcomes;
pub use hunt::{
    induced_run, replay_schedule, run_hunt, CandidateResult, CandidateStatus, HuntConfig,
    HuntReport,
};
pub use protocol::AsyncS;
pub use serve::{
    compare_reports, run_serve, Arrival, CourierSpec, Log2Hist, ServeConfig, ServeReport,
    ServeTotals, ShardStats,
};
pub use supervisor::{supervise, Progress, ShardRun, SuperviseOutcome};
