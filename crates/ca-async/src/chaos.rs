//! Deterministic fault-injection schedules: the chaos courier.
//!
//! A [`FaultSchedule`] is a serializable list of composable, metadata-only
//! fault primitives — link drops, probabilistic loss, delay jitter,
//! duplication, reordering, burst loss, per-process crash windows, and
//! link partitions. A [`ChaosCourier`] interprets a schedule as a
//! [`Courier`]: like the paper's strong adversary it sees only message
//! metadata (sender, receiver, send time, sequence number), never contents,
//! so it cannot learn `rfire` — every schedule is a legal adversary.
//!
//! Determinism and shrinkability are the design constraints:
//!
//! * the whole execution is a pure function of `(schedule, protocol inputs,
//!   tapes)` — a schedule saved to JSON replays to the identical outcome;
//! * each fault primitive draws its coins from a stream derived from
//!   `(schedule.seed, fault index, message seq)`, so deleting one fault
//!   never reshuffles another fault's decisions. That independence is what
//!   lets delta debugging (`ca_sim::chaos::ddmin`) shrink a violating
//!   schedule fault-by-fault while the rest of the behavior stays fixed.
//!
//! An empty schedule is exactly [`ReliableCourier`]: every message arrives
//! after `base_latency` ticks (property-tested in `tests/prop_chaos.rs`).
//!
//! [`ReliableCourier`]: crate::courier::ReliableCourier

use crate::courier::{Courier, Fate, SendEvent, Time};
use ca_core::error::CaError;
use ca_core::ids::{ProcessId, Round};
use ca_core::run::Run;
use ca_sim::chaos::mix64;
use serde::json;
use serde::{Deserialize, Serialize};

/// A half-open window of virtual time `[start, end)`; `end = None` means
/// "until forever".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeWindow {
    /// First tick the window covers.
    pub start: Time,
    /// First tick after the window, or `None` for an open-ended window.
    pub end: Option<Time>,
}

impl TimeWindow {
    /// The window covering all of time.
    pub fn always() -> Self {
        TimeWindow {
            start: 0,
            end: None,
        }
    }

    /// The open-ended window starting at `start`.
    pub fn from(start: Time) -> Self {
        TimeWindow { start, end: None }
    }

    /// The window `[start, end)`.
    pub fn between(start: Time, end: Time) -> Self {
        TimeWindow {
            start,
            end: Some(end),
        }
    }

    /// Whether the window covers tick `t`.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && self.end.is_none_or(|end| t < end)
    }

    /// Whether the window is empty (can never match).
    pub fn is_empty(&self) -> bool {
        self.end.is_some_and(|end| end <= self.start)
    }
}

/// One composable, metadata-only fault. All probabilistic primitives flip
/// coins derived from `(schedule seed, fault index, message seq)` — see the
/// module docs for why.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum FaultPrimitive {
    /// Destroys every message on the link `from → to` (both directions if
    /// `bidirectional`) sent during the window.
    DropLink {
        /// Link source.
        from: ProcessId,
        /// Link destination.
        to: ProcessId,
        /// Also destroy `to → from` traffic.
        bidirectional: bool,
        /// When the link is down (by send time).
        window: TimeWindow,
    },
    /// Destroys each message sent during the window independently with
    /// probability `p`.
    DropProb {
        /// Loss probability in `[0, 1]`.
        p: f64,
        /// When the loss process is active (by send time).
        window: TimeWindow,
    },
    /// Adds uniform extra latency in `0..=extra_max` to messages sent during
    /// the window.
    DelayJitter {
        /// Maximum extra ticks.
        extra_max: Time,
        /// When jitter applies (by send time).
        window: TimeWindow,
    },
    /// With probability `p`, schedules a second copy of the message
    /// `echo_delay` ticks after the first. The engine's sequence-number
    /// dedup delivers at most one copy.
    Duplicate {
        /// Duplication probability in `[0, 1]`.
        p: f64,
        /// Ticks between the original arrival and the echo.
        echo_delay: Time,
        /// When duplication applies (by send time).
        window: TimeWindow,
    },
    /// With probability `p`, holds a message back an extra `1..=max_swap`
    /// ticks so later sends can overtake it (FIFO violation).
    Reorder {
        /// Reorder probability in `[0, 1]`.
        p: f64,
        /// Maximum extra holding time (≥ 1).
        max_swap: Time,
        /// When reordering applies (by send time).
        window: TimeWindow,
    },
    /// Periodic outage: destroys every message sent in the first
    /// `burst_len` ticks of each `period`-tick cycle.
    BurstLoss {
        /// Cycle length (≥ 1).
        period: Time,
        /// Ticks of loss at the start of each cycle.
        burst_len: Time,
    },
    /// Crash-stops a process for the window: everything it sends — and
    /// everything sent to it — during the window is destroyed.
    CrashWindow {
        /// The crashed process.
        process: ProcessId,
        /// When the process is down (by send time).
        window: TimeWindow,
    },
    /// Partitions the graph for the window: messages crossing between
    /// `group_a` and its complement are destroyed; intra-group traffic
    /// flows normally.
    Partition {
        /// One side of the partition (the complement is the other side).
        group_a: Vec<ProcessId>,
        /// When the partition holds (by send time).
        window: TimeWindow,
    },
    /// Replays a synchronous [`Run`]: the send at tick `t` belongs to round
    /// `t / ticks_per_round + 1`, and any message whose `(from, to, round)`
    /// slot is *not* in `M(R)` is destroyed — including every send past the
    /// run's horizon. The run serializes as its canonical sorted slot list,
    /// so schedules embedding one stay readable, diffable, and
    /// byte-deterministic (the coin-stream keying below depends on that).
    ReplayRun {
        /// The synchronous run to replay.
        run: Run,
        /// Ticks of virtual time per protocol round (≥ 1).
        ticks_per_round: Time,
    },
}

impl FaultPrimitive {
    /// The primitive's activity window, when it has one (`BurstLoss` and
    /// `ReplayRun` are windowless).
    pub fn window(&self) -> Option<&TimeWindow> {
        match self {
            FaultPrimitive::DropLink { window, .. }
            | FaultPrimitive::DropProb { window, .. }
            | FaultPrimitive::DelayJitter { window, .. }
            | FaultPrimitive::Duplicate { window, .. }
            | FaultPrimitive::Reorder { window, .. }
            | FaultPrimitive::CrashWindow { window, .. }
            | FaultPrimitive::Partition { window, .. } => Some(window),
            FaultPrimitive::BurstLoss { .. } | FaultPrimitive::ReplayRun { .. } => None,
        }
    }

    /// Typed validation; `index` is used only for error messages.
    fn validate(&self, index: usize) -> Result<(), CaError> {
        if let Some(window) = self.window() {
            if window.is_empty() {
                return Err(CaError::malformed(format!(
                    "fault[{index}] window [{}, {:?}) is empty",
                    window.start, window.end
                )));
            }
        }
        let check_p = |p: f64, what: &str| {
            if !(0.0..=1.0).contains(&p) {
                return Err(CaError::malformed(format!(
                    "fault[{index}] {what} probability {p} not in [0, 1]"
                )));
            }
            Ok(())
        };
        match self {
            FaultPrimitive::DropProb { p, .. } => check_p(*p, "drop")?,
            FaultPrimitive::Duplicate { p, .. } => check_p(*p, "duplicate")?,
            FaultPrimitive::Reorder { p, max_swap, .. } => {
                check_p(*p, "reorder")?;
                if *max_swap == 0 {
                    return Err(CaError::malformed(format!(
                        "fault[{index}] reorder max_swap must be at least 1"
                    )));
                }
            }
            FaultPrimitive::BurstLoss { period, burst_len } => {
                if *period == 0 {
                    return Err(CaError::malformed(format!(
                        "fault[{index}] burst period must be at least 1"
                    )));
                }
                if burst_len > period {
                    return Err(CaError::malformed(format!(
                        "fault[{index}] burst_len {burst_len} exceeds period {period}"
                    )));
                }
            }
            FaultPrimitive::ReplayRun {
                ticks_per_round, ..
            } => {
                if *ticks_per_round == 0 {
                    return Err(CaError::malformed(format!(
                        "fault[{index}] replay ticks_per_round must be at least 1"
                    )));
                }
            }
            FaultPrimitive::DropLink { .. }
            | FaultPrimitive::DelayJitter { .. }
            | FaultPrimitive::CrashWindow { .. }
            | FaultPrimitive::Partition { .. } => {}
        }
        Ok(())
    }
}

/// A complete fault-injection schedule: a seed, a base latency, and a list
/// of [`FaultPrimitive`]s applied in order to every send.
///
/// Serializable to JSON ([`FaultSchedule::to_json`]) and back, so violating
/// schedules found by a chaos campaign can be saved, replayed, and diffed.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Seed for every probabilistic primitive's coin stream.
    pub seed: u64,
    /// Latency (≥ 1 tick) of an unfaulted delivery.
    pub base_latency: Time,
    /// The faults, applied in order.
    pub faults: Vec<FaultPrimitive>,
}

impl FaultSchedule {
    /// The empty schedule: behaviorally identical to
    /// [`ReliableCourier`](crate::courier::ReliableCourier) with the same
    /// latency.
    pub fn reliable(base_latency: Time) -> Self {
        FaultSchedule {
            seed: 0,
            base_latency,
            faults: Vec::new(),
        }
    }

    /// Validates the schedule without running it.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::MalformedConfig`] if the base latency is zero or
    /// any fault primitive has an out-of-range parameter.
    pub fn validate(&self) -> Result<(), CaError> {
        if self.base_latency == 0 {
            return Err(CaError::malformed("base_latency must be at least 1 tick"));
        }
        for (k, fault) in self.faults.iter().enumerate() {
            fault.validate(k)?;
        }
        Ok(())
    }

    /// Serializes to deterministic single-line JSON.
    pub fn to_json(&self) -> String {
        json::to_string(self).expect("schedules are always serializable")
    }

    /// Serializes to deterministic pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        json::to_string_pretty(self).expect("schedules are always serializable")
    }

    /// Parses a schedule from JSON and validates it.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::MalformedConfig`] on parse errors or invalid
    /// parameters.
    pub fn from_json(text: &str) -> Result<Self, CaError> {
        let schedule: FaultSchedule = json::from_str(text)
            .map_err(|e| CaError::malformed(format!("bad schedule JSON: {e}")))?;
        schedule.validate()?;
        Ok(schedule)
    }

    /// Human-readable field-by-field differences against another schedule
    /// (empty when equal). Useful for comparing a violating schedule with
    /// its shrunk counterexample.
    pub fn diff(&self, other: &FaultSchedule) -> Vec<String> {
        let mut out = Vec::new();
        if self.seed != other.seed {
            out.push(format!("seed: {} -> {}", self.seed, other.seed));
        }
        if self.base_latency != other.base_latency {
            out.push(format!(
                "base_latency: {} -> {}",
                self.base_latency, other.base_latency
            ));
        }
        let shared = self.faults.len().max(other.faults.len());
        for k in 0..shared {
            match (self.faults.get(k), other.faults.get(k)) {
                (Some(a), Some(b)) if a != b => {
                    out.push(format!("fault[{k}]: {a:?} -> {b:?}"));
                }
                (Some(a), None) => out.push(format!("fault[{k}] removed: {a:?}")),
                (None, Some(b)) => out.push(format!("fault[{k}] added: {b:?}")),
                _ => {}
            }
        }
        out
    }
}

/// Converts 64 uniform bits into a uniform `f64` in `[0, 1)`.
fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// FNV-1a over bytes: hashes a fault's canonical JSON into its stream id.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A [`Courier`] interpreting a [`FaultSchedule`] deterministically.
///
/// Stateless across sends: every decision is a pure function of the
/// schedule and the send's metadata, never of earlier decisions. Each
/// fault's coin stream is keyed on the schedule seed and a hash of the
/// fault's *content* (not its list position), so removing one fault never
/// reshuffles another's decisions — the property delta debugging needs.
/// (Corollary: two byte-identical faults in one schedule share a stream and
/// collapse into one.)
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosCourier {
    schedule: FaultSchedule,
    /// Per-fault stream seeds: `mix64(schedule.seed, fnv1a(fault JSON))`.
    streams: Vec<u64>,
}

impl ChaosCourier {
    /// Builds a courier after validating the schedule.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::MalformedConfig`] if the schedule is invalid.
    pub fn new(schedule: FaultSchedule) -> Result<Self, CaError> {
        schedule.validate()?;
        let streams = schedule
            .faults
            .iter()
            .map(|fault| {
                let canonical =
                    json::to_string(fault).expect("fault primitives are always serializable");
                mix64(schedule.seed, fnv1a(canonical.as_bytes()))
            })
            .collect();
        Ok(ChaosCourier { schedule, streams })
    }

    /// The interpreted schedule.
    pub fn schedule(&self) -> &FaultSchedule {
        &self.schedule
    }

    /// The decision coin for `(fault k, message seq, draw d)`: independent
    /// streams per fault content and per draw.
    fn coin(&self, fault: usize, seq: u64, draw: u64) -> u64 {
        mix64(self.streams[fault], seq.wrapping_mul(2).wrapping_add(draw))
    }

    /// Primary fate plus the number of echo copies to schedule.
    fn decide(&self, e: SendEvent) -> (Fate, Option<Time>) {
        let mut latency = self.schedule.base_latency;
        let mut destroyed = false;
        let mut echo_at_delay: Option<Time> = None;

        for (k, fault) in self.schedule.faults.iter().enumerate() {
            match fault {
                FaultPrimitive::DropLink {
                    from,
                    to,
                    bidirectional,
                    window,
                } => {
                    let hit = (e.from == *from && e.to == *to)
                        || (*bidirectional && e.from == *to && e.to == *from);
                    if hit && window.contains(e.sent_at) {
                        destroyed = true;
                    }
                }
                FaultPrimitive::DropProb { p, window } => {
                    if window.contains(e.sent_at) && unit(self.coin(k, e.seq, 0)) < *p {
                        destroyed = true;
                    }
                }
                FaultPrimitive::DelayJitter { extra_max, window } => {
                    if window.contains(e.sent_at) && *extra_max > 0 {
                        latency += self.coin(k, e.seq, 0) % (extra_max + 1);
                    }
                }
                FaultPrimitive::Duplicate {
                    p,
                    echo_delay,
                    window,
                } => {
                    if window.contains(e.sent_at) && unit(self.coin(k, e.seq, 0)) < *p {
                        echo_at_delay = Some((*echo_delay).max(1));
                    }
                }
                FaultPrimitive::Reorder {
                    p,
                    max_swap,
                    window,
                } => {
                    if window.contains(e.sent_at) && unit(self.coin(k, e.seq, 0)) < *p {
                        latency += 1 + self.coin(k, e.seq, 1) % *max_swap;
                    }
                }
                FaultPrimitive::BurstLoss { period, burst_len } => {
                    if e.sent_at % period < *burst_len {
                        destroyed = true;
                    }
                }
                FaultPrimitive::CrashWindow { process, window } => {
                    if (e.from == *process || e.to == *process) && window.contains(e.sent_at) {
                        destroyed = true;
                    }
                }
                FaultPrimitive::Partition { group_a, window } => {
                    if window.contains(e.sent_at)
                        && group_a.contains(&e.from) != group_a.contains(&e.to)
                    {
                        destroyed = true;
                    }
                }
                FaultPrimitive::ReplayRun {
                    run,
                    ticks_per_round,
                } => {
                    let round = Round::new(
                        u32::try_from(e.sent_at / ticks_per_round + 1).unwrap_or(u32::MAX),
                    );
                    if !run.delivers(e.from, e.to, round) {
                        destroyed = true;
                    }
                }
            }
        }

        if destroyed {
            (Fate::Destroy, None)
        } else {
            (Fate::Deliver(e.sent_at + latency), echo_at_delay)
        }
    }
}

impl Courier for ChaosCourier {
    fn name(&self) -> &'static str {
        "chaos"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        self.decide(event).0
    }

    fn fates(&mut self, event: SendEvent, out: &mut Vec<Fate>) {
        match self.decide(event) {
            (Fate::Destroy, _) => out.push(Fate::Destroy),
            (Fate::Deliver(at), echo) => {
                out.push(Fate::Deliver(at));
                if let Some(delay) = echo {
                    out.push(Fate::Deliver(at + delay));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::ReliableCourier;
    use crate::engine::{run_async, AsyncConfig};
    use crate::protocol::AsyncS;
    use ca_core::graph::Graph;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 64)
    }

    fn event(from: u32, to: u32, sent_at: Time, seq: u64) -> SendEvent {
        SendEvent {
            from: ProcessId::new(from),
            to: ProcessId::new(to),
            sent_at,
            seq,
        }
    }

    #[test]
    fn time_window_semantics() {
        let w = TimeWindow::between(3, 6);
        assert!(!w.contains(2) && w.contains(3) && w.contains(5) && !w.contains(6));
        assert!(TimeWindow::always().contains(0));
        assert!(TimeWindow::from(4).contains(u64::MAX));
        assert!(!TimeWindow::from(4).contains(3));
        assert!(TimeWindow::between(5, 5).is_empty());
        assert!(!TimeWindow::between(5, 6).is_empty());
    }

    #[test]
    fn empty_schedule_is_reliable() {
        let mut chaos = ChaosCourier::new(FaultSchedule::reliable(2)).unwrap();
        let mut reliable = ReliableCourier::new(2);
        for seq in 0..50 {
            let e = event(0, 1, seq, seq);
            assert_eq!(chaos.fate(e), reliable.fate(e));
        }
    }

    #[test]
    fn drop_link_is_directional_unless_bidirectional() {
        let fault = FaultPrimitive::DropLink {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            bidirectional: false,
            window: TimeWindow::always(),
        };
        let mut c = ChaosCourier::new(FaultSchedule {
            seed: 1,
            base_latency: 1,
            faults: vec![fault.clone()],
        })
        .unwrap();
        assert_eq!(c.fate(event(0, 1, 0, 0)), Fate::Destroy);
        assert_eq!(c.fate(event(1, 0, 0, 1)), Fate::Deliver(1));

        let both = FaultPrimitive::DropLink {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            bidirectional: true,
            window: TimeWindow::between(0, 5),
        };
        let mut c = ChaosCourier::new(FaultSchedule {
            seed: 1,
            base_latency: 1,
            faults: vec![both],
        })
        .unwrap();
        assert_eq!(c.fate(event(1, 0, 0, 0)), Fate::Destroy);
        assert_eq!(
            c.fate(event(1, 0, 5, 1)),
            Fate::Deliver(6),
            "window expired"
        );
    }

    #[test]
    fn burst_loss_and_partition_and_crash() {
        let schedule = FaultSchedule {
            seed: 2,
            base_latency: 1,
            faults: vec![FaultPrimitive::BurstLoss {
                period: 10,
                burst_len: 3,
            }],
        };
        let mut c = ChaosCourier::new(schedule).unwrap();
        assert_eq!(c.fate(event(0, 1, 12, 0)), Fate::Destroy);
        assert_eq!(c.fate(event(0, 1, 13, 1)), Fate::Deliver(14));

        let schedule = FaultSchedule {
            seed: 2,
            base_latency: 1,
            faults: vec![FaultPrimitive::Partition {
                group_a: vec![ProcessId::new(0)],
                window: TimeWindow::always(),
            }],
        };
        let mut c = ChaosCourier::new(schedule).unwrap();
        assert_eq!(c.fate(event(0, 1, 0, 0)), Fate::Destroy);
        assert_eq!(
            c.fate(event(1, 2, 0, 1)),
            Fate::Deliver(1),
            "intra-group ok"
        );

        let schedule = FaultSchedule {
            seed: 2,
            base_latency: 1,
            faults: vec![FaultPrimitive::CrashWindow {
                process: ProcessId::new(1),
                window: TimeWindow::between(2, 8),
            }],
        };
        let mut c = ChaosCourier::new(schedule).unwrap();
        assert_eq!(c.fate(event(1, 0, 3, 0)), Fate::Destroy, "crashed sender");
        assert_eq!(c.fate(event(0, 1, 3, 1)), Fate::Destroy, "crashed receiver");
        assert_eq!(c.fate(event(0, 2, 3, 2)), Fate::Deliver(4));
        assert_eq!(c.fate(event(1, 0, 8, 3)), Fate::Deliver(9), "recovered");
    }

    #[test]
    fn decisions_are_per_fault_independent() {
        // Removing the first fault must not reshuffle the jitter's coins,
        // even though the jitter's list position shifts — streams key on
        // fault content, not index. This is what ddmin shrinking relies on.
        let noop_drop = FaultPrimitive::DropProb {
            p: 0.0,
            window: TimeWindow::always(),
        };
        let jitter = FaultPrimitive::DelayJitter {
            extra_max: 5,
            window: TimeWindow::always(),
        };
        let with_drop = FaultSchedule {
            seed: 9,
            base_latency: 1,
            faults: vec![noop_drop, jitter.clone()],
        };
        let without_drop = FaultSchedule {
            seed: 9,
            base_latency: 1,
            faults: vec![jitter],
        };
        let mut a = ChaosCourier::new(with_drop).unwrap();
        let mut b = ChaosCourier::new(without_drop).unwrap();
        for seq in 0..100 {
            let e = event(0, 1, seq, seq);
            assert_eq!(a.fate(e), b.fate(e));
        }
        // Different schedule seeds give different decision streams.
        let jitter_only = |seed| FaultSchedule {
            seed,
            base_latency: 1,
            faults: vec![FaultPrimitive::DelayJitter {
                extra_max: 1000,
                window: TimeWindow::always(),
            }],
        };
        let mut c = ChaosCourier::new(jitter_only(1)).unwrap();
        let mut d = ChaosCourier::new(jitter_only(2)).unwrap();
        let differs = (0..50).any(|seq| {
            let e = event(0, 1, seq, seq);
            c.fate(e) != d.fate(e)
        });
        assert!(differs, "seed must drive the jitter stream");
    }

    #[test]
    fn duplicate_pushes_echo_fates() {
        let schedule = FaultSchedule {
            seed: 3,
            base_latency: 2,
            faults: vec![FaultPrimitive::Duplicate {
                p: 1.0,
                echo_delay: 3,
                window: TimeWindow::always(),
            }],
        };
        let mut c = ChaosCourier::new(schedule).unwrap();
        let mut fates = Vec::new();
        c.fates(event(0, 1, 10, 0), &mut fates);
        assert_eq!(fates, vec![Fate::Deliver(12), Fate::Deliver(15)]);
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(FaultSchedule {
            seed: 0,
            base_latency: 0,
            faults: vec![]
        }
        .validate()
        .is_err());
        let bad_p = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::DropProb {
                p: 1.5,
                window: TimeWindow::always(),
            }],
        };
        assert!(bad_p.validate().is_err());
        let bad_burst = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::BurstLoss {
                period: 2,
                burst_len: 3,
            }],
        };
        assert!(bad_burst.validate().is_err());
        let bad_swap = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::Reorder {
                p: 0.5,
                max_swap: 0,
                window: TimeWindow::always(),
            }],
        };
        assert!(ChaosCourier::new(bad_swap).is_err());
    }

    #[test]
    fn replay_run_destroys_everything_outside_the_run() {
        let mut run = Run::empty(2, 2);
        run.add_message(ProcessId::new(0), ProcessId::new(1), Round::new(1));
        run.add_message(ProcessId::new(1), ProcessId::new(0), Round::new(2));
        let schedule = FaultSchedule {
            seed: 5,
            base_latency: 2,
            faults: vec![FaultPrimitive::ReplayRun {
                run,
                ticks_per_round: 10,
            }],
        };
        let mut c = ChaosCourier::new(schedule).unwrap();
        // Round 1 (ticks 0..10): only 0→1 is in M(R).
        assert_eq!(c.fate(event(0, 1, 0, 0)), Fate::Deliver(2));
        assert_eq!(c.fate(event(1, 0, 9, 1)), Fate::Destroy);
        // Round 2 (ticks 10..20): only 1→0.
        assert_eq!(c.fate(event(1, 0, 10, 2)), Fate::Deliver(12));
        assert_eq!(c.fate(event(0, 1, 19, 3)), Fate::Destroy);
        // Past the horizon: everything dies.
        assert_eq!(c.fate(event(0, 1, 20, 4)), Fate::Destroy);

        // ticks_per_round = 0 is rejected by validation.
        let bad = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::ReplayRun {
                run: Run::empty(2, 1),
                ticks_per_round: 0,
            }],
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn replay_run_schedule_round_trips_through_json() {
        let mut run = Run::empty(3, 2);
        run.add_input(ProcessId::new(0));
        run.add_message(ProcessId::new(0), ProcessId::new(2), Round::new(1));
        run.add_message(ProcessId::new(2), ProcessId::new(1), Round::new(2));
        let schedule = FaultSchedule {
            seed: 11,
            base_latency: 1,
            faults: vec![FaultPrimitive::ReplayRun {
                run,
                ticks_per_round: 4,
            }],
        };
        let text = schedule.to_json();
        // The run appears as an explicit, readable slot list on the wire.
        assert!(text.contains(r#""messages":[{"from":0"#), "{text}");
        let back = FaultSchedule::from_json(&text).unwrap();
        assert_eq!(schedule, back);
        assert_eq!(text, back.to_json(), "serialization is deterministic");
    }

    #[test]
    fn json_round_trip_preserves_schedules() {
        let schedule = FaultSchedule {
            seed: 42,
            base_latency: 2,
            faults: vec![
                FaultPrimitive::DropProb {
                    p: 0.25,
                    window: TimeWindow::between(1, 9),
                },
                FaultPrimitive::CrashWindow {
                    process: ProcessId::new(2),
                    window: TimeWindow::from(4),
                },
                FaultPrimitive::Partition {
                    group_a: vec![ProcessId::new(0), ProcessId::new(1)],
                    window: TimeWindow::always(),
                },
            ],
        };
        let text = schedule.to_json();
        let back = FaultSchedule::from_json(&text).unwrap();
        assert_eq!(schedule, back);
        // Serialization is deterministic: same schedule, same bytes.
        assert_eq!(text, back.to_json());
        // Pretty form parses too.
        assert_eq!(
            FaultSchedule::from_json(&schedule.to_json_pretty()).unwrap(),
            schedule
        );
        // Parse errors and invalid parameters surface as typed errors.
        assert!(FaultSchedule::from_json("{").is_err());
        assert!(FaultSchedule::from_json(r#"{"seed":0,"base_latency":0,"faults":[]}"#).is_err());
    }

    #[test]
    fn diff_reports_changed_and_removed_faults() {
        let a = FaultSchedule {
            seed: 1,
            base_latency: 1,
            faults: vec![
                FaultPrimitive::BurstLoss {
                    period: 5,
                    burst_len: 1,
                },
                FaultPrimitive::DropProb {
                    p: 0.5,
                    window: TimeWindow::always(),
                },
            ],
        };
        let mut b = a.clone();
        b.faults.pop();
        b.seed = 2;
        let d = a.diff(&b);
        assert_eq!(d.len(), 2, "{d:?}");
        assert!(d[0].contains("seed"));
        assert!(d[1].contains("removed"));
        assert!(a.diff(&a).is_empty());
    }

    #[test]
    fn validation_rejects_empty_and_inverted_windows() {
        let with_window = |window| FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::DropProb { p: 0.5, window }],
        };
        // Empty: end == start can never match.
        assert!(with_window(TimeWindow::between(5, 5)).validate().is_err());
        // Inverted: end < start.
        assert!(with_window(TimeWindow::between(7, 3)).validate().is_err());
        // Nonempty and open-ended windows pass.
        assert!(with_window(TimeWindow::between(5, 6)).validate().is_ok());
        assert!(with_window(TimeWindow::from(5)).validate().is_ok());
        // Every windowed primitive kind is covered by the same check.
        let empty = TimeWindow::between(2, 2);
        let windowed = vec![
            FaultPrimitive::DropLink {
                from: ProcessId::new(0),
                to: ProcessId::new(1),
                bidirectional: false,
                window: empty,
            },
            FaultPrimitive::DropProb {
                p: 0.1,
                window: empty,
            },
            FaultPrimitive::DelayJitter {
                extra_max: 1,
                window: empty,
            },
            FaultPrimitive::Duplicate {
                p: 0.1,
                echo_delay: 1,
                window: empty,
            },
            FaultPrimitive::Reorder {
                p: 0.1,
                max_swap: 1,
                window: empty,
            },
            FaultPrimitive::CrashWindow {
                process: ProcessId::new(0),
                window: empty,
            },
            FaultPrimitive::Partition {
                group_a: vec![ProcessId::new(0)],
                window: empty,
            },
        ];
        for fault in windowed {
            assert!(fault.window().is_some());
            let schedule = FaultSchedule {
                seed: 0,
                base_latency: 1,
                faults: vec![fault.clone()],
            };
            assert!(schedule.validate().is_err(), "{fault:?}");
        }
        // Windowless primitives report no window to check.
        assert!(FaultPrimitive::BurstLoss {
            period: 3,
            burst_len: 1
        }
        .window()
        .is_none());
        assert!(FaultPrimitive::ReplayRun {
            run: Run::empty(2, 1),
            ticks_per_round: 1
        }
        .window()
        .is_none());
    }

    #[test]
    fn diff_is_symmetric_on_swapped_primitives() {
        let burst = FaultPrimitive::BurstLoss {
            period: 5,
            burst_len: 1,
        };
        let drop = FaultPrimitive::DropProb {
            p: 0.5,
            window: TimeWindow::always(),
        };
        let a = FaultSchedule {
            seed: 1,
            base_latency: 1,
            faults: vec![burst.clone(), drop.clone()],
        };
        let b = FaultSchedule {
            seed: 1,
            base_latency: 1,
            faults: vec![drop, burst],
        };
        let forward = a.diff(&b);
        let backward = b.diff(&a);
        // Both positions differ in both directions: same entry count, and
        // every entry names the same fault slot.
        assert_eq!(forward.len(), 2, "{forward:?}");
        assert_eq!(forward.len(), backward.len());
        for (f, r) in forward.iter().zip(backward.iter()) {
            assert_eq!(f.split(':').next(), r.split(':').next(), "{f} vs {r}");
        }
    }

    #[test]
    fn every_fault_primitive_round_trips_through_json() {
        let mut run = Run::empty(2, 2);
        run.add_input(ProcessId::new(0));
        run.add_message(ProcessId::new(0), ProcessId::new(1), Round::new(1));
        let all_variants = vec![
            FaultPrimitive::DropLink {
                from: ProcessId::new(0),
                to: ProcessId::new(1),
                bidirectional: true,
                window: TimeWindow::between(0, 9),
            },
            FaultPrimitive::DropProb {
                p: 0.25,
                window: TimeWindow::always(),
            },
            FaultPrimitive::DelayJitter {
                extra_max: 4,
                window: TimeWindow::from(2),
            },
            FaultPrimitive::Duplicate {
                p: 0.5,
                echo_delay: 2,
                window: TimeWindow::always(),
            },
            FaultPrimitive::Reorder {
                p: 0.5,
                max_swap: 3,
                window: TimeWindow::between(1, 7),
            },
            FaultPrimitive::BurstLoss {
                period: 6,
                burst_len: 2,
            },
            FaultPrimitive::CrashWindow {
                process: ProcessId::new(1),
                window: TimeWindow::between(3, 5),
            },
            FaultPrimitive::Partition {
                group_a: vec![ProcessId::new(0)],
                window: TimeWindow::from(1),
            },
            FaultPrimitive::ReplayRun {
                run,
                ticks_per_round: 4,
            },
        ];
        let schedule = FaultSchedule {
            seed: 13,
            base_latency: 1,
            faults: all_variants,
        };
        let text = schedule.to_json();
        let back = FaultSchedule::from_json(&text).unwrap();
        assert_eq!(schedule, back);
        assert_eq!(text, back.to_json(), "serialization is deterministic");
        // The courier accepts the full-vocabulary schedule, and decisions
        // stay identical across the round trip.
        let mut a = ChaosCourier::new(schedule).unwrap();
        let mut b = ChaosCourier::new(back).unwrap();
        for seq in 0..40 {
            let e = event(0, 1, seq, seq);
            assert_eq!(a.fate(e), b.fate(e));
        }
    }

    #[test]
    fn chaos_execution_is_deterministic_end_to_end() {
        let g = Graph::complete(3).unwrap();
        let config = AsyncConfig::all_inputs(&g, 15).with_heartbeat(3);
        let proto = AsyncS::new(0.25);
        let schedule = FaultSchedule {
            seed: 77,
            base_latency: 1,
            faults: vec![
                FaultPrimitive::DropProb {
                    p: 0.3,
                    window: TimeWindow::always(),
                },
                FaultPrimitive::DelayJitter {
                    extra_max: 4,
                    window: TimeWindow::from(2),
                },
                FaultPrimitive::Duplicate {
                    p: 0.5,
                    echo_delay: 2,
                    window: TimeWindow::always(),
                },
            ],
        };
        let run = |schedule: &FaultSchedule| {
            let mut courier = ChaosCourier::new(schedule.clone()).unwrap();
            run_async(&proto, &g, &config, &tapes(3), &mut courier)
        };
        let a = run(&schedule);
        let b = run(&FaultSchedule::from_json(&schedule.to_json()).unwrap());
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.sent, b.sent);
        assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
    }
}
