//! Adversary zoo: adaptive fault-schedule search for the paper's worst case.
//!
//! The `L/U ≤ N` tradeoff (Theorem 2) is an adversarial claim: the boundary
//! is attained by a specific worst-case adversary, the **prefix cut**, whose
//! liveness floor over non-vacuous runs is `ε` (the `ML(R) = 1` corner of
//! the `L = U·ML(R)` line). This module hunts for that adversary from
//! scratch over the [`FaultPrimitive`] vocabulary:
//!
//! * a **schedule genome** — windows, cut targets, loss rates over the
//!   existing fault primitives — with deterministic seed-derived mutation
//!   and crossover (`GenomeDist` is the cross-entropy sampling
//!   distribution the elites re-fit each generation);
//! * an **elite-selection outer loop** ([`run_hunt`]): each generation
//!   samples a population, screens it on the bit-sliced Monte Carlo fast
//!   path with a successive-halving bandit (near-elite candidates earn
//!   exponentially more trials), and re-fits the sampling distribution from
//!   the elites;
//! * an **online adversary probe**: [`ca_sim::adaptive::MinLevelCut`]
//!   conditions its cut on the observed min-level state — the strongest
//!   thing a metadata-only adaptive adversary can do — and the report pins
//!   its liveness against the offline winner.
//!
//! The objective is *minimize exact `Pr[TA]` subject to the safety oracles
//! **and non-vacuity***: a schedule whose induced run has `ML(R) = 0` (a
//! blackout) trivially zeroes liveness, so such candidates are typed
//! [`CandidateStatus::Infeasible`] and ranked last — the search has to
//! navigate around the blackout cliff to reach the true floor, the prefix
//! cut at round 2 with exact TA exactly `ε`.
//!
//! **Evaluation domain.** A schedule is scored on the *synchronous* run it
//! induces ([`induced_run`]): tick `r − 1` carries round `r`, and a message
//! survives iff the [`ChaosCourier`] delivers it undamaged
//! (`Fate::Deliver(sent_at + base_latency)` exactly — any added latency
//! breaks lockstep and counts as destroyed). Because the courier keys each
//! fault's coin stream on the fault's *content*, deleting one fault never
//! reshuffles another's decisions, which is what lets the existing
//! [`ddmin`] shrink every elite soundly.
//!
//! Determinism contract: [`HuntReport`] is a pure function of `(graph,
//! config minus threads)` — candidate ids, per-rung trial seeds, and all
//! rankings are derived from the config seed with exact integer/rational
//! comparisons, and every parallel stage goes through the index-ordered
//! [`parallel_map`]. The CLI pins this with byte-identity goldens across
//! `--threads 1/2/8` and replay runs.

use crate::chaos::{ChaosCourier, FaultPrimitive, FaultSchedule, TimeWindow};
use crate::courier::{Courier, Fate, SendEvent};
use crate::supervisor::panic_message;
use ca_analysis::level_dp::outcomes_with_fallback;
use ca_core::error::CaError;
use ca_core::graph::Graph;
use ca_core::ids::{ProcessId, Round};
use ca_core::level::modified_levels;
use ca_core::rational::Rational;
use ca_core::run::Run;
use ca_protocols::ProtocolS;
use ca_sim::adaptive::{materialize, MinLevelCut};
use ca_sim::chaos::{ddmin, mix64, parallel_map};
use ca_sim::stats::BernoulliEstimate;
use ca_sim::{simulate, FixedRun, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parameters of a hunt.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HuntConfig {
    /// Outer-loop generations.
    pub generations: u32,
    /// Candidates per generation.
    pub population: usize,
    /// Monte Carlo trial budget per generation (split by the
    /// successive-halving bandit).
    pub budget: u64,
    /// Master seed; the report is a deterministic function of it.
    pub seed: u64,
    /// Horizon `N` of the induced synchronous runs (= ticks of genome
    /// window space).
    pub rounds: u32,
    /// `t = 1/ε`.
    pub t: u64,
    /// Maximum faults per candidate schedule.
    pub max_faults: usize,
    /// Worker threads (0 = available parallelism). The report is
    /// independent of this — it is excluded from [`reports_match`].
    pub threads: usize,
    /// Elites kept (and shrunk) per generation.
    pub elites: usize,
}

impl HuntConfig {
    /// The quick-scale configuration around a master seed: 6 generations of
    /// 24 candidates, 4096 MC trials per generation, `N = 8`, `t = 8`.
    pub fn quick(seed: u64) -> Self {
        HuntConfig {
            generations: 6,
            population: 24,
            budget: 4096,
            seed,
            rounds: 8,
            t: 8,
            max_faults: 4,
            threads: 0,
            elites: 4,
        }
    }
}

/// How a candidate's evaluation ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CandidateStatus {
    /// Feasible and fully scored.
    Ok,
    /// The induced run is vacuous (`ML(R) = 0`): zero liveness for free,
    /// which the paper's tradeoff excludes — ranked last, never elite.
    Infeasible,
    /// The courier rejected the schedule with a typed error.
    Rejected,
    /// Evaluation panicked; caught at the per-candidate boundary.
    Failed,
}

/// One evaluated candidate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CandidateResult {
    /// Global candidate id (`generation * population + slot`).
    pub id: u64,
    /// Generation the candidate belongs to.
    pub generation: u32,
    /// The genome.
    pub schedule: FaultSchedule,
    /// Outcome of the evaluation.
    pub status: CandidateStatus,
    /// Rejection or panic message, when the status carries one.
    pub detail: Option<String>,
    /// Min modified level of the induced run.
    pub ml: u32,
    /// Exact `Pr[TA]` of Protocol S on the induced run (`min(1, ε·ML)`).
    pub exact_ta: f64,
    /// Exact `Pr[PA] ≤ ε` held (Theorem 1 on the induced run).
    pub safety_ok: bool,
    /// The exact outcome distribution summed to 1.
    pub outcome_valid: bool,
    /// Total-attack tally over the bandit's Monte Carlo trials.
    pub mc_tally: u64,
    /// Monte Carlo trials the bandit spent on this candidate.
    pub mc_trials: u64,
}

impl CandidateResult {
    /// Exact TA as a rational (reconstructed from `ml` — the induced-run
    /// value `min(ml, t)/t`), for exact-arithmetic ranking.
    fn exact_ta_rational(&self, t: u64) -> Rational {
        Rational::from(self.ml).min(Rational::new(t as i128, 1)) / Rational::new(t as i128, 1)
    }

    /// Exact ranking key: lowest exact TA, then fewest faults, then lowest
    /// id. Only meaningful for `Ok` candidates.
    fn exact_key(&self, t: u64) -> (Rational, usize, u64) {
        (
            self.exact_ta_rational(t),
            self.schedule.faults.len(),
            self.id,
        )
    }
}

/// One elite of the final generation, auto-shrunk before reporting.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EliteSummary {
    /// Candidate id.
    pub id: u64,
    /// Min modified level of its induced run.
    pub ml: u32,
    /// Exact `Pr[TA]`.
    pub exact_ta: f64,
    /// Fault count before shrinking.
    pub faults_before: usize,
    /// Fault count after shrinking.
    pub faults_after: usize,
    /// The ddmin-shrunk schedule (still reproduces `ml ≥ 1` and
    /// `exact TA ≤` the elite's).
    pub schedule: FaultSchedule,
}

/// One generation's trajectory line.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct GenerationSummary {
    /// Generation index.
    pub generation: u32,
    /// Feasible (`Ok`) candidates.
    pub feasible: u64,
    /// Infeasible (blackout) candidates.
    pub infeasible: u64,
    /// Rejected + failed candidates.
    pub degraded: u64,
    /// Best (lowest) exact TA among this generation's feasible candidates.
    pub best_ta: f64,
    /// Its induced-run min modified level.
    pub best_ml: u32,
    /// Monte Carlo trials the bandit spent this generation.
    pub mc_trials: u64,
}

/// The online-adversary probe: [`MinLevelCut`] with target 1 on the same
/// instance, pinned against the offline winner.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OnlineProbe {
    /// Adversary name.
    pub adversary: String,
    /// The min-level target it strikes at.
    pub target: u32,
    /// Min modified level of the materialized run.
    pub ml: u32,
    /// Exact `Pr[TA]` of Protocol S on that run.
    pub exact_ta: f64,
    /// Whether the offline best matched the online adversary's liveness.
    pub matches_offline_best: bool,
}

/// The analytic anchors the hunt is measured against.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalyticAnchors {
    /// `ε = 1/t`: the liveness floor over non-vacuous runs (the
    /// `ML(R) = 1` corner of the tradeoff line).
    pub floor_ta: f64,
    /// `N`: the `L/U = N` boundary ratio of Theorem 2 (the good-run
    /// corner).
    pub boundary_ratio: f64,
}

/// The byte-stable JSON result of a hunt.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HuntReport {
    /// Report schema version.
    pub schema: u32,
    /// Number of processes.
    pub m: usize,
    /// The hunt parameters.
    pub config: HuntConfig,
    /// Candidates evaluated in total.
    pub candidates: u64,
    /// Candidates typed `Infeasible`.
    pub infeasible: u64,
    /// Candidates typed `Rejected`.
    pub rejected: u64,
    /// Candidates typed `Failed` (evaluation panicked; caught).
    pub failed: u64,
    /// Per-generation trajectory.
    pub generations: Vec<GenerationSummary>,
    /// The best feasible candidate found across all generations.
    pub best: Option<CandidateResult>,
    /// `best.schedule` ddmin-shrunk to a minimal fault list with the same
    /// feasible liveness damage.
    pub shrunk: Option<FaultSchedule>,
    /// Differences between the best schedule and its shrunk form.
    pub shrunk_diff: Vec<String>,
    /// The final generation's elites, each auto-shrunk.
    pub elites: Vec<EliteSummary>,
    /// The online min-level adversary probe.
    pub online: OnlineProbe,
    /// Analytic anchors (`ε`, `N`).
    pub analytic: AnalyticAnchors,
    /// Whether the best schedule reproduces the paper's worst case: its
    /// induced run sits at `ML(R) = 1` with exact TA exactly `ε`.
    pub prefix_cut_equivalent: bool,
    /// Whether the best candidate's observed MC attack rate is within the
    /// z = 4 interval of the analytic floor `ε`.
    pub mc_within_floor_interval: bool,
}

impl HuntReport {
    /// Deterministic single-line JSON.
    pub fn to_json(&self) -> String {
        json::to_string(self).expect("reports are always serializable")
    }

    /// Deterministic pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        json::to_string_pretty(self).expect("reports are always serializable")
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::MalformedConfig`] on parse errors.
    pub fn from_json(text: &str) -> Result<Self, CaError> {
        json::from_str(text).map_err(|e| CaError::malformed(format!("bad hunt report JSON: {e}")))
    }
}

/// Byte-equality modulo the thread count: `config.threads` is an execution
/// detail, never part of the determinism contract, so the drift gate
/// normalizes it before comparing.
pub fn reports_match(current: &HuntReport, baseline: &HuntReport) -> bool {
    let mut b = baseline.clone();
    b.config.threads = current.config.threads;
    current.to_json() == b.to_json()
}

/// The synchronous run a schedule induces: tick `r − 1` carries round `r`
/// (all inputs present), and the slot survives iff the courier delivers it
/// **undamaged** — `Fate::Deliver(sent_at + base_latency)` exactly. Added
/// latency breaks lockstep, so a jittered message counts as destroyed.
///
/// Sequence numbers are assigned in canonical `(round, directed edge)`
/// order independent of the fault list, so together with the courier's
/// content-keyed coin streams, removing one fault never reshuffles
/// another's decisions (the ddmin soundness property).
///
/// # Errors
///
/// Returns [`CaError::MalformedConfig`] when the schedule fails validation.
pub fn induced_run(graph: &Graph, schedule: &FaultSchedule, rounds: u32) -> Result<Run, CaError> {
    let mut courier = ChaosCourier::new(schedule.clone())?;
    let mut run = Run::empty(graph.len(), rounds);
    for i in graph.vertices() {
        run.add_input(i);
    }
    let on_time = schedule.base_latency;
    let mut seq = 0u64;
    for r in 1..=rounds {
        let sent_at = u64::from(r - 1);
        for (from, to) in graph.directed_edges() {
            let event = SendEvent {
                from,
                to,
                sent_at,
                seq,
            };
            seq += 1;
            if courier.fate(event) == Fate::Deliver(sent_at + on_time) {
                run.add_message(from, to, Round::new(r));
            }
        }
    }
    Ok(run)
}

/// The cross-entropy sampling distribution over the genome space: fault
/// kind weights plus window geometry, re-fit from the elites each
/// generation. `ReplayRun` is excluded from the genome — it would let the
/// search paste an arbitrary run verbatim instead of discovering one.
#[derive(Clone, Debug, PartialEq)]
struct GenomeDist {
    /// Sampling weight of each of the 8 genome fault kinds.
    kind_weights: [f64; 8],
    /// Probability a sampled window is open-ended.
    open_window_p: f64,
    /// Mean normalized window start in `[0, 1]` (the "cut target").
    start_bias: f64,
}

/// Genome fault kinds, indexed to match [`GenomeDist::kind_weights`].
const KIND_DROP_LINK: usize = 0;
const KIND_DROP_PROB: usize = 1;
const KIND_DELAY_JITTER: usize = 2;
const KIND_DUPLICATE: usize = 3;
const KIND_REORDER: usize = 4;
const KIND_BURST_LOSS: usize = 5;
const KIND_CRASH_WINDOW: usize = 6;
const KIND_PARTITION: usize = 7;

fn kind_index(fault: &FaultPrimitive) -> Option<usize> {
    match fault {
        FaultPrimitive::DropLink { .. } => Some(KIND_DROP_LINK),
        FaultPrimitive::DropProb { .. } => Some(KIND_DROP_PROB),
        FaultPrimitive::DelayJitter { .. } => Some(KIND_DELAY_JITTER),
        FaultPrimitive::Duplicate { .. } => Some(KIND_DUPLICATE),
        FaultPrimitive::Reorder { .. } => Some(KIND_REORDER),
        FaultPrimitive::BurstLoss { .. } => Some(KIND_BURST_LOSS),
        FaultPrimitive::CrashWindow { .. } => Some(KIND_CRASH_WINDOW),
        FaultPrimitive::Partition { .. } => Some(KIND_PARTITION),
        FaultPrimitive::ReplayRun { .. } => None,
    }
}

impl GenomeDist {
    /// The uninformed starting distribution: uniform kinds, balanced window
    /// geometry.
    fn uniform() -> Self {
        GenomeDist {
            kind_weights: [1.0; 8],
            open_window_p: 0.5,
            start_bias: 0.5,
        }
    }

    /// Re-fits the distribution from the elite schedules (add-one
    /// smoothing keeps every kind reachable, so the search can always
    /// escape a local optimum).
    fn refit(elites: &[&FaultSchedule], max_tick: u64) -> Self {
        let mut kind_weights = [1.0f64; 8];
        let mut open = 1.0f64;
        let mut closed = 1.0f64;
        let mut start_sum = 0.0f64;
        let mut windows = 0.0f64;
        for schedule in elites {
            for fault in &schedule.faults {
                if let Some(k) = kind_index(fault) {
                    kind_weights[k] += 1.0;
                }
                if let Some(w) = fault.window() {
                    if w.end.is_none() {
                        open += 1.0;
                    } else {
                        closed += 1.0;
                    }
                    start_sum += w.start as f64 / max_tick.max(1) as f64;
                    windows += 1.0;
                }
            }
        }
        GenomeDist {
            kind_weights,
            open_window_p: open / (open + closed),
            start_bias: if windows > 0.0 {
                start_sum / windows
            } else {
                0.5
            },
        }
    }

    /// Draws a fault kind from the weights.
    fn sample_kind(&self, rng: &mut StdRng) -> usize {
        let total: f64 = self.kind_weights.iter().sum();
        let mut draw = rng.gen_range(0.0..total);
        for (k, w) in self.kind_weights.iter().enumerate() {
            if draw < *w {
                return k;
            }
            draw -= w;
        }
        self.kind_weights.len() - 1
    }

    /// Samples a window in tick space `[0, max_tick]`, biased toward the
    /// learned cut target. Never empty (validation rejects those).
    fn sample_window(&self, rng: &mut StdRng, max_tick: u64) -> TimeWindow {
        let start = if rng.gen_bool(0.6) {
            // Exploit: near the learned cut target, ±1 tick of jitter.
            let center = (self.start_bias * max_tick as f64).round() as i64;
            let jitter = rng.gen_range(-1i64..=1);
            (center + jitter).clamp(0, max_tick as i64) as u64
        } else {
            // Explore: uniform over the whole horizon.
            rng.gen_range(0..=max_tick)
        };
        if rng.gen_bool(self.open_window_p.clamp(0.05, 0.95)) {
            TimeWindow::from(start)
        } else {
            TimeWindow::between(start, rng.gen_range(start + 1..=max_tick + 1))
        }
    }

    /// Samples one genome fault.
    fn sample_fault(&self, rng: &mut StdRng, m: usize, max_tick: u64) -> FaultPrimitive {
        let pid = |rng: &mut StdRng| ProcessId::new(rng.gen_range(0..m as u32));
        match self.sample_kind(rng) {
            KIND_DROP_LINK => {
                let from = pid(rng);
                let to = loop {
                    let to = pid(rng);
                    if to != from || m == 1 {
                        break to;
                    }
                };
                FaultPrimitive::DropLink {
                    from,
                    to,
                    bidirectional: rng.gen_bool(0.5),
                    window: self.sample_window(rng, max_tick),
                }
            }
            KIND_DROP_PROB => FaultPrimitive::DropProb {
                p: rng.gen_range(0.0..1.0),
                window: self.sample_window(rng, max_tick),
            },
            KIND_DELAY_JITTER => FaultPrimitive::DelayJitter {
                extra_max: rng.gen_range(1u64..=4),
                window: self.sample_window(rng, max_tick),
            },
            KIND_DUPLICATE => FaultPrimitive::Duplicate {
                p: rng.gen_range(0.0..1.0),
                echo_delay: rng.gen_range(1u64..=4),
                window: self.sample_window(rng, max_tick),
            },
            KIND_REORDER => FaultPrimitive::Reorder {
                p: rng.gen_range(0.0..1.0),
                max_swap: rng.gen_range(1u64..=4),
                window: self.sample_window(rng, max_tick),
            },
            KIND_BURST_LOSS => {
                let period = rng.gen_range(2u64..=max_tick.max(2));
                FaultPrimitive::BurstLoss {
                    period,
                    burst_len: rng.gen_range(1..=period),
                }
            }
            KIND_CRASH_WINDOW => FaultPrimitive::CrashWindow {
                process: pid(rng),
                window: self.sample_window(rng, max_tick),
            },
            _ => {
                let group_a = (0..m as u32)
                    .filter(|_| rng.gen_bool(0.5))
                    .map(ProcessId::new)
                    .collect();
                FaultPrimitive::Partition {
                    group_a,
                    window: self.sample_window(rng, max_tick),
                }
            }
        }
    }

    /// Samples a whole schedule (1..=max_faults faults, base latency 1).
    fn sample_schedule(
        &self,
        seed: u64,
        m: usize,
        max_tick: u64,
        max_faults: usize,
    ) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let n_faults = rng.gen_range(1..=max_faults.max(1));
        let faults = (0..n_faults)
            .map(|_| self.sample_fault(&mut rng, m, max_tick))
            .collect();
        FaultSchedule {
            seed: rng.gen(),
            base_latency: 1,
            faults,
        }
    }
}

/// Overwrites a fault's window, if it has one.
fn set_window(fault: &mut FaultPrimitive, w: TimeWindow) -> bool {
    match fault {
        FaultPrimitive::DropLink { window, .. }
        | FaultPrimitive::DropProb { window, .. }
        | FaultPrimitive::DelayJitter { window, .. }
        | FaultPrimitive::Duplicate { window, .. }
        | FaultPrimitive::Reorder { window, .. }
        | FaultPrimitive::CrashWindow { window, .. }
        | FaultPrimitive::Partition { window, .. } => {
            *window = w;
            true
        }
        FaultPrimitive::BurstLoss { .. } | FaultPrimitive::ReplayRun { .. } => false,
    }
}

/// Seed-derived point mutation: re-window one fault, add a fresh fault,
/// drop one, or re-seed the coin streams.
fn mutate(
    parent: &FaultSchedule,
    dist: &GenomeDist,
    seed: u64,
    m: usize,
    max_tick: u64,
    max_faults: usize,
) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = parent.clone();
    match rng.gen_range(0u32..4) {
        0 if !out.faults.is_empty() => {
            let k = rng.gen_range(0..out.faults.len());
            let w = dist.sample_window(&mut rng, max_tick);
            if !set_window(&mut out.faults[k], w) {
                // Windowless kinds get replaced outright.
                out.faults[k] = dist.sample_fault(&mut rng, m, max_tick);
            }
        }
        1 if out.faults.len() < max_faults => {
            out.faults.push(dist.sample_fault(&mut rng, m, max_tick));
        }
        2 if out.faults.len() > 1 => {
            let k = rng.gen_range(0..out.faults.len());
            out.faults.remove(k);
        }
        _ => {
            out.seed = rng.gen();
        }
    }
    out
}

/// Seed-derived one-point crossover on the fault lists.
fn crossover(a: &FaultSchedule, b: &FaultSchedule, seed: u64, max_faults: usize) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let cut_a = rng.gen_range(0..=a.faults.len());
    let cut_b = rng.gen_range(0..=b.faults.len());
    let mut faults: Vec<FaultPrimitive> = a.faults[..cut_a].to_vec();
    faults.extend_from_slice(&b.faults[cut_b..]);
    faults.truncate(max_faults.max(1));
    FaultSchedule {
        seed: rng.gen(),
        base_latency: a.base_latency,
        faults,
    }
}

/// Evaluates one candidate structurally: induced run, min modified level,
/// exact outcome, safety oracles. Panics are caught at this boundary and
/// typed [`CandidateStatus::Failed`].
fn evaluate_candidate(
    graph: &Graph,
    config: &HuntConfig,
    id: u64,
    generation: u32,
    schedule: FaultSchedule,
) -> CandidateResult {
    use ca_obs::{CounterId, SpanId};
    let obs = ca_obs::Metrics::new();
    let result = {
        let _span = obs.span(SpanId::HuntEvaluate);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            evaluate_candidate_inner(graph, config, id, generation, schedule.clone())
        }));
        match caught {
            Ok(result) => result,
            Err(payload) => CandidateResult {
                id,
                generation,
                schedule,
                status: CandidateStatus::Failed,
                detail: Some(panic_message(payload)),
                ml: 0,
                exact_ta: 0.0,
                safety_ok: true,
                outcome_valid: true,
                mc_tally: 0,
                mc_trials: 0,
            },
        }
    };
    obs.inc(CounterId::HuntCandidates);
    match result.status {
        CandidateStatus::Infeasible => obs.inc(CounterId::HuntCandidatesInfeasible),
        CandidateStatus::Failed => obs.inc(CounterId::HuntCandidatesFailed),
        CandidateStatus::Ok | CandidateStatus::Rejected => {}
    }
    obs.flush();
    result
}

fn evaluate_candidate_inner(
    graph: &Graph,
    config: &HuntConfig,
    id: u64,
    generation: u32,
    schedule: FaultSchedule,
) -> CandidateResult {
    let run = match induced_run(graph, &schedule, config.rounds) {
        Ok(run) => run,
        Err(e) => {
            return CandidateResult {
                id,
                generation,
                schedule,
                status: CandidateStatus::Rejected,
                detail: Some(e.to_string()),
                ml: 0,
                exact_ta: 0.0,
                safety_ok: true,
                outcome_valid: true,
                mc_tally: 0,
                mc_trials: 0,
            }
        }
    };
    let ml = modified_levels(&run).min_level();
    // Exact TA ranking through the level DP, with the scalar closed form as
    // the audited fallback: every 16th candidate (deterministic in the id)
    // is recomputed scalar-side and any divergence routes the scalar result
    // through — the sliced engine's spot-check pattern applied to ranking.
    let (exact, _used_dp) = outcomes_with_fallback(graph, &run, config.t, id.is_multiple_of(16));
    let eps = Rational::new(1, config.t as i128);
    let status = if ml >= 1 {
        CandidateStatus::Ok
    } else {
        CandidateStatus::Infeasible
    };
    CandidateResult {
        id,
        generation,
        schedule,
        status,
        detail: None,
        ml,
        exact_ta: exact.ta.to_f64(),
        safety_ok: exact.pa <= eps,
        outcome_valid: exact.is_valid(),
        mc_tally: 0,
        mc_trials: 0,
    }
}

/// Domain separation for the bandit's per-rung trial streams.
const HUNT_MC_STREAM: u64 = 0x4855_4E54_4D43; // "HUNTMC"

/// Allocates `trials` Monte Carlo trials to one candidate (rung `rung`)
/// through [`simulate`] — the bit-sliced fast path whenever the induced-run
/// instance fits the 64-lane engine — and returns its total-attack tally.
fn mc_rung_tally(
    graph: &Graph,
    config: &HuntConfig,
    candidate: &CandidateResult,
    rung: u32,
    trials: u64,
) -> u64 {
    let run = induced_run(graph, &candidate.schedule, config.rounds)
        .expect("candidate was evaluated Ok, its schedule validates");
    let sampler = FixedRun::new(run);
    let proto = ProtocolS::new(1.0 / config.t as f64);
    let sim = SimConfig {
        trials,
        seed: mix64(
            mix64(config.seed, HUNT_MC_STREAM),
            mix64(candidate.id, u64::from(rung)),
        ),
        threads: 1,
    };
    simulate(&proto, graph, &sampler, sim).counts.total_attack
}

/// The successive-halving bandit: every surviving candidate gets the same
/// per-rung allocation, the field is halved on MC-tally rank (lowest
/// observed TA survives), and the allocation doubles — near-elite
/// candidates earn exponentially more trials. Returns the generation's
/// total spend; tallies/trials accumulate on the candidates in place.
fn bandit_screen(
    graph: &Graph,
    config: &HuntConfig,
    obs: &ca_obs::Metrics,
    feasible: &mut [CandidateResult],
) -> u64 {
    if feasible.is_empty() || config.budget == 0 {
        return 0;
    }
    let mut active: Vec<usize> = (0..feasible.len()).collect();
    let mut allocation = (config.budget / (2 * active.len() as u64)).max(1);
    let keep = config.elites.max(1);
    let mut spent = 0u64;
    let mut rung = 0u32;
    loop {
        let tallies: Vec<u64> = parallel_map(active.len(), config.threads, |slot| {
            mc_rung_tally(graph, config, &feasible[active[slot]], rung, allocation)
        });
        for (slot, tally) in tallies.into_iter().enumerate() {
            let c = &mut feasible[active[slot]];
            c.mc_tally += tally;
            c.mc_trials += allocation;
        }
        spent += allocation * active.len() as u64;
        obs.add(
            ca_obs::CounterId::HuntMcTrials,
            allocation * active.len() as u64,
        );
        // Rank by observed tally (equal cumulative trials across the
        // active set, so tallies compare directly); ties break toward
        // fewer faults, then the lower id.
        active.sort_by_key(|&k| {
            let c = &feasible[k];
            (c.mc_tally, c.schedule.faults.len(), c.id)
        });
        if active.len() <= keep || spent >= config.budget {
            break;
        }
        active.truncate(active.len().div_ceil(2).max(keep));
        allocation *= 2;
        rung += 1;
    }
    for c in feasible.iter() {
        obs.record(ca_obs::HistId::HuntTrialsPerCandidate, c.mc_trials);
    }
    spent
}

/// Shrinks a feasible candidate's schedule to a minimal fault list that
/// still induces a non-vacuous run with at-most-the-same exact TA
/// (exact-arithmetic predicate — no Monte Carlo in the shrink loop).
fn shrink_candidate(graph: &Graph, config: &HuntConfig, best: &CandidateResult) -> FaultSchedule {
    if best.schedule.faults.is_empty() {
        return best.schedule.clone();
    }
    let obs = ca_obs::Metrics::new();
    let span = obs.span(ca_obs::SpanId::HuntShrink);
    let target = best.exact_ta_rational(config.t);
    let reproduces = |faults: &[FaultPrimitive]| {
        obs.inc(ca_obs::CounterId::ChaosShrinkEvals);
        let candidate = FaultSchedule {
            seed: best.schedule.seed,
            base_latency: best.schedule.base_latency,
            faults: faults.to_vec(),
        };
        let Ok(run) = induced_run(graph, &candidate, config.rounds) else {
            return false;
        };
        let ml = modified_levels(&run).min_level();
        if ml == 0 {
            return false;
        }
        let ta = Rational::from(ml).min(Rational::new(config.t as i128, 1))
            / Rational::new(config.t as i128, 1);
        ta <= target
    };
    let kept = ddmin(&best.schedule.faults, reproduces);
    drop(span);
    obs.flush();
    FaultSchedule {
        seed: best.schedule.seed,
        base_latency: best.schedule.base_latency,
        faults: kept,
    }
}

/// Re-scores one saved schedule exactly as the hunt would — the structural
/// evaluation (induced run, min level, exact outcome, safety oracles)
/// plus a Monte Carlo allocation of `config.budget` trials — so a shrunk
/// winner can be replayed from its JSON file (`ca hunt --replay`).
pub fn replay_schedule(
    graph: &Graph,
    config: &HuntConfig,
    schedule: FaultSchedule,
) -> CandidateResult {
    let mut candidate = evaluate_candidate(graph, config, 0, 0, schedule);
    if candidate.status == CandidateStatus::Ok && config.budget > 0 {
        candidate.mc_tally = mc_rung_tally(graph, config, &candidate, 0, config.budget);
        candidate.mc_trials = config.budget;
    }
    candidate
}

/// Runs the full hunt. Deterministic given `(graph, config)` and
/// independent of `config.threads`.
pub fn run_hunt(graph: &Graph, config: &HuntConfig) -> HuntReport {
    let hunt_obs = ca_obs::Metrics::new();
    let hunt_span = hunt_obs.span(ca_obs::SpanId::HuntRun);
    let m = graph.len();
    let max_tick = u64::from(config.rounds.max(1) - 1);
    let population = config.population.max(1);
    let elite_count = config.elites.max(1).min(population);
    let fresh_count = (population / 4).max(1);

    let mut dist = GenomeDist::uniform();
    let mut elites: Vec<CandidateResult> = Vec::new();
    let mut best: Option<CandidateResult> = None;
    let mut generations: Vec<GenerationSummary> = Vec::new();
    let mut infeasible_total = 0u64;
    let mut rejected_total = 0u64;
    let mut failed_total = 0u64;

    for gen in 0..config.generations {
        let gen_span = hunt_obs.span(ca_obs::SpanId::HuntGeneration);
        // Deterministic population: carried elites, fresh samples from the
        // (re-fit) distribution, and mutated crossover offspring.
        let genomes: Vec<FaultSchedule> = (0..population)
            .map(|slot| {
                let cseed = mix64(mix64(config.seed, u64::from(gen)), slot as u64);
                if gen == 0 || elites.is_empty() {
                    dist.sample_schedule(cseed, m, max_tick, config.max_faults)
                } else if slot < elites.len() {
                    elites[slot].schedule.clone()
                } else if slot < elites.len() + fresh_count {
                    dist.sample_schedule(cseed, m, max_tick, config.max_faults)
                } else {
                    let a = &elites[slot % elites.len()].schedule;
                    let b = &elites[(slot + 1) % elites.len()].schedule;
                    let child = crossover(a, b, cseed, config.max_faults);
                    mutate(
                        &child,
                        &dist,
                        mix64(cseed, 1),
                        m,
                        max_tick,
                        config.max_faults,
                    )
                }
            })
            .collect();

        let mut results: Vec<CandidateResult> =
            parallel_map(genomes.len(), config.threads, |slot| {
                let id = u64::from(gen) * population as u64 + slot as u64;
                evaluate_candidate(graph, config, id, gen, genomes[slot].clone())
            });

        let gen_infeasible = results
            .iter()
            .filter(|c| c.status == CandidateStatus::Infeasible)
            .count() as u64;
        let gen_degraded = results
            .iter()
            .filter(|c| {
                matches!(
                    c.status,
                    CandidateStatus::Rejected | CandidateStatus::Failed
                )
            })
            .count() as u64;
        infeasible_total += gen_infeasible;
        rejected_total += results
            .iter()
            .filter(|c| c.status == CandidateStatus::Rejected)
            .count() as u64;
        failed_total += results
            .iter()
            .filter(|c| c.status == CandidateStatus::Failed)
            .count() as u64;

        // The bandit screens the feasible field on the MC fast path.
        let mut feasible: Vec<CandidateResult> = results
            .iter()
            .filter(|c| c.status == CandidateStatus::Ok)
            .cloned()
            .collect();
        let spent = bandit_screen(graph, config, &hunt_obs, &mut feasible);
        // Copy accumulated tallies back into the full result set so every
        // candidate's record carries its spend.
        for c in &feasible {
            if let Some(slot) = results.iter_mut().find(|r| r.id == c.id) {
                slot.mc_tally = c.mc_tally;
                slot.mc_trials = c.mc_trials;
            }
        }

        // Elite selection is by *exact* TA (ground truth), among the
        // bandit's survivors and past elites; the MC screen only decided
        // who earned enough trials to be considered.
        feasible.sort_by_key(|c| c.exact_key(config.t));
        elites = feasible.iter().take(elite_count).cloned().collect();
        if let Some(gen_best) = elites.first() {
            let better = match &best {
                None => true,
                Some(b) => gen_best.exact_key(config.t) < b.exact_key(config.t),
            };
            if better {
                best = Some(gen_best.clone());
            }
        }
        if !elites.is_empty() {
            let elite_schedules: Vec<&FaultSchedule> = elites.iter().map(|c| &c.schedule).collect();
            dist = GenomeDist::refit(&elite_schedules, max_tick);
        }

        generations.push(GenerationSummary {
            generation: gen,
            feasible: feasible.len() as u64,
            infeasible: gen_infeasible,
            degraded: gen_degraded,
            best_ta: elites.first().map_or(0.0, |c| c.exact_ta),
            best_ml: elites.first().map_or(0, |c| c.ml),
            mc_trials: spent,
        });
        drop(gen_span);
    }

    // Every elite is auto-shrunk before reporting.
    let elite_summaries: Vec<EliteSummary> = elites
        .iter()
        .map(|c| {
            let shrunk = shrink_candidate(graph, config, c);
            EliteSummary {
                id: c.id,
                ml: c.ml,
                exact_ta: c.exact_ta,
                faults_before: c.schedule.faults.len(),
                faults_after: shrunk.faults.len(),
                schedule: shrunk,
            }
        })
        .collect();

    let (shrunk, shrunk_diff) = match &best {
        Some(b) => {
            let s = shrink_candidate(graph, config, b);
            let diff = b.schedule.diff(&s);
            (Some(s), diff)
        }
        None => (None, Vec::new()),
    };

    // The online probe: the adaptive min-level adversary at target 1, the
    // deepest non-vacuous cut it can force.
    let mut online_adv = MinLevelCut::new(graph.clone(), config.rounds, 1);
    let online_run = materialize(&mut online_adv, graph, config.rounds);
    let online_ml = modified_levels(&online_run).min_level();
    // One probe, so always audit the DP result against the scalar path.
    let (online_exact, _) = outcomes_with_fallback(graph, &online_run, config.t, true);
    let online = OnlineProbe {
        adversary: "min-level-cut".to_owned(),
        target: 1,
        ml: online_ml,
        exact_ta: online_exact.ta.to_f64(),
        matches_offline_best: best
            .as_ref()
            .is_some_and(|b| b.exact_ta_rational(config.t) == online_exact.ta),
    };

    let eps = Rational::new(1, config.t as i128);
    let floor_ta = eps.to_f64();
    let prefix_cut_equivalent = best
        .as_ref()
        .is_some_and(|b| b.ml == 1 && b.exact_ta_rational(config.t) == eps);
    let mc_within_floor_interval = best.as_ref().is_some_and(|b| {
        b.mc_trials > 0
            && BernoulliEstimate::new(b.mc_tally, b.mc_trials).consistent_with_z(floor_ta, 4.0)
    });

    drop(hunt_span);
    hunt_obs.flush();

    HuntReport {
        schema: 1,
        m,
        // The worker count is an execution detail, never part of the
        // determinism contract: the stored config zeroes it so the report
        // bytes are identical at any `--threads`.
        config: HuntConfig {
            threads: 0,
            ..*config
        },
        candidates: u64::from(config.generations) * population as u64,
        infeasible: infeasible_total,
        rejected: rejected_total,
        failed: failed_total,
        generations,
        best,
        shrunk,
        shrunk_diff,
        elites: elite_summaries,
        online,
        analytic: AnalyticAnchors {
            floor_ta,
            boundary_ratio: f64::from(config.rounds),
        },
        prefix_cut_equivalent,
        mc_within_floor_interval,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k2() -> Graph {
        Graph::complete(2).unwrap()
    }

    #[test]
    fn induced_run_of_the_reliable_schedule_is_good() {
        let g = k2();
        let run = induced_run(&g, &FaultSchedule::reliable(1), 5).unwrap();
        assert_eq!(run, Run::good(&g, 5));
        assert_eq!(modified_levels(&run).min_level(), 5);
    }

    #[test]
    fn induced_run_of_a_partition_from_tick_one_is_the_prefix_cut() {
        let g = k2();
        let schedule = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::Partition {
                group_a: vec![ProcessId::new(0)],
                window: TimeWindow::from(1),
            }],
        };
        let run = induced_run(&g, &schedule, 6).unwrap();
        let mut expected = Run::good(&g, 6);
        expected.cut_from_round(Round::new(2));
        assert_eq!(run, expected);
        assert_eq!(modified_levels(&run).min_level(), 1);
    }

    #[test]
    fn jittered_messages_count_as_destroyed_in_lockstep() {
        let g = k2();
        // Deterministic jitter from tick 0 adds latency to most sends; the
        // induced run treats any late delivery as destroyed.
        let schedule = FaultSchedule {
            seed: 9,
            base_latency: 1,
            faults: vec![FaultPrimitive::DelayJitter {
                extra_max: 1000,
                window: TimeWindow::always(),
            }],
        };
        let run = induced_run(&g, &schedule, 6).unwrap();
        assert!(run.message_count() < Run::good(&g, 6).message_count());
    }

    #[test]
    fn evaluate_types_blackouts_infeasible_and_panics_failed() {
        let g = k2();
        let config = HuntConfig::quick(1);
        // Blackout: everything destroyed, ML = 0, zero liveness for free.
        let blackout = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::Partition {
                group_a: vec![ProcessId::new(0)],
                window: TimeWindow::always(),
            }],
        };
        let r = evaluate_candidate(&g, &config, 0, 0, blackout);
        assert_eq!(r.status, CandidateStatus::Infeasible);
        assert_eq!(r.ml, 0);
        assert_eq!(r.exact_ta, 0.0);
        // Poisoned: passes validation, panics in the jitter modulus.
        let poisoned = FaultSchedule {
            seed: 0,
            base_latency: 1,
            faults: vec![FaultPrimitive::DelayJitter {
                extra_max: u64::MAX,
                window: TimeWindow::always(),
            }],
        };
        let r = evaluate_candidate(&g, &config, 1, 0, poisoned);
        assert_eq!(r.status, CandidateStatus::Failed);
        assert!(r.detail.is_some());
        // Invalid: typed rejection.
        let invalid = FaultSchedule {
            seed: 0,
            base_latency: 0,
            faults: vec![],
        };
        let r = evaluate_candidate(&g, &config, 2, 0, invalid);
        assert_eq!(r.status, CandidateStatus::Rejected);
    }

    #[test]
    fn hunt_is_deterministic_and_thread_count_independent() {
        let g = k2();
        let mut config = HuntConfig::quick(7);
        config.generations = 2;
        config.population = 8;
        config.budget = 256;
        let a = run_hunt(&g, &config);
        let b = run_hunt(&g, &config);
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let serial = HuntConfig {
            threads: 1,
            ..config
        };
        let c = run_hunt(&g, &serial);
        assert!(reports_match(&a, &c), "thread count leaked into the report");
    }

    #[test]
    fn hunt_converges_to_the_prefix_cut_floor_at_quick_scale() {
        let g = k2();
        let config = HuntConfig::quick(7);
        let report = run_hunt(&g, &config);
        let best = report.best.as_ref().expect("a feasible best exists");
        assert_eq!(best.ml, 1, "{}", report.to_json_pretty());
        assert!(report.prefix_cut_equivalent);
        assert!(report.mc_within_floor_interval);
        assert_eq!(report.analytic.floor_ta, 0.125);
        assert_eq!(report.analytic.boundary_ratio, 8.0);
        // The online min-level adversary lands on the same floor.
        assert_eq!(report.online.ml, 1);
        assert_eq!(report.online.exact_ta, 0.125);
        assert!(report.online.matches_offline_best);
        // The shrunk winner still reproduces the floor.
        let shrunk = report.shrunk.as_ref().expect("shrunk schedule exists");
        assert!(shrunk.faults.len() <= best.schedule.faults.len());
        let run = induced_run(&g, shrunk, config.rounds).unwrap();
        assert_eq!(modified_levels(&run).min_level(), 1);
        // Every reported elite was shrunk to a reproducing schedule.
        for elite in &report.elites {
            assert!(elite.faults_after <= elite.faults_before);
            let run = induced_run(&g, &elite.schedule, config.rounds).unwrap();
            assert!(modified_levels(&run).min_level() >= 1);
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let g = k2();
        let mut config = HuntConfig::quick(3);
        config.generations = 1;
        config.population = 6;
        config.budget = 128;
        let report = run_hunt(&g, &config);
        let text = report.to_json();
        let back = HuntReport::from_json(&text).unwrap();
        assert_eq!(report, back);
        assert_eq!(text, back.to_json(), "serialization is deterministic");
        assert!(HuntReport::from_json("{").is_err());
    }

    #[test]
    fn genome_operators_are_deterministic() {
        let dist = GenomeDist::uniform();
        let a = dist.sample_schedule(11, 2, 7, 4);
        assert_eq!(a, dist.sample_schedule(11, 2, 7, 4));
        a.validate().unwrap();
        let b = dist.sample_schedule(12, 2, 7, 4);
        let child = crossover(&a, &b, 13, 4);
        assert_eq!(child, crossover(&a, &b, 13, 4));
        child.validate().unwrap();
        assert!(child.faults.len() <= 4);
        let mutant = mutate(&child, &dist, 14, 2, 7, 4);
        assert_eq!(mutant, mutate(&child, &dist, 14, 2, 7, 4));
        mutant.validate().unwrap();
    }

    #[test]
    fn refit_concentrates_on_elite_kinds() {
        let partition_heavy = FaultSchedule {
            seed: 1,
            base_latency: 1,
            faults: vec![
                FaultPrimitive::Partition {
                    group_a: vec![ProcessId::new(0)],
                    window: TimeWindow::from(1),
                },
                FaultPrimitive::Partition {
                    group_a: vec![ProcessId::new(1)],
                    window: TimeWindow::from(1),
                },
            ],
        };
        let dist = GenomeDist::refit(&[&partition_heavy], 7);
        assert!(dist.kind_weights[KIND_PARTITION] > dist.kind_weights[KIND_DROP_PROB]);
        // Both elite windows are open-ended and start at tick 1.
        assert!(dist.open_window_p > 0.5);
        assert!((dist.start_bias - 1.0 / 7.0).abs() < 1e-9);
    }
}
