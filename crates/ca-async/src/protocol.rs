//! `AsyncS`: Protocol S, asynchronously.
//!
//! The same Figure 1 counting automaton drives the asynchronous port: every
//! process keeps `(count, seen, valid, rfire)`, merges incoming states, and
//! **re-broadcasts its state whenever it changes** (event-driven gossip
//! replaces send-every-round). At the deadline, a process attacks iff it has
//! heard `rfire` and `count ≥ rfire`.
//!
//! The safety argument survives unchanged because it lives in the automaton,
//! not the round structure: `count_i` can only reach `s` after evidence that
//! every other process reached `s − 1`, so final counts spread by at most 1
//! and only `rfire` landing in that unit window can split the generals —
//! `U ≤ ε` against any courier. Liveness becomes `min(1, ε·C(T))` where
//! `C(T)` is the minimum count reached by the deadline — now priced in
//! latency instead of rounds. Both claims are verified by this crate's tests
//! and the X1 extension experiment.

use crate::courier::Time;
use crate::engine::AsyncProtocol;
use ca_core::ids::ProcessId;
use ca_core::protocol::Ctx;
use ca_core::tape::TapeReader;
use ca_protocols::{CountingMsg, CountingState};

/// The asynchronous port of Protocol S.
#[derive(Clone, Debug, PartialEq)]
pub struct AsyncS {
    epsilon: f64,
}

/// State of an [`AsyncS`] process.
pub type AsyncSState = CountingState<f64>;

/// Message of an [`AsyncS`] process (the full counting state).
pub type AsyncSMsg = CountingMsg<f64>;

impl AsyncS {
    /// Creates the protocol with agreement parameter `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is not in `(0, 1]`.
    pub fn new(epsilon: f64) -> Self {
        assert!(
            epsilon > 0.0 && epsilon <= 1.0,
            "epsilon must be in (0, 1], got {epsilon}"
        );
        AsyncS { epsilon }
    }

    /// The agreement parameter `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn broadcast(ctx: Ctx<'_>, state: &AsyncSState) -> Vec<(ProcessId, AsyncSMsg)> {
        ctx.neighbors()
            .iter()
            .map(|&j| (j, state.to_msg()))
            .collect()
    }
}

impl AsyncProtocol for AsyncS {
    type State = AsyncSState;
    type Msg = AsyncSMsg;

    fn name(&self) -> &'static str {
        "async-S"
    }

    fn tape_bits(&self) -> usize {
        64
    }

    fn init(
        &self,
        ctx: Ctx<'_>,
        received_input: bool,
        tape: &mut TapeReader<'_>,
    ) -> (AsyncSState, Vec<(ProcessId, AsyncSMsg)>) {
        let token = if ctx.id == ProcessId::LEADER {
            Some((1.0 / self.epsilon) * tape.draw_unit())
        } else {
            None
        };
        let state = CountingState::initial(ctx.m(), ctx.id, received_input, token);
        // Announce the initial state: the leader must propagate rfire, and
        // input holders must propagate validity.
        let sends = Self::broadcast(ctx, &state);
        (state, sends)
    }

    fn on_message(
        &self,
        ctx: Ctx<'_>,
        state: &AsyncSState,
        _from: ProcessId,
        msg: AsyncSMsg,
        _now: Time,
        _tape: &mut TapeReader<'_>,
    ) -> (AsyncSState, Vec<(ProcessId, AsyncSMsg)>) {
        let mut next = state.clone();
        next.process_messages(ctx.m(), ctx.id, &[msg]);
        let sends = if next != *state {
            Self::broadcast(ctx, &next)
        } else {
            Vec::new()
        };
        (next, sends)
    }

    fn on_timer(
        &self,
        ctx: Ctx<'_>,
        state: &AsyncSState,
        _now: Time,
        _tape: &mut TapeReader<'_>,
    ) -> (AsyncSState, Vec<(ProcessId, AsyncSMsg)>) {
        // Retransmit the current state: this restores the synchronous
        // model's loss tolerance (a destroyed message only delays progress
        // instead of killing the gossip conversation).
        (state.clone(), Self::broadcast(ctx, state))
    }

    fn output(&self, _ctx: Ctx<'_>, state: &AsyncSState) -> bool {
        match state.token {
            Some(rfire) => state.count as f64 >= rfire,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::{CutCourier, RandomDropCourier, ReliableCourier, SilenceCourier};
    use crate::engine::{run_async, AsyncConfig};
    use ca_core::graph::Graph;
    use ca_core::outcome::Outcome;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tapes(rng: &mut StdRng, m: usize) -> TapeSet {
        TapeSet::random(rng, m, 64)
    }

    #[test]
    fn validity_no_input_no_attack() {
        let g = Graph::complete(3).unwrap();
        let proto = AsyncS::new(0.5);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..30 {
            let t = tapes(&mut rng, 3);
            let mut courier = ReliableCourier::new(1);
            let out = run_async(&proto, &g, &AsyncConfig::no_inputs(20), &t, &mut courier);
            assert_eq!(out.outcome(), Outcome::NoAttack);
        }
    }

    #[test]
    fn generous_deadline_means_certain_attack() {
        // ε = 1/4: counts must reach 4. Latency 1 on K2 climbs ~1/tick.
        let g = Graph::complete(2).unwrap();
        let proto = AsyncS::new(0.25);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..30 {
            let t = tapes(&mut rng, 2);
            let mut courier = ReliableCourier::new(1);
            let out = run_async(
                &proto,
                &g,
                &AsyncConfig::all_inputs(&g, 30),
                &t,
                &mut courier,
            );
            assert_eq!(out.outcome(), Outcome::TotalAttack);
        }
    }

    #[test]
    fn counts_climb_with_deadline_and_slow_with_latency() {
        let g = Graph::complete(2).unwrap();
        let proto = AsyncS::new(0.01); // never saturates; we only read counts
        let mut rng = StdRng::seed_from_u64(3);
        let t = tapes(&mut rng, 2);
        let min_count = |deadline: u64, latency: u64| {
            let mut courier = ReliableCourier::new(latency);
            let out = run_async(
                &proto,
                &g,
                &AsyncConfig::all_inputs(&g, deadline),
                &t,
                &mut courier,
            );
            out.states.iter().map(|s| s.count).min().unwrap()
        };
        assert!(
            min_count(40, 1) > min_count(20, 1),
            "more time, higher count"
        );
        assert!(
            min_count(40, 1) > min_count(40, 4),
            "more latency, lower count"
        );
        assert_eq!(
            min_count(40, 50),
            0,
            "latency beyond deadline: nothing arrives"
        );
    }

    #[test]
    fn silence_gives_no_attack_with_high_probability_structure() {
        // Under total silence only the leader can ever attack (it knows
        // rfire), and only when rfire ≤ 1.
        let g = Graph::complete(2).unwrap();
        let proto = AsyncS::new(0.125);
        let mut rng = StdRng::seed_from_u64(4);
        let mut leader_attacks = 0u32;
        let trials = 2000;
        for _ in 0..trials {
            let t = tapes(&mut rng, 2);
            let mut courier = SilenceCourier;
            let out = run_async(
                &proto,
                &g,
                &AsyncConfig::all_inputs(&g, 10),
                &t,
                &mut courier,
            );
            assert!(!out.outputs[1], "follower can never attack in silence");
            if out.outputs[0] {
                leader_attacks += 1;
            }
        }
        let rate = leader_attacks as f64 / trials as f64;
        assert!(
            (rate - 0.125).abs() < 0.03,
            "leader attacks iff rfire ≤ 1: {rate}"
        );
    }

    #[test]
    fn agreement_holds_against_cut_couriers() {
        // Sweep cut times; empirical PA must stay ≤ ε (+ sampling slack).
        let g = Graph::complete(2).unwrap();
        let eps = 0.25;
        let proto = AsyncS::new(eps);
        let mut rng = StdRng::seed_from_u64(5);
        for cut in [1u64, 2, 3, 5, 8, 12] {
            let mut pa = 0u32;
            let trials = 1200;
            for _ in 0..trials {
                let t = tapes(&mut rng, 2);
                let mut courier = CutCourier::new(1, cut);
                let out = run_async(
                    &proto,
                    &g,
                    &AsyncConfig::all_inputs(&g, 16),
                    &t,
                    &mut courier,
                );
                if out.outcome() == Outcome::PartialAttack {
                    pa += 1;
                }
            }
            let rate = pa as f64 / trials as f64;
            assert!(rate <= eps + 0.05, "PA {rate} > ε at cut {cut}");
        }
    }

    #[test]
    fn agreement_holds_against_random_drops() {
        let g = Graph::complete(3).unwrap();
        let eps = 0.2;
        let proto = AsyncS::new(eps);
        let mut rng = StdRng::seed_from_u64(6);
        let mut pa = 0u32;
        let trials = 1500;
        for k in 0..trials {
            let t = tapes(&mut rng, 3);
            let mut courier = RandomDropCourier::new(0.3, 1, 4, k as u64);
            let out = run_async(
                &proto,
                &g,
                &AsyncConfig::all_inputs(&g, 25),
                &t,
                &mut courier,
            );
            if out.outcome() == Outcome::PartialAttack {
                pa += 1;
            }
        }
        let rate = pa as f64 / trials as f64;
        assert!(rate <= eps + 0.04, "PA {rate} > ε under random drops");
    }

    #[test]
    fn final_counts_spread_at_most_one() {
        // The asynchronous Lemma 6.2: however the courier behaves, final
        // counts differ by at most 1 across processes that hold the token...
        // more precisely max(count) - min(count over token holders ∪ all) ≤ 1
        // when all counts ≥ 1; tokenless processes sit at 0.
        let g = Graph::complete(3).unwrap();
        let proto = AsyncS::new(0.1);
        let mut rng = StdRng::seed_from_u64(7);
        for k in 0..300u64 {
            let t = tapes(&mut rng, 3);
            let mut courier = RandomDropCourier::new(0.4, 1, 5, 1000 + k);
            let out = run_async(
                &proto,
                &g,
                &AsyncConfig::all_inputs(&g, 20),
                &t,
                &mut courier,
            );
            let counts: Vec<u32> = out.states.iter().map(|s| s.count).collect();
            let max = *counts.iter().max().unwrap();
            for &c in &counts {
                assert!(
                    c + 1 >= max,
                    "async count spread > 1: {counts:?} (trial {k})"
                );
            }
        }
    }

    #[test]
    fn message_complexity_is_bounded() {
        // Without heartbeats, sends happen only on state changes, and each
        // process changes state at most ~m times per count level, with
        // counts bounded by the deadline: sends ≤ m·(m-1)·m·(T+1).
        let g = Graph::complete(4).unwrap();
        let proto = AsyncS::new(0.05);
        let mut rng = StdRng::seed_from_u64(8);
        let t = tapes(&mut rng, 4);
        let deadline = 200u64;
        let mut courier = ReliableCourier::new(1);
        let out = run_async(
            &proto,
            &g,
            &AsyncConfig::all_inputs(&g, deadline),
            &t,
            &mut courier,
        );
        let m = 4u64;
        let change_bound = m * (m - 1) * m * (deadline + 1);
        assert!(
            out.sent <= change_bound,
            "sent {} vs change bound {change_bound}",
            out.sent
        );
        assert!(out.delivered <= out.sent);
    }

    #[test]
    fn heartbeats_restore_loss_tolerance() {
        // Under 30% drops with no heartbeat, the gossip conversation dies at
        // the first loss (no retransmission) and counts stall; with a
        // heartbeat, drops only delay. Compare liveness over many trials.
        let g = Graph::complete(2).unwrap();
        let proto = AsyncS::new(0.125); // needs count ≥ 8
        let mut rng = StdRng::seed_from_u64(9);
        let trials = 400;
        let mut ta = [0u32; 2];
        for k in 0..trials {
            let t = tapes(&mut rng, 2);
            for (idx, heartbeat) in [None, Some(2u64)].into_iter().enumerate() {
                let mut config = AsyncConfig::all_inputs(&g, 40);
                if let Some(h) = heartbeat {
                    config = config.with_heartbeat(h);
                }
                let mut courier = RandomDropCourier::new(0.3, 1, 2, 77 + k);
                let out = run_async(&proto, &g, &config, &t, &mut courier);
                if out.outcome() == Outcome::TotalAttack {
                    ta[idx] += 1;
                }
            }
        }
        let without = ta[0] as f64 / trials as f64;
        let with = ta[1] as f64 / trials as f64;
        assert!(with > 0.9, "heartbeat liveness {with}");
        assert!(
            with > without + 0.2,
            "heartbeat must add substantial liveness: {without} vs {with}"
        );
    }

    #[test]
    #[should_panic(expected = "epsilon must be in (0, 1]")]
    fn rejects_bad_epsilon() {
        AsyncS::new(0.0);
    }
}
