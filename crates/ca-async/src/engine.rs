//! The asynchronous execution engine.
//!
//! Processes are event-driven state machines: they act at time 0 (input
//! arrival) and whenever a message is delivered, possibly sending new
//! messages whose fates the [`Courier`] decides. Execution stops at the
//! deadline `T`; messages scheduled to arrive after the deadline are lost
//! (the real-time constraint of the coordinated-attack problem).
//!
//! Determinism: deliveries are processed in `(time, sequence)` order, and
//! all randomness comes from the tapes and the courier's own seed, so an
//! execution is a pure function of `(protocol, graph, inputs, tapes,
//! courier)`.

use crate::courier::{Courier, Fate, SendEvent, Time};
use ca_core::error::CaError;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::outcome::Outcome;
use ca_core::protocol::Ctx;
use ca_core::tape::{TapeReader, TapeSet};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Debug;

/// An asynchronous, message-driven protocol.
pub trait AsyncProtocol {
    /// Per-process state.
    type State: Clone + Debug;
    /// Message payload.
    type Msg: Clone + Debug;

    /// Protocol name.
    fn name(&self) -> &'static str;

    /// Upper bound on random bits consumed per process.
    fn tape_bits(&self) -> usize;

    /// Initial state and initial sends (at time 0).
    fn init(
        &self,
        ctx: Ctx<'_>,
        received_input: bool,
        tape: &mut TapeReader<'_>,
    ) -> (Self::State, Vec<(ProcessId, Self::Msg)>);

    /// Reaction to one delivered message; returns the new state and any sends.
    fn on_message(
        &self,
        ctx: Ctx<'_>,
        state: &Self::State,
        from: ProcessId,
        msg: Self::Msg,
        now: Time,
        tape: &mut TapeReader<'_>,
    ) -> (Self::State, Vec<(ProcessId, Self::Msg)>);

    /// Reaction to a heartbeat timer (fired every [`AsyncConfig::heartbeat`]
    /// ticks when configured). Default: do nothing.
    ///
    /// Heartbeats are what restore the synchronous model's loss tolerance:
    /// send-every-round means a destroyed message only delays; a purely
    /// event-driven protocol that never retransmits dies with its first lost
    /// message.
    fn on_timer(
        &self,
        _ctx: Ctx<'_>,
        state: &Self::State,
        _now: Time,
        _tape: &mut TapeReader<'_>,
    ) -> (Self::State, Vec<(ProcessId, Self::Msg)>) {
        (state.clone(), Vec::new())
    }

    /// The decision at the deadline.
    fn output(&self, ctx: Ctx<'_>, state: &Self::State) -> bool;
}

/// Retransmission schedule for heartbeat timers: when and how often each
/// process gets a timer event (see [`AsyncProtocol::on_timer`]).
///
/// The default shape ([`HeartbeatPolicy::every`]) fires every `period` ticks
/// forever — unbounded retransmission. [`HeartbeatPolicy::bounded`] caps the
/// number of beats and spaces them with exponential backoff: the gap after
/// beat `k` is `period · backoff^k`, so `backoff = 2` fires at
/// `h, 3h, 7h, 15h, …`. Bounding retransmission is what keeps a chaos
/// schedule from turning loss tolerance into unbounded send amplification.
///
/// # Exhaustion semantics
///
/// When a bounded policy runs out of beats before the deadline, the process
/// simply stops retransmitting: no further timer events are scheduled, the
/// event queue drains, and the execution terminates at (or before) the
/// deadline with whatever state gossip reached — there is **no livelock and
/// no error**. A general whose beats ran out without completing the
/// conversation reaches a clean non-decided outcome (it never heard `rfire`,
/// so it outputs 0 by token discipline). Exhaustion is thus a *liveness*
/// degradation only; callers that need a typed signal should inspect the
/// outcome (e.g. the serve runtime classifies an execution where some
/// process never obtained the token as `Undecided` and retries it against a
/// fresh coin stream). The total number of sends is bounded by
/// `(1 + max_beats)` broadcasts per state change per process.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatPolicy {
    /// Ticks before the first beat, and the base gap between beats.
    pub period: Time,
    /// Maximum number of beats per process (`None` = unbounded).
    pub max_beats: Option<u32>,
    /// Multiplier applied to the gap after every beat (`1` = fixed period).
    pub backoff: u32,
}

impl HeartbeatPolicy {
    /// Fixed-period heartbeats forever: `period, 2·period, … ≤ T`.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn every(period: Time) -> Self {
        assert!(period >= 1, "heartbeat period must be at least 1 tick");
        HeartbeatPolicy {
            period,
            max_beats: None,
            backoff: 1,
        }
    }

    /// At most `max_beats` beats with exponential backoff.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0` or `backoff == 0`.
    pub fn bounded(period: Time, max_beats: u32, backoff: u32) -> Self {
        assert!(period >= 1, "heartbeat period must be at least 1 tick");
        assert!(backoff >= 1, "heartbeat backoff must be at least 1");
        HeartbeatPolicy {
            period,
            max_beats: Some(max_beats),
            backoff,
        }
    }

    /// Typed validation of the same invariants the constructors assert.
    fn validate(&self) -> Result<(), CaError> {
        if self.period == 0 {
            return Err(CaError::malformed(
                "heartbeat period must be at least 1 tick",
            ));
        }
        if self.backoff == 0 {
            return Err(CaError::malformed("heartbeat backoff must be at least 1"));
        }
        Ok(())
    }
}

/// Configuration of one asynchronous execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsyncConfig {
    /// The real-time deadline `T` (ticks). Deliveries after `T` are lost.
    pub deadline: Time,
    /// Which processes receive the input signal at time 0.
    pub inputs: Vec<ProcessId>,
    /// If set, every process receives timer events on this schedule — see
    /// [`AsyncProtocol::on_timer`] and [`HeartbeatPolicy`].
    pub heartbeat: Option<HeartbeatPolicy>,
}

impl AsyncConfig {
    /// All processes receive the input; no heartbeat.
    pub fn all_inputs(graph: &Graph, deadline: Time) -> Self {
        AsyncConfig {
            deadline,
            inputs: graph.vertices().collect(),
            heartbeat: None,
        }
    }

    /// No process receives the input (validity checks); no heartbeat.
    pub fn no_inputs(deadline: Time) -> Self {
        AsyncConfig {
            deadline,
            inputs: Vec::new(),
            heartbeat: None,
        }
    }

    /// Enables unbounded heartbeat timers every `period` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_heartbeat(mut self, period: Time) -> Self {
        self.heartbeat = Some(HeartbeatPolicy::every(period));
        self
    }

    /// Enables heartbeat timers on an explicit [`HeartbeatPolicy`].
    pub fn with_heartbeat_policy(mut self, policy: HeartbeatPolicy) -> Self {
        self.heartbeat = Some(policy);
        self
    }
}

/// The result of an asynchronous execution.
#[derive(Clone, Debug, PartialEq)]
pub struct AsyncOutcome<S> {
    /// Final per-process states at the deadline.
    pub states: Vec<S>,
    /// The output vector.
    pub outputs: Vec<bool>,
    /// Total messages sent.
    pub sent: u64,
    /// Total messages delivered before the deadline (≤ sent).
    pub delivered: u64,
    /// Extra copies of already-delivered messages suppressed by
    /// sequence-number dedup (nonzero only under duplicating couriers).
    pub duplicates_suppressed: u64,
    /// Virtual time of the last processed event (delivery or timer): the
    /// tick at which the execution quiesced. 0 when nothing happened. The
    /// serve runtime reads this as the instance's decision latency — an
    /// upper bound on when the final decision stabilized.
    pub last_event_at: Time,
}

impl<S> AsyncOutcome<S> {
    /// Classifies the outputs.
    pub fn outcome(&self) -> Outcome {
        Outcome::classify(&self.outputs)
    }
}

/// A scheduled event: a message delivery (tagged with the originating send's
/// sequence number, for dedup) or a heartbeat timer.
enum Event<M> {
    Deliver {
        from: ProcessId,
        to: ProcessId,
        msg: M,
        orig: u64,
    },
    Timer(ProcessId),
}

/// Event store: heap of `(time, slot)` plus slot-indexed payloads.
///
/// `slot` is the schedule position (one per scheduled copy/timer); `orig` on
/// a delivery is the send's sequence number. The two coincide only when no
/// courier duplicates and nothing is destroyed — dedup keys on `orig`.
struct Network<M> {
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    /// `pending[slot]` = the event scheduled in that slot, if still live.
    pending: Vec<Option<Event<M>>>,
    /// `delivered_once[orig]` = whether send `orig` already reached its
    /// destination (later copies are suppressed as duplicates).
    delivered_once: Vec<bool>,
    deadline: Time,
    strict: bool,
    sent: u64,
    delivered: u64,
    duplicates_suppressed: u64,
}

impl<M: Clone> Network<M> {
    fn new(deadline: Time, strict: bool) -> Self {
        Network {
            heap: BinaryHeap::new(),
            pending: Vec::new(),
            delivered_once: Vec::new(),
            deadline,
            strict,
            sent: 0,
            delivered: 0,
            duplicates_suppressed: 0,
        }
    }

    /// Hands an outbox to the courier; schedules surviving deliveries.
    ///
    /// In strict mode a fate violating the timing discipline (delivery at or
    /// before the send) panics; in lenient mode it is clamped to the minimum
    /// legal latency of one tick — a hostile schedule degrades instead of
    /// aborting.
    fn dispatch<C: Courier + ?Sized>(
        &mut self,
        graph: &Graph,
        now: Time,
        from: ProcessId,
        outbox: Vec<(ProcessId, M)>,
        courier: &mut C,
    ) {
        let mut fates: Vec<Fate> = Vec::with_capacity(1);
        for (to, msg) in outbox {
            assert!(graph.has_edge(from, to), "{from} sent to non-neighbor {to}");
            let orig = self.sent;
            self.sent += 1;
            self.delivered_once.push(false);
            fates.clear();
            courier.fates(
                SendEvent {
                    from,
                    to,
                    sent_at: now,
                    seq: orig,
                },
                &mut fates,
            );
            for &fate in &fates {
                let at = match fate {
                    Fate::Destroy => continue,
                    Fate::Deliver(at) if at > now => at,
                    Fate::Deliver(_) if self.strict => {
                        panic!("delivery must be strictly after the send")
                    }
                    Fate::Deliver(_) => now + 1,
                };
                if at <= self.deadline {
                    let slot = self.pending.len() as u64;
                    self.pending.push(Some(Event::Deliver {
                        from,
                        to,
                        msg: msg.clone(),
                        orig,
                    }));
                    self.heap.push(Reverse((at, slot)));
                }
            }
        }
    }

    /// Pre-schedules heartbeat timers for every process, at the policy's
    /// beat times (first at `period`, then spaced by backoff-multiplied
    /// gaps), up to the deadline and the beat cap.
    fn schedule_timers(&mut self, graph: &Graph, policy: &HeartbeatPolicy) {
        let mut at = policy.period;
        let mut gap = policy.period;
        let mut beats = 0u32;
        while at <= self.deadline && policy.max_beats.is_none_or(|max| beats < max) {
            for i in graph.vertices() {
                let slot = self.pending.len() as u64;
                self.pending.push(Some(Event::Timer(i)));
                self.heap.push(Reverse((at, slot)));
            }
            beats += 1;
            gap = gap.saturating_mul(Time::from(policy.backoff));
            at = at.saturating_add(gap);
        }
    }

    /// Pops the next event in `(time, slot)` order, suppressing duplicate
    /// copies of already-delivered sends.
    fn next_event(&mut self) -> Option<(Time, Event<M>)> {
        while let Some(Reverse((at, slot))) = self.heap.pop() {
            if let Some(event) = self.pending[slot as usize].take() {
                if let Event::Deliver { orig, .. } = event {
                    let seen = &mut self.delivered_once[orig as usize];
                    if *seen {
                        self.duplicates_suppressed += 1;
                        continue;
                    }
                    *seen = true;
                    self.delivered += 1;
                }
                return Some((at, event));
            }
        }
        None
    }
}

/// Executes the protocol to the deadline under the given courier.
///
/// # Panics
///
/// Panics if the tape set size differs from the graph, if an input id is out
/// of range, if the courier schedules a delivery at or before the send time,
/// or if a protocol sends to a non-neighbor. For a non-panicking entry point
/// that validates the same conditions up front, see [`try_run_async`].
pub fn run_async<P, C>(
    protocol: &P,
    graph: &Graph,
    config: &AsyncConfig,
    tapes: &TapeSet,
    courier: &mut C,
) -> AsyncOutcome<P::State>
where
    P: AsyncProtocol,
    C: Courier + ?Sized,
{
    assert_eq!(graph.len(), tapes.len(), "graph and tape set disagree");
    for &i in &config.inputs {
        assert!(i.index() < graph.len(), "input process out of range");
    }
    if let Some(policy) = &config.heartbeat {
        assert!(
            policy.period >= 1,
            "heartbeat period must be at least 1 tick"
        );
        assert!(policy.backoff >= 1, "heartbeat backoff must be at least 1");
    }
    run_engine(protocol, graph, config, tapes, courier, true)
}

/// Executes the protocol like [`run_async`] but with typed-error handling:
/// malformed configurations are rejected up front instead of panicking, and
/// a courier that violates the timing discipline (delivery at or before the
/// send) is clamped to the minimum legal latency of one tick instead of
/// aborting the process. Built for the chaos harness, where schedules are
/// adversarial by construction.
///
/// # Errors
///
/// * [`CaError::MalformedConfig`] — tape set size differs from the graph, an
///   input id is out of range, or the heartbeat policy is invalid.
/// * [`CaError::TapeExhausted`] — some process's tape is shorter than the
///   protocol's declared [`AsyncProtocol::tape_bits`] budget.
///
/// # Panics
///
/// Still panics on protocol bugs (a process sending to a non-neighbor, or
/// consuming more tape than `tape_bits()` declares): those are not
/// schedule-reachable and should fail loudly.
pub fn try_run_async<P, C>(
    protocol: &P,
    graph: &Graph,
    config: &AsyncConfig,
    tapes: &TapeSet,
    courier: &mut C,
) -> Result<AsyncOutcome<P::State>, CaError>
where
    P: AsyncProtocol,
    C: Courier + ?Sized,
{
    if graph.len() != tapes.len() {
        return Err(CaError::malformed(format!(
            "graph has {} processes but the tape set has {}",
            graph.len(),
            tapes.len()
        )));
    }
    for &i in &config.inputs {
        if i.index() >= graph.len() {
            return Err(CaError::malformed(format!(
                "input process {i} out of range for a graph of {}",
                graph.len()
            )));
        }
    }
    if let Some(policy) = &config.heartbeat {
        policy.validate()?;
    }
    for i in graph.vertices() {
        let have = tapes.tape(i).len_bits();
        if have < protocol.tape_bits() {
            return Err(CaError::TapeExhausted {
                at_bit: protocol.tape_bits(),
                len_bits: have,
            });
        }
    }
    Ok(run_engine(protocol, graph, config, tapes, courier, false))
}

/// Shared engine body. `strict` selects panicking (historic) versus lenient
/// (chaos-hardened) handling of courier timing violations; all validation
/// happens in the callers.
fn run_engine<P, C>(
    protocol: &P,
    graph: &Graph,
    config: &AsyncConfig,
    tapes: &TapeSet,
    courier: &mut C,
    strict: bool,
) -> AsyncOutcome<P::State>
where
    P: AsyncProtocol,
    C: Courier + ?Sized,
{
    let n_for_ctx = u32::try_from(config.deadline).unwrap_or(u32::MAX);
    let mut readers: Vec<_> = graph.vertices().map(|i| tapes.tape(i).reader()).collect();
    let mut net: Network<P::Msg> = Network::new(config.deadline, strict);

    // Time 0: inputs and initial sends.
    let mut states: Vec<P::State> = Vec::with_capacity(graph.len());
    let mut initial_outboxes = Vec::with_capacity(graph.len());
    for i in graph.vertices() {
        let ctx = Ctx::new(graph, n_for_ctx, i);
        let (state, outbox) =
            protocol.init(ctx, config.inputs.contains(&i), &mut readers[i.index()]);
        states.push(state);
        initial_outboxes.push((i, outbox));
    }
    for (i, outbox) in initial_outboxes {
        net.dispatch(graph, 0, i, outbox, courier);
    }
    if let Some(policy) = &config.heartbeat {
        net.schedule_timers(graph, policy);
    }

    // Event loop: deliveries and timers in (time, slot) order.
    let mut last_event_at: Time = 0;
    while let Some((now, event)) = net.next_event() {
        last_event_at = now;
        let (who, state, outbox) = match event {
            Event::Deliver { from, to, msg, .. } => {
                let ctx = Ctx::new(graph, n_for_ctx, to);
                let (state, outbox) = protocol.on_message(
                    ctx,
                    &states[to.index()],
                    from,
                    msg,
                    now,
                    &mut readers[to.index()],
                );
                (to, state, outbox)
            }
            Event::Timer(i) => {
                let ctx = Ctx::new(graph, n_for_ctx, i);
                let (state, outbox) =
                    protocol.on_timer(ctx, &states[i.index()], now, &mut readers[i.index()]);
                (i, state, outbox)
            }
        };
        states[who.index()] = state;
        net.dispatch(graph, now, who, outbox, courier);
    }

    AsyncOutcome {
        outputs: graph
            .vertices()
            .map(|i| protocol.output(Ctx::new(graph, n_for_ctx, i), &states[i.index()]))
            .collect(),
        states,
        sent: net.sent,
        delivered: net.delivered,
        duplicates_suppressed: net.duplicates_suppressed,
        last_event_at,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::{CutCourier, ReliableCourier, SilenceCourier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Async flood: forward "input arrived" once to all neighbors.
    struct Flood;

    impl AsyncProtocol for Flood {
        type State = bool;
        type Msg = ();

        fn name(&self) -> &'static str {
            "async-flood"
        }
        fn tape_bits(&self) -> usize {
            0
        }
        fn init(
            &self,
            ctx: Ctx<'_>,
            received_input: bool,
            _tape: &mut TapeReader<'_>,
        ) -> (bool, Vec<(ProcessId, ())>) {
            let sends = if received_input {
                ctx.neighbors().iter().map(|&j| (j, ())).collect()
            } else {
                Vec::new()
            };
            (received_input, sends)
        }
        fn on_message(
            &self,
            ctx: Ctx<'_>,
            state: &bool,
            _from: ProcessId,
            _msg: (),
            _now: Time,
            _tape: &mut TapeReader<'_>,
        ) -> (bool, Vec<(ProcessId, ())>) {
            if *state {
                (true, Vec::new())
            } else {
                (true, ctx.neighbors().iter().map(|&j| (j, ())).collect())
            }
        }
        fn output(&self, _ctx: Ctx<'_>, state: &bool) -> bool {
            *state
        }
    }

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 1)
    }

    #[test]
    fn flood_crosses_a_line_at_latency_speed() {
        let g = Graph::line(5).unwrap();
        let config = AsyncConfig {
            deadline: 8,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut courier = ReliableCourier::new(2);
        let out = run_async(&Flood, &g, &config, &tapes(5), &mut courier);
        // Distance d needs 2d ticks; deadline 8 reaches distance 4.
        assert_eq!(out.outputs, vec![true, true, true, true, true]);
        assert_eq!(out.outcome(), Outcome::TotalAttack);
        assert!(out.delivered <= out.sent);
    }

    #[test]
    fn deadline_cuts_off_distant_processes() {
        let g = Graph::line(5).unwrap();
        let config = AsyncConfig {
            deadline: 5,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut courier = ReliableCourier::new(2);
        let out = run_async(&Flood, &g, &config, &tapes(5), &mut courier);
        // 5 ticks at latency 2 reach distance 2 only.
        assert_eq!(out.outputs, vec![true, true, true, false, false]);
    }

    #[test]
    fn silence_leaves_only_input_holders() {
        let g = Graph::complete(3).unwrap();
        let config = AsyncConfig {
            deadline: 10,
            inputs: vec![ProcessId::new(1)],
            heartbeat: None,
        };
        let mut courier = SilenceCourier;
        let out = run_async(&Flood, &g, &config, &tapes(3), &mut courier);
        assert_eq!(out.outputs, vec![false, true, false]);
        assert_eq!(out.delivered, 0);
        assert_eq!(out.sent, 2, "only the input holder sends");
    }

    #[test]
    fn cut_courier_stops_the_flood() {
        let g = Graph::line(4).unwrap();
        let config = AsyncConfig {
            deadline: 20,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut courier = CutCourier::new(1, 2);
        let out = run_async(&Flood, &g, &config, &tapes(4), &mut courier);
        // Sends at t=0 (P0) and t=1 (P1) survive; P2's send at t=2 dies.
        assert_eq!(out.outputs, vec![true, true, true, false]);
    }

    #[test]
    fn no_inputs_means_no_activity() {
        let g = Graph::complete(3).unwrap();
        let config = AsyncConfig::no_inputs(10);
        let mut courier = ReliableCourier::new(1);
        let out = run_async(&Flood, &g, &config, &tapes(3), &mut courier);
        assert_eq!(out.outcome(), Outcome::NoAttack);
        assert_eq!(out.sent, 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let g = Graph::complete(4).unwrap();
        let config = AsyncConfig::all_inputs(&g, 12);
        let t = tapes(4);
        let run = || {
            let mut courier = crate::courier::RandomDropCourier::new(0.3, 1, 3, 99);
            run_async(&Flood, &g, &config, &t, &mut courier)
        };
        assert_eq!(run().outputs, run().outputs);
    }

    /// Delivers every message twice (at `latency` and `latency + 1`).
    struct EchoCourier {
        latency: Time,
    }

    impl Courier for EchoCourier {
        fn name(&self) -> &'static str {
            "echo"
        }
        fn fate(&mut self, event: SendEvent) -> Fate {
            Fate::Deliver(event.sent_at + self.latency)
        }
        fn fates(&mut self, event: SendEvent, out: &mut Vec<Fate>) {
            out.push(Fate::Deliver(event.sent_at + self.latency));
            out.push(Fate::Deliver(event.sent_at + self.latency + 1));
        }
    }

    /// Schedules every delivery at the send time (illegal time travel).
    struct TimeTravelCourier;

    impl Courier for TimeTravelCourier {
        fn name(&self) -> &'static str {
            "time-travel"
        }
        fn fate(&mut self, event: SendEvent) -> Fate {
            Fate::Deliver(event.sent_at)
        }
    }

    #[test]
    fn duplicated_deliveries_are_suppressed_by_seq_dedup() {
        let g = Graph::complete(3).unwrap();
        let config = AsyncConfig {
            deadline: 10,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut echo = EchoCourier { latency: 1 };
        let dup = run_async(&Flood, &g, &config, &tapes(3), &mut echo);
        let mut reliable = ReliableCourier::new(1);
        let plain = run_async(&Flood, &g, &config, &tapes(3), &mut reliable);
        // Dedup makes the duplicating courier behaviorally identical to the
        // reliable one: same outputs, same sends, same effective deliveries.
        assert_eq!(dup.outputs, plain.outputs);
        assert_eq!(dup.sent, plain.sent);
        assert_eq!(dup.delivered, plain.delivered);
        assert_eq!(dup.duplicates_suppressed, plain.sent);
        assert_eq!(plain.duplicates_suppressed, 0);
    }

    /// Counts heartbeat timer firings per process.
    struct TickCounter;

    impl AsyncProtocol for TickCounter {
        type State = u64;
        type Msg = ();

        fn name(&self) -> &'static str {
            "tick-counter"
        }
        fn tape_bits(&self) -> usize {
            0
        }
        fn init(
            &self,
            _ctx: Ctx<'_>,
            _received_input: bool,
            _tape: &mut TapeReader<'_>,
        ) -> (u64, Vec<(ProcessId, ())>) {
            (0, Vec::new())
        }
        fn on_message(
            &self,
            _ctx: Ctx<'_>,
            state: &u64,
            _from: ProcessId,
            _msg: (),
            _now: Time,
            _tape: &mut TapeReader<'_>,
        ) -> (u64, Vec<(ProcessId, ())>) {
            (*state, Vec::new())
        }
        fn on_timer(
            &self,
            _ctx: Ctx<'_>,
            state: &u64,
            _now: Time,
            _tape: &mut TapeReader<'_>,
        ) -> (u64, Vec<(ProcessId, ())>) {
            (state + 1, Vec::new())
        }
        fn output(&self, _ctx: Ctx<'_>, state: &u64) -> bool {
            *state > 0
        }
    }

    #[test]
    fn bounded_backoff_heartbeats_fire_at_widening_gaps() {
        let g = Graph::complete(2).unwrap();
        // Beats at 2, 2+4=6, 6+8=14; the cap stops the fourth (t=30).
        let config = AsyncConfig::all_inputs(&g, 100)
            .with_heartbeat_policy(HeartbeatPolicy::bounded(2, 3, 2));
        let mut courier = ReliableCourier::new(1);
        let out = run_async(&TickCounter, &g, &config, &tapes(2), &mut courier);
        assert_eq!(out.states, vec![3, 3]);

        // Unbounded unit-backoff keeps the historic every-period semantics.
        let config = AsyncConfig::all_inputs(&g, 100).with_heartbeat(10);
        let out = run_async(&TickCounter, &g, &config, &tapes(2), &mut courier);
        assert_eq!(out.states, vec![10, 10]);
    }

    #[test]
    fn bounded_heartbeat_exhaustion_is_a_clean_non_decided_outcome() {
        use crate::protocol::AsyncS;
        use ca_core::tape::BitTape;

        // AsyncS on K2 under total silence: the gossip conversation can
        // never complete, so a bounded policy's beats run out. Exhaustion
        // must terminate the run with a bounded number of sends and a clean
        // non-decided (NoAttack) outcome — no livelock at the deadline.
        let g = Graph::complete(2).unwrap();
        // All-ones tapes make the leader draw rfire ≈ 1/ε = 8, far above
        // any count reachable in silence, so nobody attacks.
        let tapes = TapeSet::from_tapes(vec![
            BitTape::from_words(vec![u64::MAX]),
            BitTape::from_words(vec![u64::MAX]),
        ]);
        let proto = AsyncS::new(0.125);
        // Beats at 2, 6, 14, 30, 62; the cap stops the sixth (t = 126)
        // even though the deadline would allow many more.
        let config = AsyncConfig::all_inputs(&g, 1000)
            .with_heartbeat_policy(HeartbeatPolicy::bounded(2, 5, 2));
        let out = run_async(&proto, &g, &config, &tapes, &mut SilenceCourier);

        assert_eq!(out.outcome(), Outcome::NoAttack, "clean non-decided");
        assert_eq!(out.outputs, vec![false, false]);
        // 1 init broadcast + 5 beat retransmissions, per process, 1 neighbor
        // each: sends are bounded by the beat cap, not the deadline.
        assert_eq!(out.sent, 2 * (1 + 5));
        assert_eq!(out.delivered, 0);
        // The run quiesced at the final beat, far before the deadline.
        assert_eq!(out.last_event_at, 62);
        // The follower never heard rfire: token discipline kept it at 0.
        assert!(out.states[0].token.is_some());
        assert!(out.states[1].token.is_none());
    }

    #[test]
    #[should_panic(expected = "strictly after the send")]
    fn strict_mode_panics_on_time_travel() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 10);
        run_async(&Flood, &g, &config, &tapes(2), &mut TimeTravelCourier);
    }

    #[test]
    fn lenient_mode_clamps_time_travel_to_unit_latency() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 10);
        let clamped = try_run_async(&Flood, &g, &config, &tapes(2), &mut TimeTravelCourier)
            .expect("lenient run succeeds");
        let mut reliable = ReliableCourier::new(1);
        let plain = run_async(&Flood, &g, &config, &tapes(2), &mut reliable);
        assert_eq!(clamped.outputs, plain.outputs);
        assert_eq!(clamped.delivered, plain.delivered);
    }

    #[test]
    fn try_run_async_rejects_malformed_configs() {
        let g = Graph::complete(3).unwrap();
        let mut courier = ReliableCourier::new(1);

        // Tape set size disagrees with the graph.
        let config = AsyncConfig::all_inputs(&g, 10);
        let err = try_run_async(&Flood, &g, &config, &tapes(2), &mut courier).unwrap_err();
        assert!(matches!(err, CaError::MalformedConfig { .. }), "{err}");

        // Input id out of range.
        let config = AsyncConfig {
            deadline: 10,
            inputs: vec![ProcessId::new(7)],
            heartbeat: None,
        };
        let err = try_run_async(&Flood, &g, &config, &tapes(3), &mut courier).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        // Hostile heartbeat policy (fields are public, so constructible).
        let config = AsyncConfig {
            deadline: 10,
            inputs: Vec::new(),
            heartbeat: Some(HeartbeatPolicy {
                period: 0,
                max_beats: None,
                backoff: 1,
            }),
        };
        let err = try_run_async(&Flood, &g, &config, &tapes(3), &mut courier).unwrap_err();
        assert!(err.to_string().contains("heartbeat"), "{err}");
    }

    #[test]
    fn try_run_async_rejects_short_tapes() {
        /// Declares a 128-bit budget but never draws (budget check only).
        struct Greedy;
        impl AsyncProtocol for Greedy {
            type State = ();
            type Msg = ();
            fn name(&self) -> &'static str {
                "greedy"
            }
            fn tape_bits(&self) -> usize {
                128
            }
            fn init(
                &self,
                _ctx: Ctx<'_>,
                _received_input: bool,
                _tape: &mut TapeReader<'_>,
            ) -> ((), Vec<(ProcessId, ())>) {
                ((), Vec::new())
            }
            fn on_message(
                &self,
                _ctx: Ctx<'_>,
                _state: &(),
                _from: ProcessId,
                _msg: (),
                _now: Time,
                _tape: &mut TapeReader<'_>,
            ) -> ((), Vec<(ProcessId, ())>) {
                ((), Vec::new())
            }
            fn output(&self, _ctx: Ctx<'_>, _state: &()) -> bool {
                false
            }
        }
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::no_inputs(5);
        let mut courier = ReliableCourier::new(1);
        let err = try_run_async(&Greedy, &g, &config, &tapes(2), &mut courier).unwrap_err();
        assert_eq!(
            err,
            CaError::TapeExhausted {
                at_bit: 128,
                len_bits: 64
            }
        );
    }
}
