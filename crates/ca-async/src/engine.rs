//! The asynchronous execution engine.
//!
//! Processes are event-driven state machines: they act at time 0 (input
//! arrival) and whenever a message is delivered, possibly sending new
//! messages whose fates the [`Courier`] decides. Execution stops at the
//! deadline `T`; messages scheduled to arrive after the deadline are lost
//! (the real-time constraint of the coordinated-attack problem).
//!
//! Determinism: deliveries are processed in `(time, sequence)` order, and
//! all randomness comes from the tapes and the courier's own seed, so an
//! execution is a pure function of `(protocol, graph, inputs, tapes,
//! courier)`.

use crate::courier::{Courier, Fate, SendEvent, Time};
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::outcome::Outcome;
use ca_core::protocol::Ctx;
use ca_core::tape::{TapeReader, TapeSet};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt::Debug;

/// An asynchronous, message-driven protocol.
pub trait AsyncProtocol {
    /// Per-process state.
    type State: Clone + Debug;
    /// Message payload.
    type Msg: Clone + Debug;

    /// Protocol name.
    fn name(&self) -> &'static str;

    /// Upper bound on random bits consumed per process.
    fn tape_bits(&self) -> usize;

    /// Initial state and initial sends (at time 0).
    fn init(
        &self,
        ctx: Ctx<'_>,
        received_input: bool,
        tape: &mut TapeReader<'_>,
    ) -> (Self::State, Vec<(ProcessId, Self::Msg)>);

    /// Reaction to one delivered message; returns the new state and any sends.
    fn on_message(
        &self,
        ctx: Ctx<'_>,
        state: &Self::State,
        from: ProcessId,
        msg: Self::Msg,
        now: Time,
        tape: &mut TapeReader<'_>,
    ) -> (Self::State, Vec<(ProcessId, Self::Msg)>);

    /// Reaction to a heartbeat timer (fired every [`AsyncConfig::heartbeat`]
    /// ticks when configured). Default: do nothing.
    ///
    /// Heartbeats are what restore the synchronous model's loss tolerance:
    /// send-every-round means a destroyed message only delays; a purely
    /// event-driven protocol that never retransmits dies with its first lost
    /// message.
    fn on_timer(
        &self,
        _ctx: Ctx<'_>,
        state: &Self::State,
        _now: Time,
        _tape: &mut TapeReader<'_>,
    ) -> (Self::State, Vec<(ProcessId, Self::Msg)>) {
        (state.clone(), Vec::new())
    }

    /// The decision at the deadline.
    fn output(&self, ctx: Ctx<'_>, state: &Self::State) -> bool;
}

/// Configuration of one asynchronous execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsyncConfig {
    /// The real-time deadline `T` (ticks). Deliveries after `T` are lost.
    pub deadline: Time,
    /// Which processes receive the input signal at time 0.
    pub inputs: Vec<ProcessId>,
    /// If set, every process receives a timer event every this many ticks
    /// (at `h, 2h, …, ≤ T`) — see [`AsyncProtocol::on_timer`].
    pub heartbeat: Option<Time>,
}

impl AsyncConfig {
    /// All processes receive the input; no heartbeat.
    pub fn all_inputs(graph: &Graph, deadline: Time) -> Self {
        AsyncConfig {
            deadline,
            inputs: graph.vertices().collect(),
            heartbeat: None,
        }
    }

    /// No process receives the input (validity checks); no heartbeat.
    pub fn no_inputs(deadline: Time) -> Self {
        AsyncConfig {
            deadline,
            inputs: Vec::new(),
            heartbeat: None,
        }
    }

    /// Enables heartbeat timers every `period` ticks.
    ///
    /// # Panics
    ///
    /// Panics if `period == 0`.
    pub fn with_heartbeat(mut self, period: Time) -> Self {
        assert!(period >= 1, "heartbeat period must be at least 1 tick");
        self.heartbeat = Some(period);
        self
    }
}

/// The result of an asynchronous execution.
#[derive(Clone, Debug, PartialEq)]
pub struct AsyncOutcome<S> {
    /// Final per-process states at the deadline.
    pub states: Vec<S>,
    /// The output vector.
    pub outputs: Vec<bool>,
    /// Total messages sent.
    pub sent: u64,
    /// Total messages delivered before the deadline (≤ sent).
    pub delivered: u64,
}

impl<S> AsyncOutcome<S> {
    /// Classifies the outputs.
    pub fn outcome(&self) -> Outcome {
        Outcome::classify(&self.outputs)
    }
}

/// A scheduled event: a message delivery or a heartbeat timer.
enum Event<M> {
    Deliver(ProcessId, ProcessId, M),
    Timer(ProcessId),
}

/// Event store: heap of `(time, seq)` plus seq-indexed payloads.
struct Network<M> {
    heap: BinaryHeap<Reverse<(Time, u64)>>,
    /// `pending[seq]` = the event with that sequence number, if still live.
    pending: Vec<Option<Event<M>>>,
    sent: u64,
    delivered: u64,
}

impl<M> Network<M> {
    fn new() -> Self {
        Network {
            heap: BinaryHeap::new(),
            pending: Vec::new(),
            sent: 0,
            delivered: 0,
        }
    }

    /// Hands an outbox to the courier; schedules surviving deliveries.
    fn dispatch<C: Courier + ?Sized>(
        &mut self,
        graph: &Graph,
        deadline: Time,
        now: Time,
        from: ProcessId,
        outbox: Vec<(ProcessId, M)>,
        courier: &mut C,
    ) {
        for (to, msg) in outbox {
            assert!(graph.has_edge(from, to), "{from} sent to non-neighbor {to}");
            let seq = self.pending.len() as u64;
            self.sent += 1;
            match courier.fate(SendEvent {
                from,
                to,
                sent_at: now,
                seq,
            }) {
                Fate::Deliver(at) => {
                    assert!(at > now, "delivery must be strictly after the send");
                    if at <= deadline {
                        self.pending.push(Some(Event::Deliver(from, to, msg)));
                        self.heap.push(Reverse((at, seq)));
                    } else {
                        self.pending.push(None);
                    }
                }
                Fate::Destroy => self.pending.push(None),
            }
        }
    }

    /// Pre-schedules heartbeat timers at `period, 2·period, … ≤ deadline`
    /// for every process.
    fn schedule_timers(&mut self, graph: &Graph, deadline: Time, period: Time) {
        let mut at = period;
        while at <= deadline {
            for i in graph.vertices() {
                let seq = self.pending.len() as u64;
                self.pending.push(Some(Event::Timer(i)));
                self.heap.push(Reverse((at, seq)));
            }
            at += period;
        }
    }

    /// Pops the next event in `(time, seq)` order.
    fn next_event(&mut self) -> Option<(Time, Event<M>)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if let Some(event) = self.pending[seq as usize].take() {
                if matches!(event, Event::Deliver(..)) {
                    self.delivered += 1;
                }
                return Some((at, event));
            }
        }
        None
    }
}

/// Executes the protocol to the deadline under the given courier.
///
/// # Panics
///
/// Panics if the tape set size differs from the graph, if an input id is out
/// of range, if the courier schedules a delivery at or before the send time,
/// or if a protocol sends to a non-neighbor.
pub fn run_async<P, C>(
    protocol: &P,
    graph: &Graph,
    config: &AsyncConfig,
    tapes: &TapeSet,
    courier: &mut C,
) -> AsyncOutcome<P::State>
where
    P: AsyncProtocol,
    C: Courier + ?Sized,
{
    assert_eq!(graph.len(), tapes.len(), "graph and tape set disagree");
    for &i in &config.inputs {
        assert!(i.index() < graph.len(), "input process out of range");
    }
    let n_for_ctx = u32::try_from(config.deadline).unwrap_or(u32::MAX);
    let mut readers: Vec<_> = graph.vertices().map(|i| tapes.tape(i).reader()).collect();
    let mut net: Network<P::Msg> = Network::new();

    // Time 0: inputs and initial sends.
    let mut states: Vec<P::State> = Vec::with_capacity(graph.len());
    let mut initial_outboxes = Vec::with_capacity(graph.len());
    for i in graph.vertices() {
        let ctx = Ctx::new(graph, n_for_ctx, i);
        let (state, outbox) =
            protocol.init(ctx, config.inputs.contains(&i), &mut readers[i.index()]);
        states.push(state);
        initial_outboxes.push((i, outbox));
    }
    for (i, outbox) in initial_outboxes {
        net.dispatch(graph, config.deadline, 0, i, outbox, courier);
    }
    if let Some(period) = config.heartbeat {
        assert!(period >= 1, "heartbeat period must be at least 1 tick");
        net.schedule_timers(graph, config.deadline, period);
    }

    // Event loop: deliveries and timers in (time, seq) order.
    while let Some((now, event)) = net.next_event() {
        let (who, state, outbox) = match event {
            Event::Deliver(from, to, msg) => {
                let ctx = Ctx::new(graph, n_for_ctx, to);
                let (state, outbox) = protocol.on_message(
                    ctx,
                    &states[to.index()],
                    from,
                    msg,
                    now,
                    &mut readers[to.index()],
                );
                (to, state, outbox)
            }
            Event::Timer(i) => {
                let ctx = Ctx::new(graph, n_for_ctx, i);
                let (state, outbox) =
                    protocol.on_timer(ctx, &states[i.index()], now, &mut readers[i.index()]);
                (i, state, outbox)
            }
        };
        states[who.index()] = state;
        net.dispatch(graph, config.deadline, now, who, outbox, courier);
    }

    AsyncOutcome {
        outputs: graph
            .vertices()
            .map(|i| protocol.output(Ctx::new(graph, n_for_ctx, i), &states[i.index()]))
            .collect(),
        states,
        sent: net.sent,
        delivered: net.delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::{CutCourier, ReliableCourier, SilenceCourier};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Async flood: forward "input arrived" once to all neighbors.
    struct Flood;

    impl AsyncProtocol for Flood {
        type State = bool;
        type Msg = ();

        fn name(&self) -> &'static str {
            "async-flood"
        }
        fn tape_bits(&self) -> usize {
            0
        }
        fn init(
            &self,
            ctx: Ctx<'_>,
            received_input: bool,
            _tape: &mut TapeReader<'_>,
        ) -> (bool, Vec<(ProcessId, ())>) {
            let sends = if received_input {
                ctx.neighbors().iter().map(|&j| (j, ())).collect()
            } else {
                Vec::new()
            };
            (received_input, sends)
        }
        fn on_message(
            &self,
            ctx: Ctx<'_>,
            state: &bool,
            _from: ProcessId,
            _msg: (),
            _now: Time,
            _tape: &mut TapeReader<'_>,
        ) -> (bool, Vec<(ProcessId, ())>) {
            if *state {
                (true, Vec::new())
            } else {
                (true, ctx.neighbors().iter().map(|&j| (j, ())).collect())
            }
        }
        fn output(&self, _ctx: Ctx<'_>, state: &bool) -> bool {
            *state
        }
    }

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 1)
    }

    #[test]
    fn flood_crosses_a_line_at_latency_speed() {
        let g = Graph::line(5).unwrap();
        let config = AsyncConfig {
            deadline: 8,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut courier = ReliableCourier::new(2);
        let out = run_async(&Flood, &g, &config, &tapes(5), &mut courier);
        // Distance d needs 2d ticks; deadline 8 reaches distance 4.
        assert_eq!(out.outputs, vec![true, true, true, true, true]);
        assert_eq!(out.outcome(), Outcome::TotalAttack);
        assert!(out.delivered <= out.sent);
    }

    #[test]
    fn deadline_cuts_off_distant_processes() {
        let g = Graph::line(5).unwrap();
        let config = AsyncConfig {
            deadline: 5,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut courier = ReliableCourier::new(2);
        let out = run_async(&Flood, &g, &config, &tapes(5), &mut courier);
        // 5 ticks at latency 2 reach distance 2 only.
        assert_eq!(out.outputs, vec![true, true, true, false, false]);
    }

    #[test]
    fn silence_leaves_only_input_holders() {
        let g = Graph::complete(3).unwrap();
        let config = AsyncConfig {
            deadline: 10,
            inputs: vec![ProcessId::new(1)],
            heartbeat: None,
        };
        let mut courier = SilenceCourier;
        let out = run_async(&Flood, &g, &config, &tapes(3), &mut courier);
        assert_eq!(out.outputs, vec![false, true, false]);
        assert_eq!(out.delivered, 0);
        assert_eq!(out.sent, 2, "only the input holder sends");
    }

    #[test]
    fn cut_courier_stops_the_flood() {
        let g = Graph::line(4).unwrap();
        let config = AsyncConfig {
            deadline: 20,
            inputs: vec![ProcessId::new(0)],
            heartbeat: None,
        };
        let mut courier = CutCourier::new(1, 2);
        let out = run_async(&Flood, &g, &config, &tapes(4), &mut courier);
        // Sends at t=0 (P0) and t=1 (P1) survive; P2's send at t=2 dies.
        assert_eq!(out.outputs, vec![true, true, true, false]);
    }

    #[test]
    fn no_inputs_means_no_activity() {
        let g = Graph::complete(3).unwrap();
        let config = AsyncConfig::no_inputs(10);
        let mut courier = ReliableCourier::new(1);
        let out = run_async(&Flood, &g, &config, &tapes(3), &mut courier);
        assert_eq!(out.outcome(), Outcome::NoAttack);
        assert_eq!(out.sent, 0);
    }

    #[test]
    fn execution_is_deterministic() {
        let g = Graph::complete(4).unwrap();
        let config = AsyncConfig::all_inputs(&g, 12);
        let t = tapes(4);
        let run = || {
            let mut courier = crate::courier::RandomDropCourier::new(0.3, 1, 3, 99);
            run_async(&Flood, &g, &config, &t, &mut courier)
        };
        assert_eq!(run().outputs, run().outputs);
    }
}
