//! Chaos campaigns: adversarial schedule search with shrinking.
//!
//! A campaign samples many [`FaultSchedule`]s from a master seed, runs
//! [`AsyncS`] under each, and checks the paper's claims as invariant
//! oracles:
//!
//! * **count spread** — final counts differ by at most 1 across processes
//!   (the Figure 1 automaton's safety core);
//! * **token discipline** — a process that never heard `rfire` never
//!   attacks (validity);
//! * **outcome validity** — the exact outcome distribution is a
//!   distribution (`TA + NA + PA = 1`, each in `[0, 1]`);
//! * **safety** — exact `Pr[PA] ≤ ε`, by rational arithmetic, against the
//!   schedule-as-adversary (Theorem 1's upper bound, which holds against
//!   *any* courier);
//! * **liveness** — exact `Pr[TA] ≥ min(1, ε·C)` where `C` is the minimum
//!   count reached by the deadline (the asynchronous analogue of
//!   `min(1, ε·ML(R))`), cross-checked against the exact computation;
//! * **Monte Carlo consistency** — the empirical attack rate over random
//!   tapes agrees with the exact rational probability;
//! * **determinism** — replaying the same schedule reproduces the same
//!   outcome byte for byte.
//!
//! Every execution goes through [`try_run_async`], so a hostile schedule
//! can only degrade an outcome, never abort the process. A schedule that
//! violates an oracle is delta-debugged ([`ca_sim::chaos::ddmin`]) to a
//! minimal fault list that still violates; when no schedule violates
//! (the expected case — the theorems hold), the campaign instead shrinks
//! the schedule that did the most *liveness damage* (lowest exact `TA`) to
//! the minimal fault list achieving that damage, which is what
//! `ca chaos` reports as the worst case.
//!
//! Executions use all-inputs configurations with a bounded-backoff
//! heartbeat ([`HeartbeatPolicy::bounded`] with period 2, 8 beats, backoff
//! 2): retransmission restores loss tolerance without letting a chaos
//! schedule provoke unbounded send amplification.

use crate::chaos::{ChaosCourier, FaultPrimitive, FaultSchedule, TimeWindow};
use crate::courier::Time;
use crate::engine::{try_run_async, AsyncConfig, HeartbeatPolicy};
use crate::exact::async_s_outcomes;
use crate::protocol::AsyncS;
use crate::supervisor::panic_message;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::outcome::Outcome;
use ca_core::rational::Rational;
use ca_core::run::Run;
use ca_core::tape::{BitTape, TapeSet};
use ca_protocols::ProtocolS;
use ca_sim::chaos::{ddmin, mix64, parallel_map};
use ca_sim::stats::BernoulliEstimate;
use ca_sim::{simulate_sliced, FixedRun, SimConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::json;
use serde::{Deserialize, Serialize};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Parameters of a chaos campaign.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignConfig {
    /// Number of schedules to sample and check.
    pub schedules: u64,
    /// Master seed; the whole campaign (sampling, oracles, shrinking) is a
    /// deterministic function of it.
    pub seed: u64,
    /// The real-time deadline `T` of every execution.
    pub deadline: Time,
    /// `t = 1/ε`: the agreement parameter's reciprocal.
    pub t: u64,
    /// Maximum faults per sampled schedule.
    pub max_faults: usize,
    /// Worker threads (0 = available parallelism). The report is
    /// independent of this.
    pub threads: usize,
    /// Monte Carlo cross-check trials per schedule (0 disables the oracle).
    pub mc_trials: u64,
}

impl CampaignConfig {
    /// A campaign with default fault density (≤ 4 faults per schedule),
    /// all cores, and a 200-trial Monte Carlo cross-check.
    pub fn new(schedules: u64, seed: u64, deadline: Time, t: u64) -> Self {
        CampaignConfig {
            schedules,
            seed,
            deadline,
            t,
            max_faults: 4,
            threads: 0,
            mc_trials: 200,
        }
    }
}

/// Pass/fail of each invariant oracle for one schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OracleVerdicts {
    /// Final counts spread by at most 1.
    pub count_spread_ok: bool,
    /// No tokenless process attacked.
    pub token_discipline_ok: bool,
    /// Exact `(TA, NA, PA)` is a probability distribution.
    pub outcome_valid: bool,
    /// Exact `Pr[PA] ≤ ε`.
    pub safety_ok: bool,
    /// Exact `Pr[TA] ≥ min(1, ε·C)` for the deadline mincount `C`.
    pub liveness_ok: bool,
    /// Empirical attack rate consistent with the exact probability.
    pub mc_consistent: bool,
    /// Replaying the schedule reproduced the identical outcome.
    pub deterministic: bool,
}

impl OracleVerdicts {
    const ALL_OK: OracleVerdicts = OracleVerdicts {
        count_spread_ok: true,
        token_discipline_ok: true,
        outcome_valid: true,
        safety_ok: true,
        liveness_ok: true,
        mc_consistent: true,
        deterministic: true,
    };

    /// Whether every oracle passed.
    pub fn all_ok(&self) -> bool {
        self.count_spread_ok
            && self.token_discipline_ok
            && self.outcome_valid
            && self.safety_ok
            && self.liveness_ok
            && self.mc_consistent
            && self.deterministic
    }

    /// Number of failed oracles (violation severity).
    pub fn failed(&self) -> u32 {
        [
            self.count_spread_ok,
            self.token_discipline_ok,
            self.outcome_valid,
            self.safety_ok,
            self.liveness_ok,
            self.mc_consistent,
            self.deterministic,
        ]
        .iter()
        .filter(|&&ok| !ok)
        .count() as u32
    }
}

/// Full evaluation of one schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Index of the schedule within the campaign.
    pub index: u64,
    /// The schedule itself (replayable).
    pub schedule: FaultSchedule,
    /// Oracle verdicts.
    pub verdicts: OracleVerdicts,
    /// Exact `Pr[TA]` as a float (for the report; oracles compare exactly).
    pub ta: f64,
    /// Exact `Pr[PA]` as a float.
    pub pa: f64,
    /// Minimum count reached by the deadline (`C` in the liveness bound).
    pub mincount: u32,
    /// Set when the engine rejected the schedule with a typed error
    /// instead of running it (graceful degradation, not a violation).
    pub rejected: Option<String>,
    /// Set when evaluating the schedule **panicked**; the panic was caught
    /// at the per-schedule boundary (mirroring `supervisor::supervise`) and
    /// its message recorded here, so one poisoned schedule degrades to a
    /// typed failure instead of killing the whole campaign.
    pub failed: Option<String>,
}

impl ScheduleResult {
    /// Whether this schedule violated at least one oracle.
    pub fn is_violation(&self) -> bool {
        self.rejected.is_none() && self.failed.is_none() && !self.verdicts.all_ok()
    }
}

/// One line per schedule in the report.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduleSummary {
    /// Schedule index.
    pub index: u64,
    /// Number of faults in the schedule.
    pub faults: usize,
    /// Exact `Pr[TA]`.
    pub ta: f64,
    /// Exact `Pr[PA]`.
    pub pa: f64,
    /// All oracles passed.
    pub ok: bool,
}

/// The JSON-serializable result of a chaos campaign.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ChaosReport {
    /// Number of processes in the graph.
    pub m: usize,
    /// The campaign parameters.
    pub config: CampaignConfig,
    /// Schedules sampled and evaluated.
    pub schedules_tried: u64,
    /// Schedules that violated at least one oracle.
    pub violations: u64,
    /// Schedules whose evaluation panicked (caught per schedule and
    /// recorded as [`ScheduleResult::failed`]).
    pub failures: u64,
    /// The worst schedule: most-severe violator, or (when none violate) the
    /// schedule with the lowest exact `Pr[TA]` — maximum liveness damage.
    pub worst: Option<ScheduleResult>,
    /// `worst.schedule` shrunk by delta debugging to a minimal fault list
    /// that still reproduces (the violation, or the liveness damage).
    pub shrunk: Option<FaultSchedule>,
    /// Oracle verdicts of the shrunk schedule's replay.
    pub shrunk_verdicts: Option<OracleVerdicts>,
    /// Human-readable differences between the worst schedule and its
    /// shrunk counterexample.
    pub shrunk_diff: Vec<String>,
    /// Per-schedule summaries, in campaign order.
    pub summaries: Vec<ScheduleSummary>,
}

impl ChaosReport {
    /// Deterministic single-line JSON.
    pub fn to_json(&self) -> String {
        json::to_string(self).expect("reports are always serializable")
    }

    /// Deterministic pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        json::to_string_pretty(self).expect("reports are always serializable")
    }
}

/// The execution configuration every campaign run uses: all processes get
/// the input; bounded-backoff heartbeats (period 2, ≤ 8 beats, backoff 2).
fn engine_config(graph: &Graph, deadline: Time) -> AsyncConfig {
    AsyncConfig::all_inputs(graph, deadline)
        .with_heartbeat_policy(HeartbeatPolicy::bounded(2, 8, 2))
}

/// The fixed tape set of the reference execution (the counting dynamics of
/// `AsyncS` are value-blind, so any tape works — see `exact`).
fn fixed_tapes(m: usize) -> TapeSet {
    TapeSet::from_tapes(
        (0..m)
            .map(|_| BitTape::from_words(vec![0xFEED_FACE_0123_4567]))
            .collect(),
    )
}

/// Samples one schedule from a seed: up to `max_faults` primitives with
/// windows inside `[0, deadline]`.
pub fn sample_schedule(seed: u64, m: usize, deadline: Time, max_faults: usize) -> FaultSchedule {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_faults = rng.gen_range(0..=max_faults as u64) as usize;
    let faults = (0..n_faults)
        .map(|_| sample_fault(&mut rng, m, deadline))
        .collect();
    FaultSchedule {
        seed,
        base_latency: rng.gen_range(1u64..=3),
        faults,
    }
}

fn sample_window(rng: &mut StdRng, deadline: Time) -> TimeWindow {
    let start = rng.gen_range(0..=deadline);
    if rng.gen_bool(0.5) {
        TimeWindow::from(start)
    } else {
        // Validation rejects empty windows, so sample `end > start`.
        TimeWindow::between(start, rng.gen_range(start + 1..=deadline + 1))
    }
}

fn sample_fault(rng: &mut StdRng, m: usize, deadline: Time) -> FaultPrimitive {
    let pid = |rng: &mut StdRng| ProcessId::new(rng.gen_range(0..m as u32));
    match rng.gen_range(0u32..8) {
        0 => {
            let from = pid(rng);
            let to = loop {
                let to = pid(rng);
                if to != from || m == 1 {
                    break to;
                }
            };
            FaultPrimitive::DropLink {
                from,
                to,
                bidirectional: rng.gen_bool(0.5),
                window: sample_window(rng, deadline),
            }
        }
        1 => FaultPrimitive::DropProb {
            p: rng.gen_range(0.0..0.6),
            window: sample_window(rng, deadline),
        },
        2 => FaultPrimitive::DelayJitter {
            extra_max: rng.gen_range(1u64..=6),
            window: sample_window(rng, deadline),
        },
        3 => FaultPrimitive::Duplicate {
            p: rng.gen_range(0.0..1.0),
            echo_delay: rng.gen_range(1u64..=4),
            window: sample_window(rng, deadline),
        },
        4 => FaultPrimitive::Reorder {
            p: rng.gen_range(0.0..0.8),
            max_swap: rng.gen_range(1u64..=4),
            window: sample_window(rng, deadline),
        },
        5 => {
            let period = rng.gen_range(2u64..=8);
            FaultPrimitive::BurstLoss {
                period,
                burst_len: rng.gen_range(1..=period),
            }
        }
        6 => FaultPrimitive::CrashWindow {
            process: pid(rng),
            window: sample_window(rng, deadline),
        },
        _ => {
            let group_a = (0..m as u32)
                .filter(|_| rng.gen_bool(0.5))
                .map(ProcessId::new)
                .collect();
            FaultPrimitive::Partition {
                group_a,
                window: sample_window(rng, deadline),
            }
        }
    }
}

/// The observability counter charged for one fault primitive.
fn fault_counter(fault: &FaultPrimitive) -> ca_obs::CounterId {
    use ca_obs::CounterId as C;
    match fault {
        FaultPrimitive::DropLink { .. } => C::ChaosFaultsDropLink,
        FaultPrimitive::DropProb { .. } => C::ChaosFaultsDropProb,
        FaultPrimitive::DelayJitter { .. } => C::ChaosFaultsDelayJitter,
        FaultPrimitive::Duplicate { .. } => C::ChaosFaultsDuplicate,
        FaultPrimitive::Reorder { .. } => C::ChaosFaultsReorder,
        FaultPrimitive::BurstLoss { .. } => C::ChaosFaultsBurstLoss,
        FaultPrimitive::CrashWindow { .. } => C::ChaosFaultsCrashWindow,
        FaultPrimitive::Partition { .. } => C::ChaosFaultsPartition,
        FaultPrimitive::ReplayRun { .. } => C::ChaosFaultsReplayRun,
    }
}

/// Evaluates one schedule against all oracles.
pub fn evaluate_schedule(
    graph: &Graph,
    config: &CampaignConfig,
    index: u64,
    schedule: FaultSchedule,
) -> ScheduleResult {
    use ca_obs::{CounterId, HistId, SpanId};
    // One local sink per evaluation, flushed on exit: evaluations run on
    // `parallel_map` workers, and per-schedule attribution is what keeps
    // every counter a thread-count-independent function of the campaign
    // seed.
    let obs = ca_obs::Metrics::new();
    // The panic boundary mirrors `supervisor::supervise`: a poisoned
    // schedule (one whose evaluation panics inside the engine or the
    // courier) becomes a typed `failed` entry instead of tearing down the
    // `parallel_map` worker and with it the whole campaign.
    let result = {
        let _span = obs.span(SpanId::ChaosEvaluate);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            evaluate_schedule_inner(graph, config, index, schedule.clone(), &obs)
        }));
        match caught {
            Ok(result) => result,
            Err(payload) => ScheduleResult {
                index,
                schedule,
                verdicts: OracleVerdicts::ALL_OK,
                ta: 0.0,
                pa: 0.0,
                mincount: 0,
                rejected: None,
                failed: Some(panic_message(payload)),
            },
        }
    };
    obs.inc(CounterId::ChaosSchedules);
    if result.rejected.is_some() {
        obs.inc(CounterId::ChaosSchedulesRejected);
    }
    if result.failed.is_some() {
        obs.inc(CounterId::ChaosSchedulesFailed);
    }
    for fault in &result.schedule.faults {
        obs.inc(fault_counter(fault));
    }
    obs.record(
        HistId::ChaosFaultsPerSchedule,
        result.schedule.faults.len() as u64,
    );
    obs.add(
        CounterId::ChaosOracleFailures,
        u64::from(result.verdicts.failed()),
    );
    obs.flush();
    result
}

fn evaluate_schedule_inner(
    graph: &Graph,
    config: &CampaignConfig,
    index: u64,
    schedule: FaultSchedule,
    obs: &ca_obs::Metrics,
) -> ScheduleResult {
    let rejected = |schedule: FaultSchedule, why: String| ScheduleResult {
        index,
        schedule,
        verdicts: OracleVerdicts::ALL_OK,
        ta: 0.0,
        pa: 0.0,
        mincount: 0,
        rejected: Some(why),
        failed: None,
    };

    let courier = match ChaosCourier::new(schedule.clone()) {
        Ok(c) => c,
        Err(e) => return rejected(schedule, e.to_string()),
    };
    let aconfig = engine_config(graph, config.deadline);
    let proto = AsyncS::new(1.0 / config.t as f64);
    let tapes = fixed_tapes(graph.len());

    // Reference execution (twice, for the determinism oracle).
    let out = match try_run_async(&proto, graph, &aconfig, &tapes, &mut courier.clone()) {
        Ok(out) => out,
        Err(e) => return rejected(schedule, e.to_string()),
    };
    let replay = try_run_async(&proto, graph, &aconfig, &tapes, &mut courier.clone());
    let deterministic = replay.as_ref().is_ok_and(|r| {
        r.outputs == out.outputs
            && r.sent == out.sent
            && r.delivered == out.delivered
            && r.duplicates_suppressed == out.duplicates_suppressed
    });

    // Structural oracles on the final states.
    let oracle_span = obs.span(ca_obs::SpanId::ChaosOracles);
    let counts: Vec<u32> = out.states.iter().map(|s| s.count).collect();
    let mincount = counts.iter().copied().min().unwrap_or(0);
    let maxcount = counts.iter().copied().max().unwrap_or(0);
    let count_spread_ok = maxcount - mincount <= 1;
    let token_discipline_ok = out
        .states
        .iter()
        .zip(&out.outputs)
        .all(|(s, &attacked)| s.token.is_some() || !attacked);

    // Exact probabilities and the paper bounds, in rational arithmetic.
    let exact = async_s_outcomes(graph, &aconfig, &mut courier.clone(), config.t);
    let outcome_valid = exact.is_valid();
    let t_rat = Rational::new(config.t as i128, 1);
    let eps = Rational::new(1, config.t as i128);
    let safety_ok = exact.pa <= eps;
    let liveness_bound = Rational::from(mincount).min(t_rat) / t_rat; // min(1, ε·C)
    let liveness_ok = exact.ta >= liveness_bound;
    drop(oracle_span);

    // Monte Carlo cross-check. The sliced fast path applies whenever the
    // exact TA matches the value-blind mincount formula (see
    // `mc_cross_check_sliced`); otherwise — or when the sliced engine
    // declines the surrogate instance — fall back to the scalar async loop
    // over random tapes.
    let mc_consistent = if config.mc_trials == 0 {
        true
    } else {
        let _mc_span = obs.span(ca_obs::SpanId::ChaosMcCrossCheck);
        match mc_cross_check_sliced(config, index, mincount, &exact.ta) {
            Some(ok) => ok,
            None => {
                let mut est = BernoulliEstimate::new(0, 0);
                for trial in 0..config.mc_trials {
                    let mut rng = StdRng::seed_from_u64(mix64(mix64(config.seed, index), trial));
                    let tapes = TapeSet::random(&mut rng, graph.len(), 64);
                    let run = try_run_async(&proto, graph, &aconfig, &tapes, &mut courier.clone());
                    let total = run.is_ok_and(|r| r.outcome() == Outcome::TotalAttack);
                    est.record(total);
                }
                // z = 4: deliberately loose — the oracle hunts for systematic
                // disagreement between engine and exact computation, not
                // noise.
                est.consistent_with_z(exact.ta.to_f64(), 4.0)
            }
        }
    };

    ScheduleResult {
        index,
        schedule,
        verdicts: OracleVerdicts {
            count_spread_ok,
            token_discipline_ok,
            outcome_valid,
            safety_ok,
            liveness_ok,
            mc_consistent,
            deterministic,
        },
        ta: exact.ta.to_f64(),
        pa: exact.pa.to_f64(),
        mincount,
        rejected: None,
        failed: None,
    }
}

/// Domain separation for the sliced cross-check's trial stream (never
/// collides with the scalar path's `mix64(mix64(seed, index), trial)`
/// seeds, which use small trial numbers).
const MC_SLICED_STREAM: u64 = 0x4D43_534C_4943_4544; // "MCSLICED"

/// The synchronous surrogate of one schedule's Monte Carlo cross-check:
/// Protocol S on a 2-clique good run of `min(mincount, t)` rounds.
///
/// `AsyncS` is value-blind: given the courier, the counting dynamics are
/// fixed, and a random-tape trial is a total attack iff the leader's
/// `rfire` draw lands under `min(1, ε·mincount)` — a Bernoulli whose
/// parameter equals the surrogate's exact TA (`min(1, ε·ML)` with
/// `ML = min(mincount, t)`, both `min(mincount, t)/t`).
fn mc_surrogate(mincount: u32, t: u64) -> (Graph, Run) {
    let ml = u32::try_from(u64::from(mincount).min(t)).expect("t clamp fits u32 via mincount");
    let graph = Graph::complete(2).expect("K2 is constructible");
    let run = Run::good(&graph, ml);
    (graph, run)
}

/// The bit-sliced fast path of the Monte Carlo cross-check oracle: samples
/// the surrogate's Bernoulli through `simulate_sliced`, replacing
/// `mc_trials` full async executions with `mc_trials / 64` passes of the
/// 64-lane engine.
///
/// Returns `None` when the surrogate is not provably equivalent — the exact
/// TA disagrees with the value-blind mincount formula, which is precisely
/// the engine-vs-exact divergence the oracle exists to catch — or when the
/// sliced engine declines the instance; the caller then takes the scalar
/// async path.
fn mc_cross_check_sliced(
    config: &CampaignConfig,
    index: u64,
    mincount: u32,
    exact_ta: &Rational,
) -> Option<bool> {
    let t_rat = Rational::new(config.t as i128, 1);
    let formula = Rational::from(mincount).min(t_rat) / t_rat;
    if *exact_ta != formula {
        return None;
    }
    let (graph, run) = mc_surrogate(mincount, config.t);
    let sampler = FixedRun::new(run);
    let proto = ProtocolS::new(1.0 / config.t as f64);
    // threads: 1 — evaluations already run one-per-`parallel_map`-worker;
    // the report is thread-count independent regardless, by `simulate`'s
    // contract.
    let sim = SimConfig {
        trials: config.mc_trials,
        seed: mix64(mix64(config.seed, index), MC_SLICED_STREAM),
        threads: 1,
    };
    let report = simulate_sliced(&proto, &graph, &sampler, sim)?;
    Some(report.liveness().consistent_with_z(exact_ta.to_f64(), 4.0))
}

/// Shrinks the worst schedule's fault list to a minimal reproduction.
fn shrink_worst(
    graph: &Graph,
    config: &CampaignConfig,
    worst: &ScheduleResult,
) -> (FaultSchedule, OracleVerdicts, Vec<String>) {
    // Re-running MC inside the shrink loop is only needed when the MC
    // oracle is the one that tripped.
    let shrink_config = CampaignConfig {
        mc_trials: if worst.verdicts.mc_consistent {
            0
        } else {
            config.mc_trials
        },
        ..*config
    };
    let obs = ca_obs::Metrics::new();
    let _span = obs.span(ca_obs::SpanId::ChaosShrink);
    let violation = worst.is_violation();
    let reproduces = |faults: &[FaultPrimitive]| {
        obs.inc(ca_obs::CounterId::ChaosShrinkEvals);
        let candidate = FaultSchedule {
            seed: worst.schedule.seed,
            base_latency: worst.schedule.base_latency,
            faults: faults.to_vec(),
        };
        let result = evaluate_schedule(graph, &shrink_config, worst.index, candidate);
        if violation {
            result.is_violation()
        } else {
            result.rejected.is_none() && result.ta <= worst.ta
        }
    };
    let kept = ddmin(&worst.schedule.faults, reproduces);
    let shrunk = FaultSchedule {
        seed: worst.schedule.seed,
        base_latency: worst.schedule.base_latency,
        faults: kept,
    };
    let verdicts = evaluate_schedule(graph, config, worst.index, shrunk.clone()).verdicts;
    let diff = worst.schedule.diff(&shrunk);
    drop(_span);
    obs.flush();
    (shrunk, verdicts, diff)
}

/// Runs a full chaos campaign: sample, evaluate in parallel, pick the worst
/// schedule, shrink it. Deterministic given `config` (independent of the
/// thread count).
pub fn run_campaign(graph: &Graph, config: &CampaignConfig) -> ChaosReport {
    let campaign_obs = ca_obs::Metrics::new();
    let campaign_span = campaign_obs.span(ca_obs::SpanId::ChaosCampaign);
    let results: Vec<ScheduleResult> =
        parallel_map(config.schedules as usize, config.threads, |k| {
            let schedule = sample_schedule(
                mix64(config.seed, k as u64),
                graph.len(),
                config.deadline,
                config.max_faults,
            );
            evaluate_schedule(graph, config, k as u64, schedule)
        });

    let violations = results.iter().filter(|r| r.is_violation()).count() as u64;
    let failures = results.iter().filter(|r| r.failed.is_some()).count() as u64;
    let worst = if violations > 0 {
        // Most-severe violator; ties break to the earliest index.
        results
            .iter()
            .filter(|r| r.is_violation())
            .max_by_key(|r| (r.verdicts.failed(), std::cmp::Reverse(r.index)))
            .cloned()
    } else {
        // No violations: the schedule doing the most liveness damage.
        results
            .iter()
            .filter(|r| r.rejected.is_none() && r.failed.is_none())
            .min_by(|a, b| {
                a.ta.partial_cmp(&b.ta)
                    .expect("exact probabilities are finite")
                    .then(a.index.cmp(&b.index))
            })
            .cloned()
    };

    let (shrunk, shrunk_verdicts, shrunk_diff) = match &worst {
        Some(w) if !w.schedule.faults.is_empty() => {
            let (s, v, d) = shrink_worst(graph, config, w);
            (Some(s), Some(v), d)
        }
        Some(w) => (Some(w.schedule.clone()), Some(w.verdicts), Vec::new()),
        None => (None, None, Vec::new()),
    };
    drop(campaign_span);
    campaign_obs.flush();

    ChaosReport {
        m: graph.len(),
        config: *config,
        schedules_tried: config.schedules,
        violations,
        failures,
        summaries: results
            .iter()
            .map(|r| ScheduleSummary {
                index: r.index,
                faults: r.schedule.faults.len(),
                ta: r.ta,
                pa: r.pa,
                ok: r.rejected.is_none() && r.failed.is_none() && r.verdicts.all_ok(),
            })
            .collect(),
        worst,
        shrunk,
        shrunk_verdicts,
        shrunk_diff,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_schedules_are_valid_and_deterministic() {
        for k in 0..40 {
            let s = sample_schedule(mix64(5, k), 3, 16, 4);
            s.validate().unwrap_or_else(|e| panic!("schedule {k}: {e}"));
            assert_eq!(s, sample_schedule(mix64(5, k), 3, 16, 4));
            assert!(s.faults.len() <= 4);
        }
    }

    #[test]
    fn evaluate_passes_on_the_empty_schedule() {
        let g = Graph::complete(3).unwrap();
        let config = CampaignConfig::new(1, 1, 16, 4);
        let r = evaluate_schedule(&g, &config, 0, FaultSchedule::reliable(1));
        assert!(r.rejected.is_none());
        assert!(r.verdicts.all_ok(), "{:?}", r.verdicts);
        // Generous deadline, reliable delivery: certain total attack.
        assert_eq!(r.ta, 1.0);
        assert_eq!(r.pa, 0.0);
    }

    #[test]
    fn evaluate_rejects_invalid_schedules_without_panicking() {
        let g = Graph::complete(3).unwrap();
        let config = CampaignConfig::new(1, 1, 16, 4);
        let bad = FaultSchedule {
            seed: 0,
            base_latency: 0,
            faults: Vec::new(),
        };
        let r = evaluate_schedule(&g, &config, 0, bad);
        assert!(r.rejected.is_some());
        assert!(!r.is_violation(), "rejection is graceful, not a violation");
    }

    #[test]
    fn campaign_is_deterministic_and_thread_count_independent() {
        let g = Graph::complete(3).unwrap();
        let mut config = CampaignConfig::new(6, 42, 12, 4);
        config.mc_trials = 40;
        let a = run_campaign(&g, &config);
        let b = run_campaign(&g, &config);
        assert_eq!(a, b);
        let serial = CampaignConfig {
            threads: 1,
            ..config
        };
        let c = run_campaign(&g, &serial);
        assert_eq!(a.summaries, c.summaries);
        assert_eq!(a.worst, c.worst);
        assert_eq!(a.shrunk, c.shrunk);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn campaign_finds_no_violations_and_shrinks_the_worst() {
        // The theorems hold, so a healthy engine yields zero violations;
        // the report then carries a liveness-damage counterexample.
        let g = Graph::complete(3).unwrap();
        let mut config = CampaignConfig::new(10, 7, 12, 4);
        config.mc_trials = 30;
        let report = run_campaign(&g, &config);
        assert_eq!(report.violations, 0, "{}", report.to_json_pretty());
        assert_eq!(report.failures, 0);
        assert_eq!(report.schedules_tried, 10);
        assert_eq!(report.summaries.len(), 10);
        let worst = report.worst.as_ref().expect("worst schedule exists");
        let shrunk = report.shrunk.as_ref().expect("shrunk schedule exists");
        assert!(shrunk.faults.len() <= worst.schedule.faults.len());
        // The shrunk schedule reproduces the worst liveness damage.
        let r = evaluate_schedule(&g, &config, worst.index, shrunk.clone());
        assert!(r.ta <= worst.ta);
        // And its replay verdicts are recorded.
        assert!(report.shrunk_verdicts.is_some());
    }

    #[test]
    fn poisoned_schedule_becomes_a_typed_failure() {
        let g = Graph::complete(3).unwrap();
        let mut config = CampaignConfig::new(1, 1, 12, 4);
        config.mc_trials = 0;
        // `extra_max = u64::MAX` passes validation but the jitter's modulus
        // computes `extra_max + 1` — a deterministic arithmetic panic at
        // evaluation time. The per-schedule boundary must convert it into a
        // typed `failed` entry instead of unwinding through the campaign.
        let poisoned = FaultSchedule {
            seed: 3,
            base_latency: 1,
            faults: vec![FaultPrimitive::DelayJitter {
                extra_max: u64::MAX,
                window: TimeWindow::always(),
            }],
        };
        let r = evaluate_schedule(&g, &config, 0, poisoned.clone());
        assert!(r.failed.is_some(), "{r:?}");
        assert!(r.rejected.is_none());
        assert!(!r.is_violation(), "a failure is not an oracle violation");
        assert_eq!(r.schedule, poisoned, "the poisoned schedule is preserved");
        // Evaluation of failures is deterministic: same schedule, same
        // typed failure.
        let again = evaluate_schedule(&g, &config, 0, poisoned);
        assert_eq!(r, again);
    }

    #[test]
    fn sliced_cross_check_matches_the_scalar_oracle_byte_for_byte() {
        // The surrogate instance the campaign routes the MC oracle through
        // must stay pinned to the scalar engine, per `simulate`'s contract.
        for mincount in [1u32, 3, 8, 20] {
            let (g, run) = mc_surrogate(mincount, 8);
            let sampler = FixedRun::new(run);
            let proto = ProtocolS::new(1.0 / 8.0);
            let cfg = SimConfig {
                trials: 200,
                seed: 99,
                threads: 1,
            };
            let sliced = simulate_sliced(&proto, &g, &sampler, cfg)
                .expect("sliced engine must accept the surrogate");
            assert_eq!(sliced, ca_sim::simulate_scalar(&proto, &g, &sampler, cfg));
        }
        // The campaign-facing wrapper agrees with the exact TA on an
        // eligible schedule (value-blind formula holds by construction).
        let config = CampaignConfig::new(1, 7, 12, 8);
        let ta = Rational::new(3, 8);
        assert_eq!(
            mc_cross_check_sliced(&config, 0, 3, &ta),
            Some(true),
            "a healthy Bernoulli sample must be consistent with its own parameter"
        );
        // An exact TA that disagrees with the mincount formula (the very
        // divergence the oracle hunts) forces the scalar fallback.
        assert_eq!(
            mc_cross_check_sliced(&config, 0, 3, &Rational::new(1, 2)),
            None
        );
    }

    #[test]
    fn report_round_trips_through_json() {
        let g = Graph::complete(2).unwrap();
        let mut config = CampaignConfig::new(3, 9, 10, 4);
        config.mc_trials = 0;
        let report = run_campaign(&g, &config);
        let text = report.to_json();
        let back: ChaosReport = json::from_str(&text).expect("report parses");
        assert_eq!(report, back);
        assert_eq!(text, back.to_json(), "serialization is deterministic");
    }
}
