//! Exact outcome probabilities for [`AsyncS`] under deterministic couriers.
//!
//! The counting dynamics (and therefore the entire communication pattern) of
//! `AsyncS` do not depend on the sampled *value* of `rfire` — only on its
//! propagation, which is value-blind. So for any courier whose decisions
//! depend only on send metadata (all of ours), the final counts and token
//! possession are deterministic, and the uniform `rfire ∈ (0, 1/ε]` can be
//! integrated analytically — the asynchronous twin of
//! `ca_analysis::exact::protocol_s_outcomes`.

use crate::courier::Courier;
use crate::engine::{run_async, AsyncConfig};
use crate::protocol::AsyncS;
use ca_analysis::exact::ExactOutcome;
use ca_core::graph::Graph;
use ca_core::rational::Rational;
use ca_core::tape::{BitTape, TapeSet};

/// Exact outcome probabilities of `AsyncS` with `ε = 1/t` under the given
/// (deterministic) courier.
///
/// The courier is consumed for one reference execution; pass a fresh one
/// (couriers with internal RNGs are fine as long as they are seed-fresh —
/// the result is then exact *conditioned on that courier randomness*).
///
/// # Panics
///
/// Panics if `t == 0`.
pub fn async_s_outcomes<C: Courier + ?Sized>(
    graph: &Graph,
    config: &AsyncConfig,
    courier: &mut C,
    t: u64,
) -> ExactOutcome {
    assert!(t > 0, "t = 1/epsilon must be positive");
    let proto = AsyncS::new(1.0 / t as f64);
    // Fixed tape: only the leader draws (64 bits); the value is irrelevant
    // to the counting dynamics.
    let tapes = TapeSet::from_tapes(
        (0..graph.len())
            .map(|_| BitTape::from_words(vec![0xFEED_FACE_0123_4567]))
            .collect(),
    );
    let out = run_async(&proto, graph, config, &tapes, courier);

    let mut mincount: Option<u32> = None;
    let mut max_attackable: u32 = 0;
    for state in &out.states {
        mincount = Some(mincount.map_or(state.count, |v| v.min(state.count)));
        if state.token.is_some() {
            max_attackable = max_attackable.max(state.count);
        }
    }
    let mincount = mincount.expect("at least one process");

    let t_rat = Rational::new(t as i128, 1);
    let clamp = |count: u32| Rational::from(count).min(t_rat) / t_rat;
    let ta = clamp(mincount);
    let some = clamp(max_attackable);
    ExactOutcome {
        ta,
        na: Rational::ONE - some,
        pa: some - ta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::{CutCourier, ReliableCourier, SilenceCourier};
    use crate::engine::run_async;
    use ca_core::outcome::Outcome;
    use ca_core::tape::TapeSet;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_is_valid_and_safe_across_cuts() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 16);
        let t = 4u64;
        let eps = Rational::new(1, t as i128);
        for cut in 1..=17u64 {
            let mut courier = CutCourier::new(1, cut);
            let out = async_s_outcomes(&g, &config, &mut courier, t);
            assert!(out.is_valid(), "invalid outcome at cut {cut}: {out}");
            assert!(out.pa <= eps, "PA {} > ε at cut {cut}", out.pa);
        }
    }

    #[test]
    fn exact_liveness_saturates_with_generous_deadline() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 40);
        let mut courier = ReliableCourier::new(1);
        let out = async_s_outcomes(&g, &config, &mut courier, 8);
        assert_eq!(out.ta, Rational::ONE);
    }

    #[test]
    fn exact_matches_monte_carlo() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 9);
        let t = 8u64;
        let mut courier = ReliableCourier::new(2);
        let exact = async_s_outcomes(&g, &config, &mut courier, t);

        let proto = AsyncS::new(1.0 / t as f64);
        let mut rng = StdRng::seed_from_u64(11);
        let trials = 4000;
        let (mut ta, mut pa) = (0u32, 0u32);
        for _ in 0..trials {
            let tapes = TapeSet::random(&mut rng, 2, 64);
            let mut courier = ReliableCourier::new(2);
            let out = run_async(&proto, &g, &config, &tapes, &mut courier);
            match out.outcome() {
                Outcome::TotalAttack => ta += 1,
                Outcome::PartialAttack => pa += 1,
                Outcome::NoAttack => {}
            }
        }
        let ta_rate = ta as f64 / trials as f64;
        let pa_rate = pa as f64 / trials as f64;
        assert!(
            (ta_rate - exact.ta.to_f64()).abs() < 0.03,
            "TA: exact {} vs MC {ta_rate}",
            exact.ta
        );
        assert!(
            (pa_rate - exact.pa.to_f64()).abs() < 0.03,
            "PA: exact {} vs MC {pa_rate}",
            exact.pa
        );
    }

    #[test]
    fn silence_outcome() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 10);
        let mut courier = SilenceCourier;
        let out = async_s_outcomes(&g, &config, &mut courier, 8);
        // Leader alone can attack (rfire ≤ 1): PA = 1/8, TA = 0.
        assert_eq!(out.ta, Rational::ZERO);
        assert_eq!(out.pa, Rational::new(1, 8));
    }
}
