//! `ca serve`: a sharded coordination service over the chaos layer.
//!
//! This module promotes the per-call harness into a long-running service
//! runtime: many concurrent [`AsyncS`] instances, sharded across worker
//! threads, driven by an open- or closed-loop load generator, each instance
//! executed against a shared courier specification (reliable or a
//! [`FaultSchedule`] injected mid-flight). The robustness machinery is the
//! point:
//!
//! * **Deadline budgets with retry.** Every instance gets a sojourn budget
//!   in virtual ticks. An execution whose gossip never completed (some
//!   process never heard `rfire` — the degraded verdict the engine's
//!   bounded-heartbeat exhaustion produces) is retried against a fresh coin
//!   stream while budget remains; exhaustion surfaces as a typed
//!   `TimedOut`/`Undecided` count, never a hang.
//! * **Back-pressure with explicit shedding.** Each shard models a
//!   single-server admission queue in virtual time; an arrival that finds
//!   the queue at its bound is *shed* — counted in the report, never
//!   silently dropped and never executed.
//! * **Supervision.** Shards run under [`supervise`]: a panicked shard is
//!   restarted, and a shard that keeps panicking is drained into an
//!   explicit poisoned entry whose instances are all accounted as failed.
//!
//! Determinism contract (same as `ca profile`): the report is a pure
//! function of the configuration — `(scale, seed)` — and byte-identical
//! across thread counts, because shards are the unit of parallel work, each
//! shard is a sequential function of `(config, shard index)`, and all
//! queueing happens in virtual time. Wall-clock fields (`wall_ms`,
//! `instances_per_sec`) stay zero unless timing is explicitly requested.

use crate::chaos::{ChaosCourier, FaultPrimitive, FaultSchedule, TimeWindow};
use crate::courier::{ReliableCourier, Time};
use crate::engine::{try_run_async, AsyncConfig, HeartbeatPolicy};
use crate::protocol::AsyncS;
use crate::supervisor::{supervise, Progress};
use ca_core::error::CaError;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::outcome::OutcomeCounts;
use ca_core::tape::{BitTape, TapeSet};
use ca_obs::{bucket_of, CounterId, HistId, SpanId, BUCKETS};
use ca_sim::chaos::mix64;
use serde::json;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Stream tag for arrival-gap coins (decorrelates them from tape seeds).
const ARRIVAL_STREAM: u64 = 0x0A11_4C0D;
/// Stream tag for per-process tape words.
const TAPE_STREAM: u64 = 0x7A9E;

/// How instances arrive at their shard's admission queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Arrival {
    /// Open loop: arrivals keep coming regardless of completions, with
    /// deterministic pseudo-random gaps uniform in `0..=2·mean_gap` ticks
    /// (so the mean inter-arrival gap is `mean_gap`). Overload is possible —
    /// this is the mode that exercises shedding.
    Open {
        /// Mean inter-arrival gap in virtual ticks.
        mean_gap: Time,
    },
    /// Closed loop: the next instance arrives exactly when the previous one
    /// leaves the shard, so the queue never builds and nothing is shed.
    Closed,
}

/// The courier every instance runs against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CourierSpec {
    /// Reliable delivery at a fixed latency.
    Reliable {
        /// Delivery latency in ticks (≥ 1).
        latency: Time,
    },
    /// A fault schedule, re-seeded per instance attempt so retries see
    /// fresh fault coins while the fault *structure* stays fixed.
    Chaos {
        /// The injected schedule.
        schedule: FaultSchedule,
    },
}

/// Configuration of one service run.
///
/// Everything except `threads`, `timed`, `stall_warn_ms`, and the
/// `inject_panic_*` test hooks is part of the report's parameter echo and
/// of the determinism contract.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeConfig {
    /// Processes per instance (the graph is `K_m`).
    pub m: usize,
    /// `t = 1/ε`: the agreement parameter's reciprocal.
    pub t: u64,
    /// Per-instance engine deadline `T` in ticks.
    pub deadline: Time,
    /// Retransmission policy of every instance (bounded policies are what
    /// keep a hostile schedule from hanging an instance).
    pub heartbeat: HeartbeatPolicy,
    /// Total instances offered to the service.
    pub instances: u64,
    /// Shards (instance `i` goes to shard `i mod shards`). Part of the
    /// workload shape: changing it changes per-shard queues.
    pub shards: usize,
    /// Admission-queue bound per shard, counting the instance in service.
    /// An arrival that finds the queue full is shed.
    pub queue_bound: usize,
    /// Per-instance sojourn budget in virtual ticks (queue wait + service
    /// across all attempts). Exceeding it is a timeout.
    pub budget: Time,
    /// Extra execution attempts allowed per instance after the first.
    pub retries: u32,
    /// The load-generation mode.
    pub arrival: Arrival,
    /// The courier specification shared by all instances.
    pub courier: CourierSpec,
    /// Master seed: arrivals, tapes, and per-attempt fault coins all derive
    /// from it.
    pub seed: u64,
    /// Worker threads (0 = available parallelism, honoring `CA_THREADS`).
    /// The report is independent of this.
    pub threads: usize,
    /// Record wall-clock throughput in the report (breaks byte-stability
    /// across machines; off for golden comparisons).
    pub timed: bool,
    /// Stall-watchdog window in wall-clock milliseconds (`None` disables).
    /// Advisory only: stalls are warned about on stderr, never reported.
    pub stall_warn_ms: Option<u64>,
    /// Test hook: make this shard panic at the start of an execution
    /// attempt, to exercise the supervisor's restart path.
    pub inject_panic_shard: Option<usize>,
    /// Test hook: how many leading shard attempts the injected panic kills
    /// (1 = first attempt panics, restart succeeds; 2 = shard is poisoned).
    pub inject_panic_attempts: u32,
}

impl ServeConfig {
    /// A small config with sane defaults: reliable courier, closed loop,
    /// generous budget. Callers override fields for their scenario.
    pub fn new(m: usize, t: u64, instances: u64, seed: u64) -> Self {
        ServeConfig {
            m,
            t,
            deadline: 30,
            heartbeat: HeartbeatPolicy::bounded(2, 6, 2),
            instances,
            shards: 4,
            queue_bound: 8,
            budget: 64,
            retries: 1,
            arrival: Arrival::Closed,
            courier: CourierSpec::Reliable { latency: 1 },
            seed,
            threads: 0,
            timed: false,
            stall_warn_ms: Some(5_000),
            inject_panic_shard: None,
            inject_panic_attempts: 0,
        }
    }

    /// The smoke-scale scenario `ca serve --smoke` runs: `K_3`, ε = 1/8,
    /// 480 instances over 8 shards, open-loop load faster than the service
    /// rate, and a fault schedule combining probabilistic loss, jitter, a
    /// crash window, and periodic burst outages — sized so the report shows
    /// every degradation mode (shed, timeout/undecided, retries) while most
    /// instances still decide.
    pub fn smoke(seed: u64) -> Self {
        let schedule = FaultSchedule {
            seed: 0x00C0_FFEE,
            base_latency: 1,
            faults: vec![
                FaultPrimitive::DropProb {
                    p: 0.3,
                    window: TimeWindow::always(),
                },
                FaultPrimitive::DelayJitter {
                    extra_max: 3,
                    window: TimeWindow::always(),
                },
                FaultPrimitive::CrashWindow {
                    process: ProcessId::new(1),
                    window: TimeWindow::between(4, 10),
                },
                FaultPrimitive::BurstLoss {
                    period: 16,
                    burst_len: 2,
                },
            ],
        };
        ServeConfig {
            deadline: 24,
            shards: 8,
            queue_bound: 3,
            budget: 72,
            arrival: Arrival::Open { mean_gap: 18 },
            courier: CourierSpec::Chaos { schedule },
            ..ServeConfig::new(3, 8, 480, seed)
        }
    }

    /// Typed validation of the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::MalformedConfig`] on any out-of-range parameter
    /// or invalid embedded fault schedule.
    pub fn validate(&self) -> Result<(), CaError> {
        if self.m < 2 {
            return Err(CaError::malformed("serve needs at least 2 processes"));
        }
        if self.t == 0 {
            return Err(CaError::malformed("t = 1/epsilon must be at least 1"));
        }
        if self.deadline == 0 {
            return Err(CaError::malformed("deadline must be at least 1 tick"));
        }
        if self.instances == 0 {
            return Err(CaError::malformed("at least one instance is required"));
        }
        if self.shards == 0 {
            return Err(CaError::malformed("at least one shard is required"));
        }
        if self.queue_bound == 0 {
            return Err(CaError::malformed("queue_bound must be at least 1"));
        }
        if self.budget == 0 {
            return Err(CaError::malformed("budget must be at least 1 tick"));
        }
        if self.heartbeat.period == 0 || self.heartbeat.backoff == 0 {
            return Err(CaError::malformed("invalid heartbeat policy"));
        }
        match &self.courier {
            CourierSpec::Reliable { latency } if *latency == 0 => {
                Err(CaError::malformed("latency must be at least 1 tick"))
            }
            CourierSpec::Reliable { .. } => Ok(()),
            CourierSpec::Chaos { schedule } => schedule.validate(),
        }
    }

    /// The report's parameter echo: the deterministic subset of the config.
    fn params(&self) -> ServeParams {
        ServeParams {
            m: self.m,
            t: self.t,
            deadline: self.deadline,
            heartbeat: self.heartbeat.clone(),
            instances: self.instances,
            shards: self.shards,
            queue_bound: self.queue_bound,
            budget: self.budget,
            retries: self.retries,
            arrival: self.arrival,
            courier: self.courier.clone(),
            seed: self.seed,
        }
    }

    /// Number of instances owned by one shard.
    fn shard_instances(&self, shard: usize) -> u64 {
        let shards = self.shards as u64;
        let shard = shard as u64;
        if shard >= self.instances % shards {
            self.instances / shards
        } else {
            self.instances / shards + 1
        }
    }
}

/// The deterministic parameters echoed into a [`ServeReport`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeParams {
    /// Processes per instance.
    pub m: usize,
    /// `t = 1/ε`.
    pub t: u64,
    /// Per-instance engine deadline.
    pub deadline: Time,
    /// Retransmission policy.
    pub heartbeat: HeartbeatPolicy,
    /// Total instances offered.
    pub instances: u64,
    /// Shard count.
    pub shards: usize,
    /// Per-shard admission-queue bound.
    pub queue_bound: usize,
    /// Per-instance sojourn budget.
    pub budget: Time,
    /// Retry allowance per instance.
    pub retries: u32,
    /// Load-generation mode.
    pub arrival: Arrival,
    /// Courier specification.
    pub courier: CourierSpec,
    /// Master seed.
    pub seed: u64,
}

/// One bucket of a sparse log2 histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Bucket {
    /// Bucket index: the bit length of the values it holds (0 = the exact
    /// value 0, 64 = `≥ 2^63`).
    pub log2: u32,
    /// Samples in the bucket.
    pub count: u64,
}

/// A sparse, serializable log2 histogram (same bucketing as `ca-obs`).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Log2Hist {
    /// Number of samples.
    pub count: u64,
    /// Sum of sampled values.
    pub sum: u64,
    /// Minimum sampled value (0 when empty).
    pub min: u64,
    /// Maximum sampled value (0 when empty).
    pub max: u64,
    /// Nonzero buckets, ascending by `log2`.
    pub buckets: Vec<Log2Bucket>,
}

impl Log2Hist {
    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Hist) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        // Merge via the dense form: both inputs are sparse over the same
        // fixed bucket space, so this is exact and keeps the output sorted.
        let mut dense = [0u64; BUCKETS];
        for bucket in self.buckets.iter().chain(&other.buckets) {
            dense[bucket.log2 as usize] += bucket.count;
        }
        self.buckets = dense
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(log2, &count)| Log2Bucket {
                log2: log2 as u32,
                count,
            })
            .collect();
    }

    /// An upper bound on the `pct`-th percentile (0–100): the largest value
    /// the containing log2 bucket can hold. 0 when empty.
    pub fn percentile_upper(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (pct * self.count).div_ceil(100).max(1);
        let mut seen = 0u64;
        for bucket in &self.buckets {
            seen += bucket.count;
            if seen >= rank {
                return match bucket.log2 {
                    0 => 0,
                    b if b >= 64 => u64::MAX,
                    b => (1u64 << b) - 1,
                };
            }
        }
        self.max
    }
}

/// Dense log2 accumulator used while a shard runs; serialized sparsely.
struct HistAcc {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; BUCKETS],
}

impl HistAcc {
    fn new() -> Self {
        HistAcc {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; BUCKETS],
        }
    }

    fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
    }

    fn sparse(&self) -> Log2Hist {
        Log2Hist {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(log2, &count)| Log2Bucket {
                    log2: log2 as u32,
                    count,
                })
                .collect(),
        }
    }
}

/// Per-shard aggregate of one service run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardStats {
    /// Instances that arrived at this shard (admitted or shed).
    pub instances: u64,
    /// Arrivals shed by back-pressure (never executed, always counted).
    pub shed: u64,
    /// Instances that decided within budget (`= verdicts` total).
    pub decided: u64,
    /// Instances whose sojourn exceeded the budget.
    pub timed_out: u64,
    /// Instances whose gossip never completed within the retry allowance.
    pub undecided: u64,
    /// Instances that ended in a typed engine error, or were drained from
    /// this shard after the supervisor gave up on it.
    pub failed: u64,
    /// Execution attempts beyond each instance's first.
    pub retries: u64,
    /// Total execution attempts.
    pub attempts: u64,
    /// Messages sent across all execution attempts.
    pub sent: u64,
    /// Messages delivered across all execution attempts.
    pub delivered: u64,
    /// Verdict tally of decided instances.
    pub verdicts: OutcomeCounts,
    /// Sojourn (queue wait + service) of decided instances, ticks.
    pub decision_ticks: Log2Hist,
    /// Queue wait of admitted instances, ticks.
    pub queue_wait_ticks: Log2Hist,
    /// Virtual time at which this shard went idle.
    pub makespan: u64,
    /// Supervisor restarts performed on this shard.
    pub restarts: u32,
    /// Whether the supervisor drained the shard after repeated panics
    /// (its instances are all counted in `failed`).
    pub poisoned: bool,
    /// Message of the last panic observed on this shard, if any.
    pub panic: Option<String>,
}

/// Run-level totals of a [`ServeReport`].
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ServeTotals {
    /// Instances offered across all shards.
    pub instances: u64,
    /// Instances shed by back-pressure.
    pub shed: u64,
    /// Instances decided within budget.
    pub decided: u64,
    /// Instances that exceeded their sojourn budget.
    pub timed_out: u64,
    /// Instances whose gossip never completed.
    pub undecided: u64,
    /// Instances that failed (typed errors plus drained shards).
    pub failed: u64,
    /// Retry attempts.
    pub retries: u64,
    /// Total execution attempts.
    pub attempts: u64,
    /// Messages sent.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Verdict tally of decided instances (the PA/TA/NA split).
    pub verdicts: OutcomeCounts,
    /// Sojourn histogram of decided instances, ticks.
    pub decision_ticks: Log2Hist,
    /// Queue-wait histogram of admitted instances, ticks.
    pub queue_wait_ticks: Log2Hist,
    /// Upper bound on the 99th-percentile decision sojourn, ticks.
    pub p99_decision_ticks: u64,
    /// Virtual time at which the slowest shard went idle.
    pub virtual_makespan: u64,
    /// Decided instances per 1000 virtual ticks of makespan.
    pub decided_per_kticks: f64,
    /// Supervisor restarts across all shards.
    pub shard_restarts: u64,
    /// Shards drained after repeated panics.
    pub shards_poisoned: u64,
    /// Wall-clock duration, milliseconds (0 unless timing was requested).
    pub wall_ms: u64,
    /// Offered instances per wall-clock second (0 unless timing was
    /// requested).
    pub instances_per_sec: f64,
}

/// The byte-stable JSON report of one service run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Report schema version.
    pub schema: u32,
    /// The deterministic parameters the run used.
    pub params: ServeParams,
    /// Run-level totals.
    pub totals: ServeTotals,
    /// Per-shard aggregates, in shard index order.
    pub shards: Vec<ShardStats>,
}

impl ServeReport {
    /// Deterministic single-line JSON.
    pub fn to_json(&self) -> String {
        json::to_string(self).expect("reports are always serializable")
    }

    /// Deterministic pretty-printed JSON.
    pub fn to_json_pretty(&self) -> String {
        json::to_string_pretty(self).expect("reports are always serializable")
    }

    /// Parses a report from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`CaError::MalformedConfig`] on parse errors.
    pub fn from_json(text: &str) -> Result<Self, CaError> {
        json::from_str(text).map_err(|e| CaError::malformed(format!("bad serve report JSON: {e}")))
    }
}

/// How one admitted instance left the service.
enum Resolution {
    Decided(ca_core::outcome::Outcome),
    TimedOut,
    Undecided,
    Failed,
}

/// Runs one shard to completion: a pure, sequential function of
/// `(config, shard)` — this is what makes the roll-up thread-count
/// independent.
fn run_shard(
    graph: &Graph,
    config: &ServeConfig,
    shard: usize,
    attempt: u32,
    progress: &Progress,
) -> ShardStats {
    if config.inject_panic_shard == Some(shard) && attempt < config.inject_panic_attempts {
        panic!("injected fault: shard {shard} attempt {attempt}");
    }

    // One local observability sink per shard attempt, flushed only on
    // success: a panicked attempt's partial records die with its sink, so
    // restarts never double count.
    let obs = ca_obs::Metrics::new();
    let shard_span = obs.span(SpanId::ServeShard);

    let proto = AsyncS::new(1.0 / config.t as f64);
    let aconfig = AsyncConfig::all_inputs(graph, config.deadline)
        .with_heartbeat_policy(config.heartbeat.clone());

    let mut stats = ShardStats::default();
    let mut decision_hist = HistAcc::new();
    let mut wait_hist = HistAcc::new();
    // The single-server queue in virtual time: completion times of admitted
    // instances that may still be in the system.
    let mut ends: VecDeque<u64> = VecDeque::new();
    let mut clock: u64 = 0; // when the server frees
    let mut arrive: u64 = 0;

    let mut instance = shard as u64;
    while instance < config.instances {
        match config.arrival {
            Arrival::Open { mean_gap } => {
                let gap = mix64(mix64(config.seed, ARRIVAL_STREAM), instance) % (2 * mean_gap + 1);
                arrive = arrive.saturating_add(gap);
            }
            Arrival::Closed => arrive = clock,
        }
        stats.instances += 1;
        obs.inc(CounterId::ServeInstances);
        stats.makespan = stats.makespan.max(arrive);

        while ends.front().is_some_and(|&e| e <= arrive) {
            ends.pop_front();
        }
        if ends.len() >= config.queue_bound {
            // Back-pressure: the admission queue is full. Shed — counted,
            // never executed.
            stats.shed += 1;
            obs.inc(CounterId::ServeShed);
        } else {
            let start = arrive.max(clock);
            let wait = start - arrive;
            wait_hist.record(wait);
            obs.record(HistId::ServeQueueWaitTicks, wait);
            let mut spent = wait;
            let mut service: u64 = 0;

            let resolution = if spent >= config.budget {
                // The budget ran out while the instance sat in the queue:
                // it times out at the head of the queue without service.
                Resolution::TimedOut
            } else {
                run_instance(
                    &proto,
                    graph,
                    &aconfig,
                    config,
                    instance,
                    &mut spent,
                    &mut service,
                    &mut stats,
                    &obs,
                )
            };
            match resolution {
                Resolution::Decided(outcome) => {
                    stats.decided += 1;
                    stats.verdicts.record(outcome);
                    decision_hist.record(spent);
                    obs.record(HistId::ServeDecisionTicks, spent);
                }
                Resolution::TimedOut => {
                    stats.timed_out += 1;
                    obs.inc(CounterId::ServeTimedOut);
                }
                Resolution::Undecided => {
                    stats.undecided += 1;
                    obs.inc(CounterId::ServeUndecided);
                }
                Resolution::Failed => {
                    stats.failed += 1;
                    obs.inc(CounterId::ServeFailed);
                }
            }
            let end = start + service;
            clock = end;
            ends.push_back(end);
            stats.makespan = stats.makespan.max(end);
        }

        progress.tick();
        instance += config.shards as u64;
    }

    stats.decision_ticks = decision_hist.sparse();
    stats.queue_wait_ticks = wait_hist.sparse();
    drop(shard_span);
    obs.flush();
    stats
}

/// Executes one admitted instance's attempt loop.
#[allow(clippy::too_many_arguments)]
fn run_instance(
    proto: &AsyncS,
    graph: &Graph,
    aconfig: &AsyncConfig,
    config: &ServeConfig,
    instance: u64,
    spent: &mut u64,
    service: &mut u64,
    stats: &mut ShardStats,
    obs: &ca_obs::Metrics,
) -> Resolution {
    for attempt in 0..=config.retries {
        if attempt > 0 {
            stats.retries += 1;
            obs.inc(CounterId::ServeRetries);
        }
        stats.attempts += 1;
        let instance_span = obs.span(SpanId::ServeInstance);

        // Fresh coins per attempt: tapes and fault decisions both derive
        // from (seed, instance, attempt), so a retry is a genuinely new
        // execution of the same workload item.
        let iseed = mix64(mix64(config.seed, instance), u64::from(attempt));
        let tapes = TapeSet::from_tapes(
            graph
                .vertices()
                .map(|p| {
                    BitTape::from_words(vec![mix64(
                        iseed,
                        TAPE_STREAM ^ u64::from(p.index() as u32),
                    )])
                })
                .collect(),
        );
        let result = match &config.courier {
            CourierSpec::Reliable { latency } => {
                let mut courier = ReliableCourier::new(*latency);
                try_run_async(proto, graph, aconfig, &tapes, &mut courier)
            }
            CourierSpec::Chaos { schedule } => {
                let mut reseeded = schedule.clone();
                reseeded.seed = mix64(schedule.seed, iseed);
                let mut courier =
                    ChaosCourier::new(reseeded).expect("schedule validated by run_serve");
                try_run_async(proto, graph, aconfig, &tapes, &mut courier)
            }
        };
        drop(instance_span);

        match result {
            Err(_) => {
                if attempt < config.retries && *spent < config.budget {
                    continue;
                }
                return Resolution::Failed;
            }
            Ok(out) => {
                let latency = out.last_event_at.max(1);
                *spent += latency;
                *service += latency;
                stats.sent += out.sent;
                stats.delivered += out.delivered;
                // Degraded verdict: some process never heard rfire, so the
                // gossip conversation is incomplete (the shape heartbeat
                // exhaustion under faults produces).
                let undecided = out.states.iter().any(|s| s.token.is_none());
                if *spent > config.budget {
                    return Resolution::TimedOut;
                }
                if undecided {
                    if attempt < config.retries && *spent < config.budget {
                        continue;
                    }
                    return Resolution::Undecided;
                }
                return Resolution::Decided(out.outcome());
            }
        }
    }
    unreachable!("the attempt loop always resolves on its last iteration")
}

/// The drained placeholder for a shard the supervisor gave up on: every
/// instance it owned is accounted as failed — nothing silently disappears.
fn poisoned_stats(
    config: &ServeConfig,
    shard: usize,
    restarts: u32,
    panic: Option<String>,
) -> ShardStats {
    let owned = config.shard_instances(shard);
    ShardStats {
        instances: owned,
        failed: owned,
        restarts,
        poisoned: true,
        panic,
        ..ShardStats::default()
    }
}

/// Runs the service: load generation, sharded execution under supervision,
/// and the aggregate roll-up.
///
/// The returned report is byte-stable: identical for identical
/// deterministic parameters ([`ServeConfig::validate`] / [`ServeParams`])
/// whatever the thread count, unless `timed` is set.
///
/// # Errors
///
/// Returns [`CaError::MalformedConfig`] (or a model error) if the
/// configuration is invalid.
pub fn run_serve(config: &ServeConfig) -> Result<ServeReport, CaError> {
    config.validate()?;
    let graph = Graph::complete(config.m)?;
    let started = std::time::Instant::now();

    let run_obs = ca_obs::Metrics::new();
    let run_span = run_obs.span(SpanId::ServeRun);
    let outcome = supervise(
        config.shards,
        config.threads,
        2,
        config.stall_warn_ms.map(std::time::Duration::from_millis),
        |shard, attempt, progress| run_shard(&graph, config, shard, attempt, progress),
    );
    drop(run_span);

    let mut shards: Vec<ShardStats> = Vec::with_capacity(config.shards);
    for shard_run in outcome.shards {
        match shard_run.result {
            Some(mut stats) => {
                stats.restarts = shard_run.restarts;
                stats.panic = shard_run.panic;
                shards.push(stats);
            }
            None => {
                let stats =
                    poisoned_stats(config, shard_run.shard, shard_run.restarts, shard_run.panic);
                // The drained shard's per-attempt sink died unflushed;
                // account its instances at the run level so the obs
                // invariant (instances = outcomes) survives poisoning.
                run_obs.add(CounterId::ServeInstances, stats.instances);
                run_obs.add(CounterId::ServeFailed, stats.failed);
                shards.push(stats);
            }
        }
    }

    let mut totals = ServeTotals::default();
    for stats in &shards {
        totals.instances += stats.instances;
        totals.shed += stats.shed;
        totals.decided += stats.decided;
        totals.timed_out += stats.timed_out;
        totals.undecided += stats.undecided;
        totals.failed += stats.failed;
        totals.retries += stats.retries;
        totals.attempts += stats.attempts;
        totals.sent += stats.sent;
        totals.delivered += stats.delivered;
        totals.verdicts.merge(&stats.verdicts);
        totals.decision_ticks.merge(&stats.decision_ticks);
        totals.queue_wait_ticks.merge(&stats.queue_wait_ticks);
        totals.virtual_makespan = totals.virtual_makespan.max(stats.makespan);
        totals.shard_restarts += u64::from(stats.restarts);
        totals.shards_poisoned += u64::from(stats.poisoned);
    }
    totals.p99_decision_ticks = totals.decision_ticks.percentile_upper(99);
    totals.decided_per_kticks = if totals.virtual_makespan == 0 {
        0.0
    } else {
        totals.decided as f64 * 1000.0 / totals.virtual_makespan as f64
    };
    debug_assert_eq!(
        totals.instances,
        totals.shed + totals.decided + totals.timed_out + totals.undecided + totals.failed,
        "shed-load accounting: every offered instance has exactly one outcome"
    );
    if config.timed {
        let elapsed = started.elapsed();
        totals.wall_ms = elapsed.as_millis() as u64;
        totals.instances_per_sec = if elapsed.as_secs_f64() > 0.0 {
            totals.instances as f64 / elapsed.as_secs_f64()
        } else {
            0.0
        };
    }

    run_obs.add(CounterId::ServeShardRestarts, totals.shard_restarts);
    run_obs.flush();

    Ok(ServeReport {
        schema: 1,
        params: config.params(),
        totals,
        shards,
    })
}

/// Compares a fresh report against a baseline, mirroring
/// `ca bench --compare` / `ca profile --compare`.
///
/// Stable *counters* must match exactly; *latency* metrics (the decision
/// histogram and its percentiles) may drift, gated by `p99_budget_pct`: the
/// new p99 decision sojourn may exceed the old by at most that percentage.
/// Returns human-readable drift messages; empty means the gate passes.
pub fn compare_reports(old: &ServeReport, new: &ServeReport, p99_budget_pct: u64) -> Vec<String> {
    let mut drift = Vec::new();
    if old.schema != new.schema {
        drift.push(format!("schema: {} -> {}", old.schema, new.schema));
    }
    if old.params != new.params {
        drift.push("params differ: baselines only compare like-for-like runs".to_owned());
    }
    let counters = [
        ("instances", old.totals.instances, new.totals.instances),
        ("shed", old.totals.shed, new.totals.shed),
        ("decided", old.totals.decided, new.totals.decided),
        ("timed_out", old.totals.timed_out, new.totals.timed_out),
        ("undecided", old.totals.undecided, new.totals.undecided),
        ("failed", old.totals.failed, new.totals.failed),
        ("retries", old.totals.retries, new.totals.retries),
        ("attempts", old.totals.attempts, new.totals.attempts),
        ("sent", old.totals.sent, new.totals.sent),
        ("delivered", old.totals.delivered, new.totals.delivered),
        (
            "verdicts.total_attack",
            old.totals.verdicts.total_attack,
            new.totals.verdicts.total_attack,
        ),
        (
            "verdicts.no_attack",
            old.totals.verdicts.no_attack,
            new.totals.verdicts.no_attack,
        ),
        (
            "verdicts.partial_attack",
            old.totals.verdicts.partial_attack,
            new.totals.verdicts.partial_attack,
        ),
        (
            "shard_restarts",
            old.totals.shard_restarts,
            new.totals.shard_restarts,
        ),
        (
            "shards_poisoned",
            old.totals.shards_poisoned,
            new.totals.shards_poisoned,
        ),
    ];
    for (name, old_v, new_v) in counters {
        if old_v != new_v {
            drift.push(format!("{name}: {old_v} -> {new_v}"));
        }
    }
    let (old_p99, new_p99) = (old.totals.p99_decision_ticks, new.totals.p99_decision_ticks);
    if new_p99.saturating_mul(100) > old_p99.saturating_mul(100 + p99_budget_pct) {
        drift.push(format!(
            "p99 decision sojourn regressed past the {p99_budget_pct}% budget: \
             {old_p99} -> {new_p99} ticks"
        ));
    }
    drift
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke() -> ServeConfig {
        let mut config = ServeConfig::smoke(7);
        config.stall_warn_ms = None;
        config
    }

    fn accounting_holds(report: &ServeReport) {
        let t = &report.totals;
        assert_eq!(
            t.instances,
            t.shed + t.decided + t.timed_out + t.undecided + t.failed,
            "every instance has exactly one outcome"
        );
        for (k, s) in report.shards.iter().enumerate() {
            assert_eq!(
                s.instances,
                s.shed + s.decided + s.timed_out + s.undecided + s.failed,
                "shard {k} accounting"
            );
        }
        assert_eq!(t.decided, t.verdicts.total());
        assert_eq!(t.decision_ticks.count, t.decided);
        assert!(t.delivered <= t.sent);
    }

    #[test]
    fn smoke_run_degrades_gracefully_and_accounts_for_everything() {
        let report = run_serve(&smoke()).expect("smoke config is valid");
        accounting_holds(&report);
        let t = &report.totals;
        assert_eq!(t.instances, 480);
        // The acceptance criterion: injected faults and overload must
        // surface as explicit degradation, not hangs — and most of the
        // service still works.
        assert!(t.shed > 0, "open-loop overload must shed: {t:?}");
        assert!(
            t.timed_out + t.undecided > 0,
            "faults must cost some instances their budget: {t:?}"
        );
        assert!(t.decided > t.instances / 2, "most instances decide: {t:?}");
        assert!(t.retries > 0, "chaos must force retries: {t:?}");
        assert!(t.p99_decision_ticks > 0);
        assert_eq!(t.shard_restarts, 0);
        assert_eq!(t.wall_ms, 0, "untimed reports carry no wall clock");
    }

    #[test]
    fn report_is_thread_count_independent_and_deterministic() {
        let mut config = smoke();
        config.instances = 120;
        let reports: Vec<String> = [1usize, 2, 8]
            .into_iter()
            .map(|threads| {
                let mut c = config.clone();
                c.threads = threads;
                run_serve(&c).expect("valid").to_json()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "1 vs 2 threads");
        assert_eq!(reports[0], reports[2], "1 vs 8 threads");
        let again = {
            let mut c = config.clone();
            c.threads = 1;
            run_serve(&c).expect("valid").to_json()
        };
        assert_eq!(reports[0], again, "repeat at the same seed");
    }

    #[test]
    fn closed_loop_reliable_service_sheds_nothing_and_decides_everything() {
        let mut config = ServeConfig::new(3, 4, 64, 11);
        config.stall_warn_ms = None;
        let report = run_serve(&config).expect("valid");
        accounting_holds(&report);
        let t = &report.totals;
        assert_eq!(t.shed, 0, "closed loop cannot overload the queue");
        assert_eq!(t.decided, 64, "reliable courier always completes gossip");
        assert_eq!(t.timed_out + t.undecided + t.failed, 0);
        assert_eq!(t.retries, 0);
        assert_eq!(t.queue_wait_ticks.max, 0, "closed loop never waits");
    }

    #[test]
    fn tiny_budget_times_instances_out_instead_of_hanging() {
        let mut config = ServeConfig::new(3, 4, 32, 13);
        config.stall_warn_ms = None;
        config.budget = 1;
        config.retries = 0;
        let report = run_serve(&config).expect("valid");
        accounting_holds(&report);
        assert_eq!(
            report.totals.timed_out, 32,
            "a 1-tick budget cannot fit any decision"
        );
        assert_eq!(report.totals.decided, 0);
    }

    #[test]
    fn injected_shard_panic_restarts_without_corrupting_the_report() {
        let mut config = smoke();
        config.instances = 120;
        let clean = run_serve(&config).expect("valid");

        let mut faulty = config.clone();
        faulty.inject_panic_shard = Some(3);
        faulty.inject_panic_attempts = 1;
        let recovered = run_serve(&faulty).expect("valid");

        accounting_holds(&recovered);
        assert_eq!(recovered.totals.shard_restarts, 1);
        assert_eq!(recovered.shards[3].restarts, 1);
        assert!(!recovered.shards[3].poisoned);
        // The restart re-ran the deterministic shard body: every functional
        // number matches the clean run exactly.
        assert_eq!(recovered.totals.verdicts, clean.totals.verdicts);
        assert_eq!(recovered.totals.shed, clean.totals.shed);
        assert_eq!(recovered.totals.decision_ticks, clean.totals.decision_ticks);
        let mut clean_shard = clean.shards[3].clone();
        clean_shard.restarts = recovered.shards[3].restarts;
        clean_shard.panic = recovered.shards[3].panic.clone();
        assert_eq!(clean_shard, recovered.shards[3]);
    }

    #[test]
    fn poisoned_shard_is_drained_into_explicit_failures() {
        let mut config = smoke();
        config.instances = 120;
        config.inject_panic_shard = Some(2);
        config.inject_panic_attempts = 2; // both supervised attempts die
        let report = run_serve(&config).expect("valid");
        accounting_holds(&report);
        assert_eq!(report.totals.shards_poisoned, 1);
        assert!(report.shards[2].poisoned);
        assert_eq!(report.shards[2].instances, report.shards[2].failed);
        assert!(report.shards[2].failed > 0, "drained, not dropped");
        assert!(
            report.shards[2]
                .panic
                .as_deref()
                .is_some_and(|p| p.contains("injected fault")),
            "panic message preserved"
        );
        // The other shards are untouched.
        assert!(report.totals.decided > 0);
    }

    #[test]
    fn report_round_trips_through_json() {
        let mut config = smoke();
        config.instances = 48;
        let report = run_serve(&config).expect("valid");
        let text = report.to_json();
        let back = ServeReport::from_json(&text).expect("parses");
        assert_eq!(report, back);
        assert_eq!(text, back.to_json(), "serialization is deterministic");
        assert!(ServeReport::from_json("{").is_err());
    }

    #[test]
    fn compare_gate_passes_identical_and_flags_drift_and_regression() {
        let mut config = smoke();
        config.instances = 48;
        let report = run_serve(&config).expect("valid");
        assert!(compare_reports(&report, &report, 25).is_empty());

        let mut drifted = report.clone();
        drifted.totals.shed += 1;
        let messages = compare_reports(&report, &drifted, 25);
        assert!(
            messages.iter().any(|m| m.starts_with("shed:")),
            "{messages:?}"
        );

        let mut slow = report.clone();
        slow.totals.p99_decision_ticks = report.totals.p99_decision_ticks * 2;
        let messages = compare_reports(&report, &slow, 25);
        assert!(messages.iter().any(|m| m.contains("p99")), "{messages:?}");
        // Within budget: no regression message.
        let mut ok = report.clone();
        ok.totals.p99_decision_ticks = report.totals.p99_decision_ticks + 1;
        assert!(
            compare_reports(&report, &ok, 200).is_empty(),
            "small drift within a generous budget passes"
        );
    }

    #[test]
    fn empty_schedule_serve_equals_reliable_serve() {
        // The PR 1 property lifted to the serve loop: an empty fault
        // schedule must produce identical aggregate verdict counts to the
        // reliable courier at the same latency.
        let mut config = ServeConfig::new(3, 6, 96, 21);
        config.stall_warn_ms = None;
        config.arrival = Arrival::Open { mean_gap: 3 };
        config.courier = CourierSpec::Reliable { latency: 2 };
        let reliable = run_serve(&config).expect("valid");

        let mut chaos = config.clone();
        chaos.courier = CourierSpec::Chaos {
            schedule: FaultSchedule::reliable(2),
        };
        let empty = run_serve(&chaos).expect("valid");

        assert_eq!(reliable.totals.verdicts, empty.totals.verdicts);
        assert_eq!(reliable.totals.shed, empty.totals.shed);
        assert_eq!(reliable.totals.decided, empty.totals.decided);
        assert_eq!(reliable.totals.decision_ticks, empty.totals.decision_ticks);
        assert_eq!(reliable.shards.len(), empty.shards.len());
        for (a, b) in reliable.shards.iter().zip(&empty.shards) {
            assert_eq!(a.verdicts, b.verdicts);
            assert_eq!(a.makespan, b.makespan);
        }
    }

    #[test]
    fn validate_rejects_malformed_configs() {
        let bad = |f: fn(&mut ServeConfig)| {
            let mut c = ServeConfig::new(3, 4, 10, 1);
            f(&mut c);
            run_serve(&c).is_err()
        };
        assert!(bad(|c| c.m = 1));
        assert!(bad(|c| c.t = 0));
        assert!(bad(|c| c.deadline = 0));
        assert!(bad(|c| c.instances = 0));
        assert!(bad(|c| c.shards = 0));
        assert!(bad(|c| c.queue_bound = 0));
        assert!(bad(|c| c.budget = 0));
        assert!(bad(|c| c.courier = CourierSpec::Reliable { latency: 0 }));
        assert!(bad(|c| {
            c.courier = CourierSpec::Chaos {
                schedule: FaultSchedule {
                    seed: 0,
                    base_latency: 0,
                    faults: Vec::new(),
                },
            }
        }));
    }

    #[test]
    fn log2_hist_merge_and_percentile() {
        let mut a = HistAcc::new();
        for v in [0u64, 1, 1, 2, 3, 7] {
            a.record(v);
        }
        let mut b = HistAcc::new();
        for v in [4u64, 100] {
            b.record(v);
        }
        let mut m = a.sparse();
        m.merge(&b.sparse());
        assert_eq!(m.count, 8);
        assert_eq!(m.sum, 118);
        assert_eq!((m.min, m.max), (0, 100));
        assert_eq!(m.buckets.iter().map(|b| b.count).sum::<u64>(), 8);
        // Buckets stay sorted and deduplicated after the merge.
        for pair in m.buckets.windows(2) {
            assert!(pair[0].log2 < pair[1].log2);
        }
        // p50 of 8 samples is the 4th: value 2, bucket log2=2, upper 3.
        assert_eq!(m.percentile_upper(50), 3);
        // p100 lands in 100's bucket (log2 = 7): upper bound 127.
        assert_eq!(m.percentile_upper(100), 127);
        assert_eq!(Log2Hist::default().percentile_upper(99), 0);
        // Merging an empty histogram is a no-op; merging into one copies.
        let mut empty = Log2Hist::default();
        empty.merge(&m);
        assert_eq!(empty, m);
        let snapshot = m.clone();
        m.merge(&Log2Hist::default());
        assert_eq!(m, snapshot);
    }
}
