//! X1 — the asynchronous extension experiment.
//!
//! Section 8: *"While our results are stated in a synchronous model, it
//! seems clear that they can be extended to an asynchronous model."* X1
//! verifies the extension: against cut, slow, and lossy couriers with a hard
//! deadline, the asynchronous Protocol S keeps `U ≤ ε` (exactly, via the
//! asynchronous exact analysis) while its liveness is priced in
//! latency-bounded gossip depth instead of rounds.

use crate::courier::{CutCourier, RandomDropCourier, ReliableCourier};
use crate::engine::{run_async, AsyncConfig};
use crate::exact::async_s_outcomes;
use crate::protocol::AsyncS;
use ca_analysis::experiments::{Experiment, ExperimentResult, Scale};
use ca_analysis::report::{fmt_f64, Table};
use ca_core::graph::Graph;
use ca_core::outcome::Outcome;
use ca_core::rational::Rational;
use ca_core::tape::TapeSet;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// X1: the asynchronous model extension (§8).
#[derive(Clone, Copy, Debug, Default)]
pub struct AsyncExtension;

impl Experiment for AsyncExtension {
    fn id(&self) -> &'static str {
        "X1"
    }

    fn title(&self) -> &'static str {
        "Extension: asynchronous model — U ≤ ε survives, liveness priced in latency (§8)"
    }

    fn run(&self, scale: Scale) -> ExperimentResult {
        let mut table = Table::new([
            "courier",
            "deadline T",
            "exact L (TA)",
            "exact U (PA)",
            "ε",
            "MC disagreement",
        ]);
        let mut passed = true;
        let mut findings = Vec::new();
        let g = Graph::complete(2).expect("graph");
        let t = 6u64;
        let eps = Rational::new(1, t as i128);

        // Arm 1: latency sweep with a reliable courier — liveness is bought
        // with deadline/latency, the asynchronous analogue of rounds.
        let mut liveness_by_latency = Vec::new();
        for latency in [1u64, 2, 4] {
            let config = AsyncConfig::all_inputs(&g, 12);
            let mut courier = ReliableCourier::new(latency);
            let exact = async_s_outcomes(&g, &config, &mut courier, t);
            passed &= exact.is_valid() && exact.pa <= eps;
            liveness_by_latency.push(exact.ta);
            table.push_row([
                format!("reliable, latency {latency}"),
                "12".to_owned(),
                exact.ta.to_string(),
                exact.pa.to_string(),
                eps.to_string(),
                "-".to_owned(),
            ]);
        }
        passed &= liveness_by_latency.windows(2).all(|w| w[0] >= w[1]);

        // Arm 2: cut-courier sweep — the strong adversary's best async move.
        // Exact PA must stay ≤ ε at every cut; record the worst.
        let mut worst_pa = Rational::ZERO;
        for cut in 1..=13u64 {
            let config = AsyncConfig::all_inputs(&g, 12);
            let mut courier = CutCourier::new(1, cut);
            let exact = async_s_outcomes(&g, &config, &mut courier, t);
            passed &= exact.pa <= eps;
            worst_pa = worst_pa.max(exact.pa);
        }
        table.push_row([
            "cut sweep (13 cuts, worst)".to_owned(),
            "12".to_owned(),
            "-".to_owned(),
            worst_pa.to_string(),
            eps.to_string(),
            "-".to_owned(),
        ]);
        passed &= worst_pa == eps; // the bound stays tight asynchronously

        // Arm 3: lossy courier, Monte Carlo — the weak adversary
        // asynchronously. Heartbeats provide the retransmission that the
        // synchronous model's send-every-round gave for free.
        let proto = AsyncS::new(1.0 / t as f64);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xA51);
        let trials = (scale.trials / 4).max(500);
        let (mut ta_n, mut pa_n) = (0u64, 0u64);
        for k in 0..trials {
            let tapes = TapeSet::random(&mut rng, 2, 64);
            let mut courier = RandomDropCourier::new(0.2, 1, 3, scale.seed ^ k);
            let config = AsyncConfig::all_inputs(&g, 30).with_heartbeat(2);
            let out = run_async(&proto, &g, &config, &tapes, &mut courier);
            match out.outcome() {
                Outcome::TotalAttack => ta_n += 1,
                Outcome::PartialAttack => pa_n += 1,
                Outcome::NoAttack => {}
            }
        }
        let pa_rate = pa_n as f64 / trials as f64;
        let ta_rate = ta_n as f64 / trials as f64;
        passed &= pa_rate <= eps.to_f64() + 0.03;
        passed &= ta_rate > 0.9;
        table.push_row([
            "random-drop p=0.2, latency 1..3 (MC)".to_owned(),
            "30".to_owned(),
            fmt_f64(ta_rate),
            fmt_f64(pa_rate),
            eps.to_string(),
            fmt_f64(pa_rate),
        ]);

        findings.push(
            "the safety bound U ≤ ε survives the move to an asynchronous, event-driven model — \
             exactly, for every cut courier, and it remains tight"
                .to_owned(),
        );
        findings.push(
            "liveness is monotone in deadline/latency: the tradeoff is the same, with gossip \
             depth replacing rounds — §8's extension claim, made concrete"
                .to_owned(),
        );

        ExperimentResult {
            id: self.id().to_owned(),
            title: self.title().to_owned(),
            table,
            findings,
            passed,
        }
    }
}

/// The extension experiments contributed by this crate.
pub fn extension_experiments() -> Vec<Box<dyn Experiment>> {
    vec![Box::new(AsyncExtension)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x1_passes() {
        let result = AsyncExtension.run(Scale::quick());
        assert!(result.passed, "{result}");
        assert_eq!(result.table.len(), 5);
    }
}
