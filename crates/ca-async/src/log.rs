//! Event logs: observability for asynchronous executions.
//!
//! [`run_async_logged`] wraps the engine and records every send fate and
//! delivery, producing an [`EventLog`] that can be rendered as a timeline or
//! queried (e.g. for the causal depth of an execution). The log is also the
//! async analogue of a synchronous `Run`: it pins down exactly what the
//! courier did.

use crate::courier::{Courier, Fate, SendEvent, Time};
use crate::engine::{run_async, AsyncConfig, AsyncOutcome, AsyncProtocol};
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::tape::TapeSet;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One logged network event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoggedSend {
    /// The send metadata.
    pub event: SendEvent,
    /// What the courier did with it.
    pub fate: Fate,
}

/// The complete network history of one asynchronous execution.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    sends: Vec<LoggedSend>,
}

impl EventLog {
    /// All logged sends, in send order.
    pub fn sends(&self) -> &[LoggedSend] {
        &self.sends
    }

    /// Number of destroyed messages.
    pub fn destroyed(&self) -> usize {
        self.sends
            .iter()
            .filter(|s| s.fate == Fate::Destroy)
            .count()
    }

    /// Number of delivered messages (scheduled; late ones still count here —
    /// the engine separately drops post-deadline arrivals).
    pub fn scheduled(&self) -> usize {
        self.sends.len() - self.destroyed()
    }

    /// The latest scheduled delivery time, if any message survived.
    pub fn last_delivery(&self) -> Option<Time> {
        self.sends
            .iter()
            .filter_map(|s| match s.fate {
                Fate::Deliver(at) => Some(at),
                Fate::Destroy => None,
            })
            .max()
    }

    /// Renders the log as a per-tick timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "event log: {} sends, {} destroyed",
            self.sends.len(),
            self.destroyed()
        );
        for s in &self.sends {
            let fate = match s.fate {
                Fate::Destroy => "✗ destroyed".to_owned(),
                Fate::Deliver(at) => format!("→ delivered at t{at}"),
            };
            let _ = writeln!(
                out,
                "  t{:<3} {}→{} (#{})  {}",
                s.event.sent_at, s.event.from, s.event.to, s.event.seq, fate
            );
        }
        out
    }
}

/// A courier wrapper that records every decision.
struct Recorder<'a, C: ?Sized> {
    inner: &'a mut C,
    log: EventLog,
}

impl<C: Courier + ?Sized> Courier for Recorder<'_, C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        let fate = self.inner.fate(event);
        self.log.sends.push(LoggedSend { event, fate });
        fate
    }

    fn fates(&mut self, event: SendEvent, out: &mut Vec<Fate>) {
        // Forward to the inner courier's (possibly duplicating) fates hook
        // and log one entry per fate, so duplicated copies are visible.
        let start = out.len();
        self.inner.fates(event, out);
        for &fate in &out[start..] {
            self.log.sends.push(LoggedSend { event, fate });
        }
    }
}

/// Runs the protocol like [`run_async`], additionally returning the full
/// [`EventLog`].
///
/// # Panics
///
/// Panics under the same conditions as [`run_async`].
pub fn run_async_logged<P, C>(
    protocol: &P,
    graph: &Graph,
    config: &AsyncConfig,
    tapes: &TapeSet,
    courier: &mut C,
) -> (AsyncOutcome<P::State>, EventLog)
where
    P: AsyncProtocol,
    C: Courier + ?Sized,
{
    let mut recorder = Recorder {
        inner: courier,
        log: EventLog::default(),
    };
    let outcome = run_async(protocol, graph, config, tapes, &mut recorder);
    (outcome, recorder.log)
}

/// Which processes a particular process causally depends on in a log: the
/// transitive senders whose messages reached it (directly or through
/// intermediaries), the async flows-to relation.
pub fn causal_ancestors(log: &EventLog, target: ProcessId, deadline: Time) -> Vec<ProcessId> {
    // Work backwards over delivered sends ordered by delivery time.
    let mut delivered: Vec<(Time, ProcessId, ProcessId, Time)> = log
        .sends
        .iter()
        .filter_map(|s| match s.fate {
            Fate::Deliver(at) if at <= deadline => {
                Some((at, s.event.from, s.event.to, s.event.sent_at))
            }
            _ => None,
        })
        .collect();
    delivered.sort_by_key(|&(at, ..)| at);

    // influenced_since[p] = earliest time p's state could reflect `target`-relevant info…
    // Simpler backward pass: a process p is an ancestor if some delivered
    // message p→q (sent at s, arriving a ≤ cutoff_q) reaches an ancestor q
    // with cutoff ≥ a; p's own cutoff then extends to s.
    let m = delivered
        .iter()
        .flat_map(|&(_, f, t, _)| [f.index(), t.index()])
        .max()
        .map_or(target.index() + 1, |mx| mx.max(target.index()) + 1);
    let mut cutoff: Vec<Option<Time>> = vec![None; m];
    cutoff[target.index()] = Some(deadline);
    let mut changed = true;
    while changed {
        changed = false;
        for &(at, from, to, sent_at) in delivered.iter().rev() {
            if let Some(c) = cutoff[to.index()] {
                if at <= c {
                    let new = cutoff[from.index()].map_or(sent_at, |old| old.max(sent_at));
                    if cutoff[from.index()] != Some(new) {
                        cutoff[from.index()] = Some(new);
                        changed = true;
                    }
                }
            }
        }
    }
    (0..m)
        .filter(|&p| p != target.index() && cutoff[p].is_some())
        .map(|p| ProcessId::new(p as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::courier::{CutCourier, ReliableCourier};
    use crate::protocol::AsyncS;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tapes(m: usize) -> TapeSet {
        let mut rng = StdRng::seed_from_u64(1);
        TapeSet::random(&mut rng, m, 64)
    }

    #[test]
    fn log_matches_outcome_counters() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 10);
        let proto = AsyncS::new(0.25);
        let mut courier = ReliableCourier::new(1);
        let (out, log) = run_async_logged(&proto, &g, &config, &tapes(2), &mut courier);
        assert_eq!(log.sends().len() as u64, out.sent);
        assert_eq!(log.destroyed(), 0);
        assert!(log.last_delivery().is_some());
        let rendered = log.render();
        assert!(rendered.contains("→ delivered"));
        assert!(!rendered.contains("destroyed at"));
    }

    #[test]
    fn destroyed_counts_under_cut() {
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 12);
        let proto = AsyncS::new(0.25);
        let mut courier = CutCourier::new(1, 4);
        let (out, log) = run_async_logged(&proto, &g, &config, &tapes(2), &mut courier);
        assert!(log.destroyed() > 0);
        assert_eq!(log.scheduled() + log.destroyed(), out.sent as usize);
        assert!(log.render().contains("✗ destroyed"));
    }

    #[test]
    fn causal_ancestors_on_a_line() {
        // Line of 3, reliable: everyone ends up in everyone's causal past.
        let g = Graph::line(3).unwrap();
        let config = AsyncConfig::all_inputs(&g, 12);
        let proto = AsyncS::new(0.25);
        let mut courier = ReliableCourier::new(1);
        let (_, log) = run_async_logged(&proto, &g, &config, &tapes(3), &mut courier);
        let ancestors = causal_ancestors(&log, ProcessId::new(2), 12);
        assert!(ancestors.contains(&ProcessId::new(0)));
        assert!(ancestors.contains(&ProcessId::new(1)));
    }

    #[test]
    fn causal_ancestors_respect_cuts() {
        // Cut everything from t=1 on a K2: the very first sends (t=0) still
        // arrive at t=1? No — CutCourier::new(1, 1) destroys sends at ≥ 1,
        // and t=0 sends are delivered at 1; so P1 heard P0.
        let g = Graph::complete(2).unwrap();
        let config = AsyncConfig::all_inputs(&g, 8);
        let proto = AsyncS::new(0.25);
        let mut courier = CutCourier::new(1, 1);
        let (_, log) = run_async_logged(&proto, &g, &config, &tapes(2), &mut courier);
        let anc1 = causal_ancestors(&log, ProcessId::new(1), 8);
        assert_eq!(anc1, vec![ProcessId::new(0)]);
        // And with total silence there are no ancestors at all.
        let mut silent = crate::courier::SilenceCourier;
        let (_, log) = run_async_logged(&proto, &g, &config, &tapes(2), &mut silent);
        assert!(causal_ancestors(&log, ProcessId::new(1), 8).is_empty());
    }
}
