//! Couriers: the asynchronous adversary.
//!
//! In the synchronous model the adversary is a run — a set of delivered
//! message slots. Asynchronously the adversary decides, per sent message,
//! whether it is destroyed and at what (virtual) time it arrives. Like the
//! paper's strong adversary it sees message *metadata* (sender, receiver,
//! send time, sequence number) but never message contents — so it cannot
//! learn `rfire`.

use ca_core::ids::{ProcessId, Round};
use ca_core::run::Run;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Virtual time (integer ticks).
pub type Time = u64;

/// Metadata of one sent message — all the adversary may see.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendEvent {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Virtual time of the send.
    pub sent_at: Time,
    /// Global sequence number of the send (unique, increasing).
    pub seq: u64,
}

/// The adversary's decision for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fate {
    /// The message is destroyed.
    Destroy,
    /// The message arrives at the given time (must be strictly after the send).
    Deliver(Time),
}

/// An asynchronous adversary: decides the fate of every sent message.
///
/// Implementations may be stateful (adaptive in metadata) but never see
/// message contents.
pub trait Courier {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Decides the fate of one message.
    fn fate(&mut self, event: SendEvent) -> Fate;

    /// Decides *all* fates of one send. The default forwards to
    /// [`Courier::fate`] — exactly one fate per send. Duplicating couriers
    /// override this to push several fates (each scheduled copy is delivered
    /// or destroyed independently; the engine's sequence-number dedup lets
    /// at most one copy through). Pushing nothing is equivalent to
    /// [`Fate::Destroy`].
    fn fates(&mut self, event: SendEvent, out: &mut Vec<Fate>) {
        out.push(self.fate(event));
    }
}

/// Delivers everything with a fixed latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableCourier {
    latency: Time,
}

impl ReliableCourier {
    /// Creates a courier with the given fixed latency (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` (delivery must be after the send).
    pub fn new(latency: Time) -> Self {
        assert!(latency >= 1, "latency must be at least 1 tick");
        ReliableCourier { latency }
    }
}

impl Courier for ReliableCourier {
    fn name(&self) -> &'static str {
        "reliable"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        Fate::Deliver(event.sent_at + self.latency)
    }
}

/// Delivers with fixed latency until a cut time, then destroys everything —
/// the asynchronous analogue of the prefix-cut run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutCourier {
    latency: Time,
    cut_at: Time,
}

impl CutCourier {
    /// Creates a courier that destroys every message sent at or after `cut_at`.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn new(latency: Time, cut_at: Time) -> Self {
        assert!(latency >= 1, "latency must be at least 1 tick");
        CutCourier { latency, cut_at }
    }
}

impl Courier for CutCourier {
    fn name(&self) -> &'static str {
        "cut"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        if event.sent_at >= self.cut_at {
            Fate::Destroy
        } else {
            Fate::Deliver(event.sent_at + self.latency)
        }
    }
}

/// The weak adversary, asynchronously: destroys each message independently
/// with probability `p`, otherwise delivers with latency uniform in
/// `[min_latency, max_latency]`. Deterministic given its seed and the
/// sequence of send events.
#[derive(Clone, Debug)]
pub struct RandomDropCourier {
    p: f64,
    min_latency: Time,
    max_latency: Time,
    rng: StdRng,
}

impl RandomDropCourier {
    /// Creates the courier.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0,1]` or the latency range is empty or starts at 0.
    pub fn new(p: f64, min_latency: Time, max_latency: Time, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        assert!(
            1 <= min_latency && min_latency <= max_latency,
            "latency range must be nonempty and start at ≥ 1"
        );
        RandomDropCourier {
            p,
            min_latency,
            max_latency,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Courier for RandomDropCourier {
    fn name(&self) -> &'static str {
        "random-drop"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        if self.p > 0.0 && self.rng.gen_bool(self.p) {
            Fate::Destroy
        } else {
            let latency = self.rng.gen_range(self.min_latency..=self.max_latency);
            Fate::Deliver(event.sent_at + latency)
        }
    }
}

/// Replays a synchronous [`Run`] as an asynchronous adversary: the send at
/// tick `t` belongs to protocol round `t / ticks_per_round + 1`, and a
/// message is delivered (with fixed latency) iff its `(from, to, round)`
/// slot is in `M(R)`. Sends past the run's horizon map to rounds the run
/// cannot contain and are destroyed — the paper's convention that every
/// message not in `M(R)` dies.
///
/// Each fate query is a single O(1) probe of the run's round-major delivery
/// matrix, so replaying even dense schedules adds no per-message search
/// cost.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunCourier {
    run: Run,
    ticks_per_round: Time,
    latency: Time,
}

impl RunCourier {
    /// Creates the courier.
    ///
    /// # Panics
    ///
    /// Panics if `ticks_per_round == 0` or `latency == 0`.
    pub fn new(run: Run, ticks_per_round: Time, latency: Time) -> Self {
        assert!(ticks_per_round >= 1, "ticks_per_round must be at least 1");
        assert!(latency >= 1, "latency must be at least 1 tick");
        RunCourier {
            run,
            ticks_per_round,
            latency,
        }
    }

    /// The replayed run.
    pub fn run(&self) -> &Run {
        &self.run
    }

    /// The protocol round a send at `t` falls in.
    fn round_at(&self, t: Time) -> Round {
        Round::new(u32::try_from(t / self.ticks_per_round + 1).unwrap_or(u32::MAX))
    }
}

impl Courier for RunCourier {
    fn name(&self) -> &'static str {
        "run-replay"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        if self
            .run
            .delivers(event.from, event.to, self.round_at(event.sent_at))
        {
            Fate::Deliver(event.sent_at + self.latency)
        } else {
            Fate::Destroy
        }
    }
}

/// Destroys every message: the total-silence adversary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SilenceCourier;

impl Courier for SilenceCourier {
    fn name(&self) -> &'static str {
        "silence"
    }

    fn fate(&mut self, _event: SendEvent) -> Fate {
        Fate::Destroy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sent_at: Time, seq: u64) -> SendEvent {
        SendEvent {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            sent_at,
            seq,
        }
    }

    #[test]
    fn reliable_adds_latency() {
        let mut c = ReliableCourier::new(3);
        assert_eq!(c.fate(ev(5, 0)), Fate::Deliver(8));
        assert_eq!(c.name(), "reliable");
    }

    #[test]
    #[should_panic(expected = "at least 1 tick")]
    fn zero_latency_rejected() {
        ReliableCourier::new(0);
    }

    #[test]
    fn cut_destroys_after_cut_time() {
        let mut c = CutCourier::new(1, 10);
        assert_eq!(c.fate(ev(9, 0)), Fate::Deliver(10));
        assert_eq!(c.fate(ev(10, 1)), Fate::Destroy);
        assert_eq!(c.fate(ev(11, 2)), Fate::Destroy);
    }

    #[test]
    fn random_drop_is_seed_deterministic() {
        let run = |seed| {
            let mut c = RandomDropCourier::new(0.5, 1, 4, seed);
            (0..20).map(|s| c.fate(ev(s, s))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge somewhere");
    }

    #[test]
    fn random_drop_extremes() {
        let mut never = RandomDropCourier::new(0.0, 2, 2, 1);
        assert_eq!(never.fate(ev(1, 0)), Fate::Deliver(3));
        let mut always = RandomDropCourier::new(1.0, 1, 1, 1);
        assert_eq!(always.fate(ev(1, 0)), Fate::Destroy);
    }

    #[test]
    fn silence_destroys_everything() {
        let mut c = SilenceCourier;
        for s in 0..5 {
            assert_eq!(c.fate(ev(s, s)), Fate::Destroy);
        }
    }

    #[test]
    fn run_courier_replays_the_run() {
        // Run over 2 processes, horizon 2: deliver 0→1 in round 1 only.
        let mut run = Run::empty(2, 2);
        run.add_message(ProcessId::new(0), ProcessId::new(1), Round::new(1));
        let mut c = RunCourier::new(run, 10, 3);
        assert_eq!(c.name(), "run-replay");
        // Ticks 0..10 are round 1: the slot is present.
        assert_eq!(c.fate(ev(0, 0)), Fate::Deliver(3));
        assert_eq!(c.fate(ev(9, 1)), Fate::Deliver(12));
        // Ticks 10..20 are round 2: slot absent.
        assert_eq!(c.fate(ev(10, 2)), Fate::Destroy);
        // Past the horizon (round 3+): destroyed.
        assert_eq!(c.fate(ev(25, 3)), Fate::Destroy);
        // The reverse direction was never delivered.
        let back = SendEvent {
            from: ProcessId::new(1),
            to: ProcessId::new(0),
            sent_at: 0,
            seq: 4,
        };
        assert_eq!(c.fate(back), Fate::Destroy);
    }

    #[test]
    fn run_courier_serde_round_trip() {
        let mut run = Run::empty(2, 2);
        run.add_input(ProcessId::new(0));
        run.add_message(ProcessId::new(1), ProcessId::new(0), Round::new(2));
        let c = RunCourier::new(run, 4, 1);
        let json = serde::json::to_string(&c).unwrap();
        let back: RunCourier = serde::json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    #[should_panic(expected = "ticks_per_round")]
    fn run_courier_rejects_zero_ticks_per_round() {
        RunCourier::new(Run::empty(2, 1), 0, 1);
    }
}
