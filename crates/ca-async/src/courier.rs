//! Couriers: the asynchronous adversary.
//!
//! In the synchronous model the adversary is a run — a set of delivered
//! message slots. Asynchronously the adversary decides, per sent message,
//! whether it is destroyed and at what (virtual) time it arrives. Like the
//! paper's strong adversary it sees message *metadata* (sender, receiver,
//! send time, sequence number) but never message contents — so it cannot
//! learn `rfire`.

use ca_core::ids::ProcessId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Virtual time (integer ticks).
pub type Time = u64;

/// Metadata of one sent message — all the adversary may see.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SendEvent {
    /// Sending process.
    pub from: ProcessId,
    /// Receiving process.
    pub to: ProcessId,
    /// Virtual time of the send.
    pub sent_at: Time,
    /// Global sequence number of the send (unique, increasing).
    pub seq: u64,
}

/// The adversary's decision for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fate {
    /// The message is destroyed.
    Destroy,
    /// The message arrives at the given time (must be strictly after the send).
    Deliver(Time),
}

/// An asynchronous adversary: decides the fate of every sent message.
///
/// Implementations may be stateful (adaptive in metadata) but never see
/// message contents.
pub trait Courier {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Decides the fate of one message.
    fn fate(&mut self, event: SendEvent) -> Fate;

    /// Decides *all* fates of one send. The default forwards to
    /// [`Courier::fate`] — exactly one fate per send. Duplicating couriers
    /// override this to push several fates (each scheduled copy is delivered
    /// or destroyed independently; the engine's sequence-number dedup lets
    /// at most one copy through). Pushing nothing is equivalent to
    /// [`Fate::Destroy`].
    fn fates(&mut self, event: SendEvent, out: &mut Vec<Fate>) {
        out.push(self.fate(event));
    }
}

/// Delivers everything with a fixed latency.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableCourier {
    latency: Time,
}

impl ReliableCourier {
    /// Creates a courier with the given fixed latency (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0` (delivery must be after the send).
    pub fn new(latency: Time) -> Self {
        assert!(latency >= 1, "latency must be at least 1 tick");
        ReliableCourier { latency }
    }
}

impl Courier for ReliableCourier {
    fn name(&self) -> &'static str {
        "reliable"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        Fate::Deliver(event.sent_at + self.latency)
    }
}

/// Delivers with fixed latency until a cut time, then destroys everything —
/// the asynchronous analogue of the prefix-cut run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CutCourier {
    latency: Time,
    cut_at: Time,
}

impl CutCourier {
    /// Creates a courier that destroys every message sent at or after `cut_at`.
    ///
    /// # Panics
    ///
    /// Panics if `latency == 0`.
    pub fn new(latency: Time, cut_at: Time) -> Self {
        assert!(latency >= 1, "latency must be at least 1 tick");
        CutCourier { latency, cut_at }
    }
}

impl Courier for CutCourier {
    fn name(&self) -> &'static str {
        "cut"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        if event.sent_at >= self.cut_at {
            Fate::Destroy
        } else {
            Fate::Deliver(event.sent_at + self.latency)
        }
    }
}

/// The weak adversary, asynchronously: destroys each message independently
/// with probability `p`, otherwise delivers with latency uniform in
/// `[min_latency, max_latency]`. Deterministic given its seed and the
/// sequence of send events.
#[derive(Clone, Debug)]
pub struct RandomDropCourier {
    p: f64,
    min_latency: Time,
    max_latency: Time,
    rng: StdRng,
}

impl RandomDropCourier {
    /// Creates the courier.
    ///
    /// # Panics
    ///
    /// Panics if `p ∉ [0,1]` or the latency range is empty or starts at 0.
    pub fn new(p: f64, min_latency: Time, max_latency: Time, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability must be in [0,1]"
        );
        assert!(
            1 <= min_latency && min_latency <= max_latency,
            "latency range must be nonempty and start at ≥ 1"
        );
        RandomDropCourier {
            p,
            min_latency,
            max_latency,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Courier for RandomDropCourier {
    fn name(&self) -> &'static str {
        "random-drop"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        if self.p > 0.0 && self.rng.gen_bool(self.p) {
            Fate::Destroy
        } else {
            let latency = self.rng.gen_range(self.min_latency..=self.max_latency);
            Fate::Deliver(event.sent_at + latency)
        }
    }
}

/// Destroys every message: the total-silence adversary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SilenceCourier;

impl Courier for SilenceCourier {
    fn name(&self) -> &'static str {
        "silence"
    }

    fn fate(&mut self, _event: SendEvent) -> Fate {
        Fate::Destroy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(sent_at: Time, seq: u64) -> SendEvent {
        SendEvent {
            from: ProcessId::new(0),
            to: ProcessId::new(1),
            sent_at,
            seq,
        }
    }

    #[test]
    fn reliable_adds_latency() {
        let mut c = ReliableCourier::new(3);
        assert_eq!(c.fate(ev(5, 0)), Fate::Deliver(8));
        assert_eq!(c.name(), "reliable");
    }

    #[test]
    #[should_panic(expected = "at least 1 tick")]
    fn zero_latency_rejected() {
        ReliableCourier::new(0);
    }

    #[test]
    fn cut_destroys_after_cut_time() {
        let mut c = CutCourier::new(1, 10);
        assert_eq!(c.fate(ev(9, 0)), Fate::Deliver(10));
        assert_eq!(c.fate(ev(10, 1)), Fate::Destroy);
        assert_eq!(c.fate(ev(11, 2)), Fate::Destroy);
    }

    #[test]
    fn random_drop_is_seed_deterministic() {
        let run = |seed| {
            let mut c = RandomDropCourier::new(0.5, 1, 4, seed);
            (0..20).map(|s| c.fate(ev(s, s))).collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge somewhere");
    }

    #[test]
    fn random_drop_extremes() {
        let mut never = RandomDropCourier::new(0.0, 2, 2, 1);
        assert_eq!(never.fate(ev(1, 0)), Fate::Deliver(3));
        let mut always = RandomDropCourier::new(1.0, 1, 1, 1);
        assert_eq!(always.fate(ev(1, 0)), Fate::Destroy);
    }

    #[test]
    fn silence_destroys_everything() {
        let mut c = SilenceCourier;
        for s in 0..5 {
            assert_eq!(c.fate(ev(s, s)), Fate::Destroy);
        }
    }
}
