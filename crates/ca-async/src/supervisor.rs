//! Shard supervision: panic recovery and stall detection for the serve
//! runtime.
//!
//! [`supervise`] fans a set of shards out over worker threads (via
//! [`ca_sim::chaos::parallel_map`], so shard results come back in index
//! order regardless of scheduling) and wraps every shard execution in a
//! panic boundary:
//!
//! * a shard that **panics** is restarted, up to a fixed attempt budget; the
//!   attempt number is passed back into the shard body so a deterministic
//!   workload re-runs identically (and a deterministically-panicking shard
//!   fails deterministically);
//! * a shard that exhausts its attempts is **drained**: its result slot is
//!   `None` and the panic message is preserved, so the caller can account
//!   for every instance the shard owned instead of silently dropping them;
//! * a shard that **stalls** (no progress ticks for longer than the
//!   configured wall-clock window) is flagged and reported on stderr. Safe
//!   Rust cannot kill a wedged thread, so stall detection is advisory: it
//!   never touches shard results, which keeps the aggregate report a pure
//!   function of `(scale, seed)`.
//!
//! Determinism contract: restart counts and panic messages are part of the
//! returned [`ShardRun`]s and are deterministic whenever the shard body is a
//! pure function of `(shard, attempt)`; the stall set is wall-clock-derived
//! and deliberately kept out of anything byte-stable.

use ca_sim::chaos::parallel_map;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// A per-shard progress beacon: the shard body ticks it as it works, the
/// watchdog reads it to distinguish "slow" from "wedged".
#[derive(Debug, Default)]
pub struct Progress {
    ticks: AtomicU64,
    started: AtomicBool,
    finished: AtomicBool,
}

impl Progress {
    fn new() -> Self {
        Progress::default()
    }

    /// Records one unit of forward progress (e.g. one instance completed).
    #[inline]
    pub fn tick(&self) {
        self.ticks.fetch_add(1, Ordering::Relaxed);
    }

    /// Total progress ticks recorded so far.
    pub fn ticks(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

/// The supervised result of one shard.
#[derive(Debug)]
pub struct ShardRun<R> {
    /// Shard index.
    pub shard: usize,
    /// The shard's result, or `None` when every attempt panicked (the shard
    /// was drained — the caller must account for its work explicitly).
    pub result: Option<R>,
    /// Restarts performed (0 = first attempt succeeded).
    pub restarts: u32,
    /// Message of the last panic, if any attempt panicked.
    pub panic: Option<String>,
}

/// Everything [`supervise`] observed.
#[derive(Debug)]
pub struct SuperviseOutcome<R> {
    /// Per-shard results, in shard index order.
    pub shards: Vec<ShardRun<R>>,
    /// Shards the watchdog flagged as stalled (advisory, wall-clock-derived;
    /// never part of byte-stable reports).
    pub stalled: Vec<usize>,
}

impl<R> SuperviseOutcome<R> {
    /// Total restarts across all shards.
    pub fn total_restarts(&self) -> u64 {
        self.shards.iter().map(|s| u64::from(s.restarts)).sum()
    }
}

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `run(shard, attempt, progress)` for every shard on `threads` workers
/// (0 = available parallelism, honoring `CA_THREADS`), restarting panicked
/// shards up to `max_attempts` total attempts each.
///
/// When `stall_warn` is set, a watchdog thread flags (and warns on stderr
/// about) any started-but-unfinished shard whose progress beacon did not
/// move for at least that long. The flag is advisory only — see the module
/// docs.
///
/// # Panics
///
/// Panics if `max_attempts == 0`.
pub fn supervise<R, F>(
    shards: usize,
    threads: usize,
    max_attempts: u32,
    stall_warn: Option<Duration>,
    run: F,
) -> SuperviseOutcome<R>
where
    R: Send,
    F: Fn(usize, u32, &Progress) -> R + Sync,
{
    assert!(max_attempts >= 1, "at least one attempt per shard");
    let progress: Vec<Progress> = (0..shards).map(|_| Progress::new()).collect();
    let stalled_flags: Vec<AtomicBool> = (0..shards).map(|_| AtomicBool::new(false)).collect();
    let done = AtomicBool::new(false);

    let mut results: Vec<(Option<R>, u32, Option<String>)> = Vec::new();
    std::thread::scope(|scope| {
        if let Some(window) = stall_warn {
            let (progress, stalled_flags, done) = (&progress, &stalled_flags, &done);
            scope.spawn(move || {
                // Poll fast enough to notice the run finishing promptly even
                // under a long stall window.
                let poll = (window / 4)
                    .max(Duration::from_millis(5))
                    .min(Duration::from_millis(50));
                let mut last_seen: Vec<(u64, std::time::Instant)> = progress
                    .iter()
                    .map(|p| (p.ticks(), std::time::Instant::now()))
                    .collect();
                while !done.load(Ordering::Relaxed) {
                    std::thread::sleep(poll);
                    for (k, p) in progress.iter().enumerate() {
                        if !p.started.load(Ordering::Relaxed) || p.finished.load(Ordering::Relaxed)
                        {
                            last_seen[k] = (p.ticks(), std::time::Instant::now());
                            continue;
                        }
                        let now_ticks = p.ticks();
                        if now_ticks != last_seen[k].0 {
                            last_seen[k] = (now_ticks, std::time::Instant::now());
                        } else if last_seen[k].1.elapsed() >= window
                            && !stalled_flags[k].swap(true, Ordering::Relaxed)
                        {
                            eprintln!(
                                "warning: shard {k} made no progress for \
                                 {:?} (watchdog; advisory only)",
                                window
                            );
                        }
                    }
                }
            });
        }

        results = parallel_map(shards, threads, |shard| {
            progress[shard].started.store(true, Ordering::Relaxed);
            let mut restarts = 0u32;
            let mut last_panic: Option<String> = None;
            let mut result = None;
            for attempt in 0..max_attempts {
                match catch_unwind(AssertUnwindSafe(|| run(shard, attempt, &progress[shard]))) {
                    Ok(r) => {
                        restarts = attempt;
                        result = Some(r);
                        break;
                    }
                    Err(payload) => {
                        last_panic = Some(panic_message(payload));
                        restarts = attempt;
                    }
                }
            }
            if result.is_none() {
                // Every attempt panicked: restarts = attempts - 1.
                restarts = max_attempts - 1;
            }
            progress[shard].finished.store(true, Ordering::Relaxed);
            (result, restarts, last_panic)
        });
        done.store(true, Ordering::Relaxed);
    });

    let shards_out = results
        .into_iter()
        .enumerate()
        .map(|(shard, (result, restarts, panic))| ShardRun {
            shard,
            result,
            restarts,
            panic,
        })
        .collect();
    let stalled = stalled_flags
        .iter()
        .enumerate()
        .filter(|(_, f)| f.load(Ordering::Relaxed))
        .map(|(k, _)| k)
        .collect();
    SuperviseOutcome {
        shards: shards_out,
        stalled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_shards_run_once_in_index_order() {
        let out = supervise(5, 2, 3, None, |shard, attempt, p| {
            p.tick();
            (shard, attempt)
        });
        assert_eq!(out.shards.len(), 5);
        for (k, s) in out.shards.iter().enumerate() {
            assert_eq!(s.shard, k);
            assert_eq!(s.result, Some((k, 0)), "first attempt succeeds");
            assert_eq!(s.restarts, 0);
            assert!(s.panic.is_none());
        }
        assert!(out.stalled.is_empty());
        assert_eq!(out.total_restarts(), 0);
    }

    #[test]
    fn panicked_shard_is_restarted_and_result_preserved() {
        let out = supervise(3, 2, 2, None, |shard, attempt, _p| {
            if shard == 1 && attempt == 0 {
                panic!("injected shard panic");
            }
            shard * 10 + attempt as usize
        });
        assert_eq!(out.shards[0].result, Some(0));
        assert_eq!(out.shards[0].restarts, 0);
        // Shard 1 panicked once, then succeeded on attempt 1.
        assert_eq!(out.shards[1].result, Some(11));
        assert_eq!(out.shards[1].restarts, 1);
        assert_eq!(out.shards[1].panic.as_deref(), Some("injected shard panic"));
        assert_eq!(out.shards[2].result, Some(20));
        assert_eq!(out.total_restarts(), 1);
    }

    #[test]
    fn deterministically_panicking_shard_is_drained() {
        let out = supervise(2, 1, 2, None, |shard, attempt, _p| {
            if shard == 0 {
                panic!("always broken (attempt {attempt})");
            }
            7usize
        });
        assert!(out.shards[0].result.is_none(), "drained");
        assert_eq!(out.shards[0].restarts, 1);
        assert_eq!(
            out.shards[0].panic.as_deref(),
            Some("always broken (attempt 1)")
        );
        assert_eq!(out.shards[1].result, Some(7));
    }

    #[test]
    fn watchdog_flags_a_stalled_shard_but_keeps_its_result() {
        // Shard 0 goes quiet for well past the stall window, then finishes;
        // shard 1 ticks and finishes promptly. Generous margins keep this
        // robust on slow machines.
        let out = supervise(
            2,
            2,
            1,
            Some(Duration::from_millis(40)),
            |shard, _attempt, p| {
                p.tick();
                if shard == 0 {
                    std::thread::sleep(Duration::from_millis(400));
                }
                shard
            },
        );
        assert_eq!(out.shards[0].result, Some(0), "stall is advisory");
        assert_eq!(out.shards[1].result, Some(1));
        assert!(out.stalled.contains(&0), "stalled: {:?}", out.stalled);
        assert!(!out.stalled.contains(&1));
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_is_rejected() {
        supervise(1, 1, 0, None, |_, _, _| ());
    }
}
