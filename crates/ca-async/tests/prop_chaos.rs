//! Property-based tests of the chaos harness.
//!
//! * Fault schedules survive a JSON round trip losslessly, and the encoding
//!   is canonical (re-encoding is byte-identical) — the property that makes
//!   saved counterexamples replayable.
//! * A [`ChaosCourier`] with an empty schedule is observationally
//!   equivalent to a [`ReliableCourier`] of the same latency: injecting no
//!   faults perturbs nothing — and the equivalence lifts through the whole
//!   serve loop: a service run over an empty chaos schedule produces the
//!   same aggregate totals and per-shard stats as one over the reliable
//!   courier.
//! * Chaos executions are a pure function of `(schedule, tapes, config)`.
//! * [`ddmin`] shrinking is sound over fault schedules: the shrunk schedule
//!   still trips the same oracle it was shrunk against, shrinking is
//!   deterministic, and re-shrinking a shrunk schedule is a fixpoint.

use ca_async::campaign::sample_schedule;
use ca_async::{
    induced_run, run_async, run_serve, try_run_async, Arrival, AsyncConfig, AsyncS, ChaosCourier,
    CourierSpec, FaultPrimitive, FaultSchedule, ReliableCourier, ServeConfig, TimeWindow,
};
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::level::modified_levels;
use ca_core::tape::TapeSet;
use ca_sim::chaos::ddmin;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The hunt's shrink oracle: min modified level of the run a fault list
/// induces (with the enclosing schedule's seed and base latency).
fn induced_ml(
    graph: &Graph,
    template: &FaultSchedule,
    faults: &[FaultPrimitive],
    rounds: u32,
) -> u32 {
    let candidate = FaultSchedule {
        seed: template.seed,
        base_latency: template.base_latency,
        faults: faults.to_vec(),
    };
    match induced_run(graph, &candidate, rounds) {
        Ok(run) => modified_levels(&run).min_level(),
        Err(_) => u32::MAX,
    }
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=4, 0u8..3).prop_map(|(m, kind)| match kind {
        0 => Graph::complete(m).expect("graph"),
        1 => Graph::star(m.max(2)).expect("graph"),
        _ => Graph::line(m).expect("graph"),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Schedules round-trip through JSON; the compact encoding is canonical
    /// and the pretty encoding parses to the same schedule.
    #[test]
    fn fault_schedule_json_round_trip(
        seed in any::<u64>(),
        m in 2usize..5,
        deadline in 4u64..24,
        max_faults in 0usize..6,
    ) {
        let schedule = sample_schedule(seed, m, deadline, max_faults);
        let text = schedule.to_json();
        let back = FaultSchedule::from_json(&text).expect("round trip parses");
        prop_assert_eq!(&back, &schedule);
        prop_assert_eq!(back.to_json(), text, "encoding is canonical");
        let pretty = FaultSchedule::from_json(&schedule.to_json_pretty())
            .expect("pretty form parses");
        prop_assert_eq!(pretty, schedule);
    }

    /// No faults, no perturbation: the chaos courier with an empty schedule
    /// behaves exactly like the reliable courier of the same latency.
    #[test]
    fn empty_schedule_equals_reliable_courier(
        g in graph_strategy(),
        seed in any::<u64>(),
        base_latency in 1u64..4,
        heartbeat in prop::option::of(1u64..4),
    ) {
        let proto = AsyncS::new(0.25);
        let mut config = AsyncConfig::all_inputs(&g, 12);
        if let Some(h) = heartbeat {
            config = config.with_heartbeat(h);
        }
        let tapes = TapeSet::random(&mut StdRng::seed_from_u64(seed), g.len(), 64);
        let mut chaos = ChaosCourier::new(FaultSchedule::reliable(base_latency))
            .expect("empty schedule is valid");
        let mut reliable = ReliableCourier::new(base_latency);
        let a = run_async(&proto, &g, &config, &tapes, &mut chaos);
        let b = run_async(&proto, &g, &config, &tapes, &mut reliable);
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.duplicates_suppressed, 0);
        let (sa, sb): (Vec<u32>, Vec<u32>) = (
            a.states.iter().map(|s| s.count).collect(),
            b.states.iter().map(|s| s.count).collect(),
        );
        prop_assert_eq!(sa, sb);
    }

    /// The empty-schedule equivalence extends to the serve loop: queueing,
    /// shedding, retries, verdict counts, and latency histograms are all
    /// identical whether the instances share an empty [`ChaosCourier`] or a
    /// [`ReliableCourier`] of the same latency. (Reports embed the courier
    /// spec in `params`, so the comparison is on totals and shard stats.)
    #[test]
    fn empty_schedule_serve_loop_equals_reliable(
        m in 2usize..4,
        instances in 8u64..48,
        seed in any::<u64>(),
        latency in 1u64..3,
        mean_gap in prop::option::of(2u64..12),
    ) {
        let mut chaos = ServeConfig::new(m, 8, instances, seed);
        chaos.shards = 3;
        chaos.queue_bound = 2;
        chaos.stall_warn_ms = None;
        chaos.arrival = match mean_gap {
            Some(gap) => Arrival::Open { mean_gap: gap },
            None => Arrival::Closed,
        };
        let mut reliable = chaos.clone();
        chaos.courier = CourierSpec::Chaos {
            schedule: FaultSchedule::reliable(latency),
        };
        reliable.courier = CourierSpec::Reliable { latency };
        let a = run_serve(&chaos).expect("chaos serve runs");
        let b = run_serve(&reliable).expect("reliable serve runs");
        prop_assert_eq!(
            serde::json::to_string(&a.totals).expect("totals serialize"),
            serde::json::to_string(&b.totals).expect("totals serialize"),
        );
        prop_assert_eq!(
            serde::json::to_string(&a.shards).expect("shards serialize"),
            serde::json::to_string(&b.shards).expect("shards serialize"),
        );
    }

    /// Replaying a sampled schedule reproduces the execution exactly.
    #[test]
    fn chaos_execution_replays_identically(g in graph_strategy(), seed in any::<u64>()) {
        let schedule = sample_schedule(seed, g.len(), 12, 4);
        let proto = AsyncS::new(0.25);
        let config = AsyncConfig::all_inputs(&g, 12).with_heartbeat(2);
        let tapes = TapeSet::random(&mut StdRng::seed_from_u64(seed ^ 0xA5), g.len(), 64);
        let run = || {
            let mut courier = ChaosCourier::new(schedule.clone()).expect("sampled schedules are valid");
            try_run_async(&proto, &g, &config, &tapes, &mut courier)
                .expect("sampled schedules run cleanly")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.delivered, b.delivered);
        prop_assert_eq!(a.duplicates_suppressed, b.duplicates_suppressed);
    }

    /// ddmin over fault schedules is sound: the shrunk fault list still
    /// trips the oracle it was shrunk against (the induced run's damage is
    /// preserved), the result is deterministic, and re-shrinking it changes
    /// nothing. Content-keyed coin streams make this hold for *every*
    /// sampled schedule, not just hand-picked ones.
    #[test]
    fn ddmin_preserves_the_oracle_deterministically_to_a_fixpoint(
        g in graph_strategy(),
        seed in any::<u64>(),
        rounds in 4u32..10,
        max_faults in 1usize..6,
    ) {
        let schedule = sample_schedule(seed, g.len(), u64::from(rounds) - 1, max_faults);
        let Ok(run) = induced_run(&g, &schedule, rounds) else {
            // Only courier validation errors land here, and those
            // schedules are outside the shrinker's domain.
            return;
        };
        let full_ml = modified_levels(&run).min_level();
        // The oracle the hunt shrinks against: the fault list still induces
        // at most the original damage (lower min level = more damage).
        let oracle = |faults: &[FaultPrimitive]| {
            induced_ml(&g, &schedule, faults, rounds) <= full_ml
        };
        let shrunk = ddmin(&schedule.faults, oracle);
        prop_assert!(
            oracle(&shrunk),
            "shrunk schedule must trip the same oracle (ml <= {full_ml})"
        );
        prop_assert!(shrunk.len() <= schedule.faults.len());
        // Deterministic: same input, same oracle, same result.
        prop_assert_eq!(&ddmin(&schedule.faults, oracle), &shrunk);
        // Fixpoint: a shrunk schedule is already minimal.
        prop_assert_eq!(&ddmin(&shrunk, oracle), &shrunk);
    }
}

/// A planted minimal culprit survives shrinking and the decoys do not: the
/// prefix-cut partition is what makes `ML(R) = 1`, while the duplicate and
/// jitter decoys are irrelevant to the induced damage.
#[test]
fn ddmin_keeps_the_planted_cut_and_drops_decoys() {
    let g = Graph::complete(2).expect("graph");
    let rounds = 6;
    let cut = FaultPrimitive::Partition {
        group_a: vec![ProcessId::new(0)],
        window: TimeWindow::from(1),
    };
    let schedule = FaultSchedule {
        seed: 11,
        base_latency: 1,
        faults: vec![
            FaultPrimitive::Duplicate {
                p: 0.5,
                echo_delay: 2,
                window: TimeWindow::always(),
            },
            cut.clone(),
            FaultPrimitive::DelayJitter {
                extra_max: 0,
                window: TimeWindow::from(4),
            },
        ],
    };
    let full_ml = {
        let run = induced_run(&g, &schedule, rounds).expect("schedule validates");
        modified_levels(&run).min_level()
    };
    assert_eq!(full_ml, 1, "the planted cut dominates the damage");
    let oracle = |faults: &[FaultPrimitive]| induced_ml(&g, &schedule, faults, rounds) <= full_ml;
    let shrunk = ddmin(&schedule.faults, oracle);
    assert_eq!(shrunk, vec![cut], "exactly the planted culprit survives");
    // Shrinking the minimal schedule again is a no-op.
    assert_eq!(ddmin(&shrunk, oracle), shrunk);
}
