//! Property-based tests of the asynchronous model.
//!
//! Random couriers (arbitrary per-message fates) and random input sets, with
//! the core safety and structure invariants checked on every execution:
//! validity, count spread ≤ 1, monotonicity of counts in time, and
//! agreement ≤ ε at the distribution level.

use ca_async::courier::{Courier, Fate, SendEvent, Time};
use ca_async::engine::{run_async, AsyncConfig};
use ca_async::protocol::AsyncS;
use ca_core::graph::Graph;
use ca_core::ids::ProcessId;
use ca_core::outcome::Outcome;
use ca_core::tape::TapeSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A courier whose fate function is an arbitrary deterministic function of
/// the send metadata, drawn from a seed — covering delivery patterns far
/// stranger than the named couriers (reordering, bursts, selective loss).
#[derive(Clone, Debug)]
struct ArbitraryCourier {
    rng: StdRng,
    deadline: Time,
    drop_bias: f64,
}

impl Courier for ArbitraryCourier {
    fn name(&self) -> &'static str {
        "arbitrary"
    }

    fn fate(&mut self, event: SendEvent) -> Fate {
        if self.rng.gen_bool(self.drop_bias) {
            Fate::Destroy
        } else {
            // Arbitrary (possibly reordering) latency, occasionally past the
            // deadline.
            let latency = self.rng.gen_range(1..=self.deadline.max(2));
            Fate::Deliver(event.sent_at + latency)
        }
    }
}

fn graph_strategy() -> impl Strategy<Value = Graph> {
    (2usize..=4, 0u8..3).prop_map(|(m, kind)| match kind {
        0 => Graph::complete(m).expect("graph"),
        1 => Graph::star(m.max(2)).expect("graph"),
        _ => Graph::line(m).expect("graph"),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Validity holds under every courier: no input ⟹ no attack.
    #[test]
    fn validity_universal(
        g in graph_strategy(),
        seed in any::<u64>(),
        drop_bias in 0.0f64..0.9,
        heartbeat in prop::option::of(1u64..4),
    ) {
        let proto = AsyncS::new(0.5);
        let mut config = AsyncConfig::no_inputs(12);
        if let Some(h) = heartbeat {
            config = config.with_heartbeat(h);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let mut courier = ArbitraryCourier {
            rng: StdRng::seed_from_u64(seed ^ 0xC0),
            deadline: 12,
            drop_bias,
        };
        let out = run_async(&proto, &g, &config, &tapes, &mut courier);
        prop_assert_eq!(out.outcome(), Outcome::NoAttack);
    }

    /// Final counts spread by at most 1 — the asynchronous Lemma 6.2 — and
    /// tokenless processes never attack, under arbitrary couriers.
    #[test]
    fn count_spread_and_token_discipline(
        g in graph_strategy(),
        seed in any::<u64>(),
        drop_bias in 0.0f64..0.9,
        inputs_mask in any::<u8>(),
        heartbeat in prop::option::of(1u64..4),
    ) {
        let proto = AsyncS::new(0.2);
        let inputs: Vec<ProcessId> = g
            .vertices()
            .filter(|p| inputs_mask & (1 << p.index()) != 0)
            .collect();
        let mut config = AsyncConfig {
            deadline: 14,
            inputs,
            heartbeat: None,
        };
        if let Some(h) = heartbeat {
            config = config.with_heartbeat(h);
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let mut courier = ArbitraryCourier {
            rng: StdRng::seed_from_u64(seed ^ 0xC1),
            deadline: 14,
            drop_bias,
        };
        let out = run_async(&proto, &g, &config, &tapes, &mut courier);
        let max = out.states.iter().map(|s| s.count).max().expect("nonempty");
        for (state, &decided) in out.states.iter().zip(&out.outputs) {
            prop_assert!(state.count + 1 >= max, "spread > 1: {:?}", out.states);
            if state.token.is_none() {
                prop_assert!(!decided, "tokenless process attacked");
                prop_assert_eq!(state.count, 0);
            }
        }
        prop_assert!(out.delivered <= out.sent);
    }

    /// Liveness is monotone in the deadline under a fixed reliable courier.
    #[test]
    fn counts_monotone_in_deadline(g in graph_strategy(), seed in any::<u64>()) {
        let proto = AsyncS::new(0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let min_count = |deadline: u64| {
            let config = AsyncConfig::all_inputs(&g, deadline);
            let mut courier = ca_async::ReliableCourier::new(1);
            let out = run_async(&proto, &g, &config, &tapes, &mut courier);
            out.states.iter().map(|s| s.count).min().expect("nonempty")
        };
        prop_assert!(min_count(16) >= min_count(8));
        prop_assert!(min_count(8) >= min_count(3));
    }

    /// The async execution is a pure function of its inputs (determinism),
    /// including under heartbeats.
    #[test]
    fn deterministic(g in graph_strategy(), seed in any::<u64>()) {
        let proto = AsyncS::new(0.3);
        let mut rng = StdRng::seed_from_u64(seed);
        let tapes = TapeSet::random(&mut rng, g.len(), 64);
        let run = || {
            let config = AsyncConfig::all_inputs(&g, 10).with_heartbeat(3);
            let mut courier = ca_async::RandomDropCourier::new(0.3, 1, 3, seed ^ 0xDE);
            run_async(&proto, &g, &config, &tapes, &mut courier)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.outputs, b.outputs);
        prop_assert_eq!(a.sent, b.sent);
        prop_assert_eq!(a.delivered, b.delivered);
    }
}
